//! Target descriptions and cost models.
//!
//! Each [`TargetDesc`] stands in for one of the machines of the paper's
//! evaluation (x86 with SSE, UltraSparc, PowerPC), for the heterogeneous
//! platforms of Section 3 (ARM with Neon, the Cell PPE/SPU pair, a DSP), or
//! for the two families added to stress the abstractions beyond the paper's
//! era: a RISC-V-class scalar core and a GPU-style wide-SIMD core with
//! 64-byte vectors.
//! The descriptions drive both the online compiler (how many registers, is
//! there a SIMD unit and how wide) and the cycle simulator (per-operation
//! costs). Absolute cycle counts are synthetic; what matters for the
//! reproduction is the *relative* behaviour between targets and between
//! scalar and vectorized code.

use crate::timing::TimingKind;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::OnceLock;

/// Pipeline-depth-class cycles a GPU front end needs to refill after a taken
/// scalar branch redirects fetch (the warp scheduler re-primes the issue
/// stage from the instruction cache).
const GPU_FRONTEND_REFILL: u64 = 8;

/// Extra scheduler passes a diverged warp pays to execute both sides of a
/// split and reconverge at the immediate post-dominator: two passes at the
/// GPU's 2-cycle scalar issue rate.
const GPU_RECONVERGE_PASSES: u64 = 2 * 2;

/// Taken-branch (divergence) cost of the GPU-style core, derived from its
/// timing parameters instead of hand-tuned: a taken scalar branch pays the
/// front-end refill plus the warp-reconvergence passes. This is the value the
/// in-order timing tier also derives its misprediction penalty from, so the
/// flat cost table and the pipelined model price divergence consistently.
pub const GPU_DIVERGENCE_PENALTY: u64 = GPU_FRONTEND_REFILL + GPU_RECONVERGE_PASSES;

/// Description of a SIMD unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VectorUnit {
    /// Width of one vector register in bytes (16 for SSE/AltiVec/Neon-era units).
    pub bytes: u16,
    /// Number of architectural vector registers.
    pub regs: u16,
}

/// Per-operation cycle costs of a target.
///
/// The numbers are coarse "effective latency" figures for an in-order core,
/// not a microarchitectural model: each executed machine instruction charges
/// its cost, plus branch and memory penalties.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Simple integer ALU operation.
    pub int_op: u64,
    /// Integer multiply.
    pub int_mul: u64,
    /// Integer divide / remainder.
    pub int_div: u64,
    /// Floating-point add/subtract/compare/min/max.
    pub fp_add: u64,
    /// Floating-point multiply.
    pub fp_mul: u64,
    /// Floating-point divide.
    pub fp_div: u64,
    /// Scalar load (cache-hit latency).
    pub load: u64,
    /// Scalar store.
    pub store: u64,
    /// Register move / immediate materialization.
    pub mov: u64,
    /// Conversion between integer and floating point.
    pub convert: u64,
    /// Taken branch (includes the jump at the bottom of loops).
    pub branch_taken: u64,
    /// Not-taken branch.
    pub branch_not_taken: u64,
    /// SIMD arithmetic operation (whole vector).
    pub vec_op: u64,
    /// SIMD load (whole vector).
    pub vec_load: u64,
    /// SIMD store (whole vector).
    pub vec_store: u64,
    /// Horizontal reduction of one vector register.
    pub vec_reduce: u64,
    /// Call/return overhead (both sides combined).
    pub call: u64,
    /// Spill store to the stack.
    pub spill_store: u64,
    /// Reload from the stack.
    pub spill_load: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            int_op: 1,
            int_mul: 3,
            int_div: 20,
            fp_add: 3,
            fp_mul: 4,
            fp_div: 16,
            load: 3,
            store: 1,
            mov: 1,
            convert: 2,
            branch_taken: 2,
            branch_not_taken: 1,
            vec_op: 4,
            vec_load: 4,
            vec_store: 2,
            vec_reduce: 6,
            call: 10,
            spill_store: 3,
            spill_load: 4,
        }
    }
}

/// A virtual target: register files, optional SIMD unit and cost model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TargetDesc {
    /// Human-readable target name (e.g. `"x86-sse"`).
    pub name: String,
    /// Number of allocatable integer registers.
    pub int_regs: u16,
    /// Number of allocatable floating-point registers.
    pub float_regs: u16,
    /// SIMD unit, if the core has one the JIT is allowed to use.
    pub vector: Option<VectorUnit>,
    /// Per-operation costs.
    pub cost: CostModel,
    /// Relative clock-speed factor applied when converting cycles to time in
    /// the heterogeneous runtime (1.0 = the x86 reference clock). Every
    /// reporting path must convert through [`TargetDesc::scaled_time`] so the
    /// factor is applied consistently.
    pub clock_scale: f64,
    /// Which timing model the simulator charges cycles through (defaults to
    /// [`TimingKind::Flat`], the differential reference). Feeds the
    /// fingerprint: the same core with a different timing tier compiles and
    /// caches separately.
    pub timing: TimingKind,
}

impl TargetDesc {
    /// `true` if the JIT may emit SIMD instructions for this target.
    pub fn has_simd(&self) -> bool {
        self.vector.is_some()
    }

    /// A stable fingerprint of everything that influences code generation and
    /// simulation for this target: name, register files, SIMD unit, cost
    /// model, clock scale and timing tier.
    ///
    /// Two targets with equal fingerprints compile to interchangeable machine
    /// code, which is what lets an execution cache share compiled programs
    /// between cores of the same type (e.g. every SPU of a Cell blade).
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a over a canonical field serialization; no dependency on the
        // (unstable) std hasher so the value is reproducible across runs.
        let mut acc = crate::Fnv1a::new();
        let mut mix = |bytes: &[u8]| acc.write(bytes);
        mix(self.name.as_bytes());
        mix(&[0xff]); // terminator so "ab" + regs and "a" + b-ish regs differ
        mix(&self.int_regs.to_le_bytes());
        mix(&self.float_regs.to_le_bytes());
        match self.vector {
            Some(v) => {
                mix(&[1]);
                mix(&v.bytes.to_le_bytes());
                mix(&v.regs.to_le_bytes());
            }
            None => mix(&[0]),
        }
        let c = &self.cost;
        for field in [
            c.int_op,
            c.int_mul,
            c.int_div,
            c.fp_add,
            c.fp_mul,
            c.fp_div,
            c.load,
            c.store,
            c.mov,
            c.convert,
            c.branch_taken,
            c.branch_not_taken,
            c.vec_op,
            c.vec_load,
            c.vec_store,
            c.vec_reduce,
            c.call,
            c.spill_store,
            c.spill_load,
        ] {
            mix(&field.to_le_bytes());
        }
        mix(&self.clock_scale.to_bits().to_le_bytes());
        mix(&[self.timing.tag()]);
        acc.finish()
    }

    /// Convert simulated `cycles` on this target into relative time units
    /// (x86 reference cycles): the **single** cycles→time conversion every
    /// reporting path (sweep cells, bench rows, CPI tables) must go through,
    /// so the per-target clock factor cannot be applied inconsistently.
    pub fn scaled_time(&self, cycles: u64) -> f64 {
        cycles as f64 * self.clock_scale
    }

    /// This target with a different timing tier (same core otherwise). The
    /// fingerprint changes, so engines compile and cache it separately.
    #[must_use]
    pub fn with_timing(mut self, timing: TimingKind) -> Self {
        self.timing = timing;
        self
    }

    /// Width in bytes of the vector registers the JIT may use (0 without SIMD).
    pub fn vector_bytes(&self) -> u64 {
        self.vector.map(|v| u64::from(v.bytes)).unwrap_or(0)
    }

    /// The x86 workstation/desktop class machine of Table 1: 128-bit SSE,
    /// few architectural registers, low memory latency, good branch handling.
    pub fn x86_sse() -> Self {
        TargetDesc {
            name: "x86-sse".into(),
            int_regs: 6,
            float_regs: 8,
            vector: Some(VectorUnit { bytes: 16, regs: 8 }),
            cost: CostModel::default(),
            clock_scale: 1.0,
            timing: TimingKind::Flat,
        }
    }

    /// The UltraSparc class machine of Table 1: no SIMD unit used by the JIT,
    /// plenty of registers but long memory latency and expensive branches.
    pub fn ultrasparc() -> Self {
        TargetDesc {
            name: "ultrasparc".into(),
            int_regs: 12,
            float_regs: 16,
            vector: None,
            cost: CostModel {
                int_op: 1,
                int_mul: 4,
                int_div: 36,
                fp_add: 4,
                fp_mul: 4,
                fp_div: 22,
                load: 6,
                store: 3,
                mov: 1,
                convert: 3,
                branch_taken: 3,
                branch_not_taken: 1,
                // No SIMD unit: the vector costs are irrelevant (the JIT
                // scalarizes) but kept finite for robustness.
                vec_op: 16,
                vec_load: 24,
                vec_store: 12,
                vec_reduce: 24,
                call: 14,
                spill_store: 4,
                spill_load: 6,
            },
            clock_scale: 2.4,
            timing: TimingKind::Flat,
        }
    }

    /// The PowerPC class machine of Table 1: the JIT ignores AltiVec, but the
    /// core has many registers, short pipelines and cheap branches, so
    /// scalarized (unrolled) loops run slightly faster than the scalar code.
    pub fn powerpc() -> Self {
        TargetDesc {
            name: "powerpc".into(),
            int_regs: 26,
            float_regs: 26,
            vector: None,
            cost: CostModel {
                int_op: 1,
                int_mul: 3,
                int_div: 19,
                fp_add: 3,
                fp_mul: 3,
                fp_div: 18,
                load: 4,
                store: 2,
                mov: 1,
                convert: 2,
                branch_taken: 1,
                branch_not_taken: 1,
                vec_op: 12,
                vec_load: 16,
                vec_store: 8,
                vec_reduce: 16,
                call: 12,
                spill_store: 3,
                spill_load: 4,
            },
            clock_scale: 1.8,
            timing: TimingKind::Flat,
        }
    }

    /// An ARM application core with a Neon SIMD unit (the phone-class device
    /// of Section 3).
    pub fn arm_neon() -> Self {
        TargetDesc {
            name: "arm-neon".into(),
            int_regs: 12,
            float_regs: 16,
            vector: Some(VectorUnit {
                bytes: 16,
                regs: 16,
            }),
            cost: CostModel {
                int_op: 1,
                int_mul: 3,
                int_div: 28,
                fp_add: 4,
                fp_mul: 4,
                fp_div: 24,
                load: 4,
                store: 2,
                mov: 1,
                convert: 2,
                branch_taken: 2,
                branch_not_taken: 1,
                vec_op: 5,
                vec_load: 5,
                vec_store: 3,
                vec_reduce: 8,
                call: 12,
                spill_store: 3,
                spill_load: 4,
            },
            clock_scale: 2.0,
            timing: TimingKind::Flat,
        }
    }

    /// The Cell host core (PPE): in-order, two-way, no SIMD use by the JIT,
    /// long memory latency — good at control code, poor at numerics.
    pub fn cell_ppe() -> Self {
        TargetDesc {
            name: "cell-ppe".into(),
            int_regs: 26,
            float_regs: 26,
            vector: None,
            cost: CostModel {
                int_op: 1,
                int_mul: 4,
                int_div: 30,
                fp_add: 5,
                fp_mul: 5,
                fp_div: 30,
                load: 6,
                store: 3,
                mov: 1,
                convert: 3,
                branch_taken: 4,
                branch_not_taken: 1,
                vec_op: 14,
                vec_load: 18,
                vec_store: 10,
                vec_reduce: 20,
                call: 16,
                spill_store: 4,
                spill_load: 6,
            },
            clock_scale: 1.0,
            timing: TimingKind::Flat,
        }
    }

    /// A Cell synergistic processing unit (SPU): a wide SIMD engine with a
    /// large unified register file and a fast local store, but relatively slow
    /// scalar control code. Reached through DMA offload in the runtime.
    pub fn cell_spu() -> Self {
        TargetDesc {
            name: "cell-spu".into(),
            int_regs: 48,
            float_regs: 48,
            vector: Some(VectorUnit {
                bytes: 16,
                regs: 48,
            }),
            cost: CostModel {
                int_op: 2,
                int_mul: 4,
                int_div: 40,
                fp_add: 3,
                fp_mul: 3,
                fp_div: 20,
                load: 2, // local store
                store: 1,
                mov: 1,
                convert: 3,
                branch_taken: 6, // no branch prediction
                branch_not_taken: 1,
                vec_op: 2,
                vec_load: 2,
                vec_store: 1,
                vec_reduce: 8,
                call: 20,
                spill_store: 2,
                spill_load: 2,
            },
            clock_scale: 1.0,
            timing: TimingKind::Flat,
        }
    }

    /// A small fixed-point DSP: cheap multiply-accumulate, very expensive
    /// floating point (software emulation), tiny register file.
    pub fn dsp() -> Self {
        TargetDesc {
            name: "dsp".into(),
            int_regs: 8,
            float_regs: 4,
            vector: None,
            cost: CostModel {
                int_op: 1,
                int_mul: 1,
                int_div: 40,
                fp_add: 30,
                fp_mul: 40,
                fp_div: 120,
                load: 2,
                store: 1,
                mov: 1,
                convert: 12,
                branch_taken: 3,
                branch_not_taken: 1,
                vec_op: 30,
                vec_load: 30,
                vec_store: 20,
                vec_reduce: 40,
                call: 10,
                spill_store: 2,
                spill_load: 2,
            },
            clock_scale: 3.0,
            timing: TimingKind::Flat,
        }
    }

    /// A RISC-V-class 64-bit scalar core (RV64GC-style): a large uniform
    /// register file, no SIMD unit used by the JIT, and a load/store-biased
    /// cost model — arithmetic is cheap and single-cycle, but the simple
    /// in-order memory pipeline makes every load comparatively expensive, so
    /// code quality on this target is dominated by how well the register
    /// allocator keeps values out of memory.
    pub fn riscv_rv64() -> Self {
        TargetDesc {
            name: "riscv-rv64".into(),
            int_regs: 28,
            float_regs: 28,
            vector: None,
            cost: CostModel {
                int_op: 1,
                int_mul: 4,
                int_div: 24,
                fp_add: 4,
                fp_mul: 5,
                fp_div: 21,
                load: 5, // the load/store bias: memory dominates
                store: 2,
                mov: 1,
                convert: 2,
                branch_taken: 2,
                branch_not_taken: 1,
                // No SIMD unit: vector costs only matter for robustness.
                vec_op: 16,
                vec_load: 20,
                vec_store: 10,
                vec_reduce: 20,
                call: 12,
                spill_store: 3,
                spill_load: 5,
            },
            clock_scale: 2.2,
            timing: TimingKind::Flat,
        }
    }

    /// A GPU-style wide-SIMD core: 64-byte vector registers (16 f32 lanes —
    /// four times wider than every other SIMD preset), very cheap vector
    /// arithmetic, and expensive scalar control flow (a taken branch models
    /// divergence). Scalar memory access is slow (global-memory latency);
    /// vector access is fast (coalesced). Cross-lane reductions pay for the
    /// lane shuffles.
    pub fn gpu_wide() -> Self {
        TargetDesc {
            name: "gpu-wide".into(),
            int_regs: 16,
            float_regs: 16,
            vector: Some(VectorUnit {
                bytes: 64,
                regs: 32,
            }),
            cost: CostModel {
                int_op: 2,
                int_mul: 4,
                int_div: 48,
                fp_add: 2,
                fp_mul: 2,
                fp_div: 12,
                load: 8, // scalar loads hit global memory
                store: 4,
                mov: 1,
                convert: 2,
                branch_taken: GPU_DIVERGENCE_PENALTY, // derived above: refill + reconvergence
                branch_not_taken: 2,
                vec_op: 1,
                vec_load: 2, // coalesced
                vec_store: 1,
                vec_reduce: 10, // cross-lane shuffles
                call: 24,
                spill_store: 4,
                spill_load: 6,
            },
            clock_scale: 1.4,
            timing: TimingKind::Flat,
        }
    }

    /// The preset catalogue, built once per process.
    ///
    /// This is the single source of truth behind both [`TargetDesc::presets`]
    /// and [`TargetDesc::preset`]: a target added here is automatically
    /// enumerated by every driver, test and CLI listing, and the by-name
    /// lookup cannot drift out of sync with the enumeration.
    fn catalogue() -> &'static [TargetDesc] {
        static CATALOGUE: OnceLock<Vec<TargetDesc>> = OnceLock::new();
        CATALOGUE.get_or_init(|| {
            vec![
                TargetDesc::x86_sse(),
                TargetDesc::ultrasparc(),
                TargetDesc::powerpc(),
                TargetDesc::arm_neon(),
                TargetDesc::cell_ppe(),
                TargetDesc::cell_spu(),
                TargetDesc::dsp(),
                TargetDesc::riscv_rv64(),
                TargetDesc::gpu_wide(),
            ]
        })
    }

    /// All preset targets, keyed by name.
    pub fn presets() -> Vec<TargetDesc> {
        TargetDesc::catalogue().to_vec()
    }

    /// Look up a preset by name.
    ///
    /// Resolved against the lazily-built static catalogue — repeated lookups
    /// (the CLI and drivers call this per run) clone only the matching
    /// description instead of materializing every preset each time.
    pub fn preset(name: &str) -> Option<TargetDesc> {
        TargetDesc::catalogue()
            .iter()
            .find(|t| t.name == name)
            .cloned()
    }

    /// The three machines of Table 1, in the paper's column order.
    pub fn table1_targets() -> Vec<TargetDesc> {
        vec![
            TargetDesc::x86_sse(),
            TargetDesc::ultrasparc(),
            TargetDesc::powerpc(),
        ]
    }
}

impl fmt::Display for TargetDesc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.vector {
            Some(v) => write!(
                f,
                "{} ({} int / {} fp regs, {}-byte SIMD)",
                self.name, self.int_regs, self.float_regs, v.bytes
            ),
            None => write!(
                f,
                "{} ({} int / {} fp regs, no SIMD)",
                self.name, self.int_regs, self.float_regs
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_distinct_names_and_sane_register_files() {
        let presets = TargetDesc::presets();
        assert!(
            presets.len() >= 9,
            "the catalogue must include the RISC-V and GPU families"
        );
        let names: std::collections::BTreeSet<_> = presets.iter().map(|t| t.name.clone()).collect();
        assert_eq!(names.len(), presets.len());
        for t in &presets {
            assert!(
                t.int_regs >= 4,
                "{} needs at least 4 integer registers",
                t.name
            );
            assert!(t.float_regs >= 4);
            assert!(t.clock_scale > 0.0);
            if let Some(v) = t.vector {
                assert!(v.bytes >= 8 && v.bytes.is_power_of_two());
            }
        }
    }

    #[test]
    fn table1_targets_match_the_paper_columns() {
        let t = TargetDesc::table1_targets();
        assert_eq!(t.len(), 3);
        assert!(t[0].has_simd(), "x86 recognizes the vector builtins");
        assert!(!t[1].has_simd(), "the UltraSparc JIT scalarizes");
        assert!(!t[2].has_simd(), "the PowerPC JIT ignores vectorization");
        assert_eq!(t[0].vector_bytes(), 16);
        assert_eq!(t[1].vector_bytes(), 0);
    }

    #[test]
    fn every_preset_resolves_by_name_through_the_static_catalogue() {
        // `preset` and `presets` must never drift apart: each enumerated
        // target resolves to an identical description by name.
        for t in TargetDesc::presets() {
            let looked_up = TargetDesc::preset(&t.name)
                .unwrap_or_else(|| panic!("{} missing from the by-name lookup", t.name));
            assert_eq!(looked_up, t);
            assert_eq!(looked_up.fingerprint(), t.fingerprint());
        }
    }

    #[test]
    fn preset_lookup_and_display() {
        assert!(TargetDesc::preset("x86-sse").is_some());
        assert!(TargetDesc::preset("riscv-rv64").is_some());
        assert!(TargetDesc::preset("gpu-wide").is_some());
        assert!(TargetDesc::preset("vax").is_none());
        let shown = TargetDesc::x86_sse().to_string();
        assert!(shown.contains("x86-sse") && shown.contains("SIMD"));
        let shown = TargetDesc::powerpc().to_string();
        assert!(shown.contains("no SIMD"));
    }

    #[test]
    fn fingerprints_identify_target_configurations() {
        let presets = TargetDesc::presets();
        let prints: std::collections::BTreeSet<u64> =
            presets.iter().map(TargetDesc::fingerprint).collect();
        assert_eq!(
            prints.len(),
            presets.len(),
            "preset fingerprints must be distinct"
        );
        // Stable across calls and across clones.
        let a = TargetDesc::x86_sse();
        assert_eq!(a.fingerprint(), TargetDesc::x86_sse().fingerprint());
        assert_eq!(a.fingerprint(), a.clone().fingerprint());
        // Sensitive to every codegen-relevant knob, not just the name.
        let mut tweaked = TargetDesc::x86_sse();
        tweaked.int_regs += 1;
        assert_ne!(a.fingerprint(), tweaked.fingerprint());
        let mut recosted = TargetDesc::x86_sse();
        recosted.cost.fp_mul += 1;
        assert_ne!(a.fingerprint(), recosted.fingerprint());
        let mut reclocked = TargetDesc::x86_sse();
        reclocked.clock_scale *= 2.0;
        assert_ne!(a.fingerprint(), reclocked.fingerprint());
        // The two new families are sensitive to their distinguishing
        // cost-model fields too, not just their names: the load/store bias of
        // the RISC-V core and the branch-divergence penalty + vector width of
        // the GPU all feed the fingerprint.
        let riscv = TargetDesc::riscv_rv64();
        let mut cheap_loads = TargetDesc::riscv_rv64();
        cheap_loads.cost.load = 1;
        assert_ne!(riscv.fingerprint(), cheap_loads.fingerprint());
        let gpu = TargetDesc::gpu_wide();
        let mut tame_branches = TargetDesc::gpu_wide();
        tame_branches.cost.branch_taken = 1;
        assert_ne!(gpu.fingerprint(), tame_branches.fingerprint());
        let mut narrow = TargetDesc::gpu_wide();
        narrow.vector = Some(VectorUnit {
            bytes: 16,
            regs: 32,
        });
        assert_ne!(gpu.fingerprint(), narrow.fingerprint());
    }

    #[test]
    fn riscv_is_scalar_with_a_large_register_file_and_loadstore_bias() {
        let t = TargetDesc::riscv_rv64();
        assert!(!t.has_simd(), "the RISC-V JIT scalarizes");
        assert!(t.int_regs >= 24 && t.float_regs >= 24, "large uniform file");
        assert!(
            t.cost.load >= 4 * t.cost.int_op,
            "loads must dominate ALU work on the load/store-biased model"
        );
        assert!(t.cost.store > t.cost.int_op);
    }

    #[test]
    fn gpu_is_wide_with_cheap_vectors_and_expensive_branches() {
        let t = TargetDesc::gpu_wide();
        let v = t.vector.expect("the GPU target has a SIMD unit");
        assert_eq!(v.bytes, 64, "64-byte vectors = 16 f32 lanes");
        assert_eq!(t.vector_bytes() / 4, 16, "16 f32 lanes");
        assert!(
            t.cost.vec_op <= t.cost.int_op,
            "vector arithmetic is at least as cheap as scalar"
        );
        assert!(
            t.cost.branch_taken >= 4 * t.cost.vec_op,
            "taken branches (divergence) must dwarf vector ops"
        );
        assert!(
            t.cost.vec_load < t.cost.load,
            "coalesced vector access beats scalar global-memory access"
        );
    }

    #[test]
    fn timing_tier_defaults_to_flat_and_feeds_the_fingerprint() {
        for t in TargetDesc::presets() {
            assert_eq!(t.timing, TimingKind::Flat, "{}", t.name);
            let pipelined = t.clone().with_timing(TimingKind::InOrder);
            assert_ne!(
                t.fingerprint(),
                pipelined.fingerprint(),
                "{}: engine caches must distinguish timing tiers",
                t.name
            );
            // Same core otherwise: only the tier selector differs.
            assert_eq!(t.cost, pipelined.cost);
            assert_eq!(t.name, pipelined.name);
        }
    }

    #[test]
    fn scaled_time_applies_the_clock_factor_consistently() {
        // Pin the single cycles→time conversion every reporting path uses.
        for t in TargetDesc::presets() {
            assert!((t.scaled_time(1000) - 1000.0 * t.clock_scale).abs() < 1e-9);
            assert_eq!(t.scaled_time(0), 0.0);
        }
        // x86 is the reference clock: scaled time == cycles.
        let x86 = TargetDesc::x86_sse();
        assert!((x86.scaled_time(12345) - 12345.0).abs() < 1e-9);
        // A slower clock stretches time by exactly its factor.
        let dsp = TargetDesc::dsp();
        assert!((dsp.scaled_time(100) - 300.0).abs() < 1e-9);
    }

    #[test]
    fn gpu_divergence_penalty_is_derived_not_hand_tuned() {
        let gpu = TargetDesc::gpu_wide();
        assert_eq!(gpu.cost.branch_taken, GPU_DIVERGENCE_PENALTY);
        assert_eq!(
            GPU_DIVERGENCE_PENALTY,
            GPU_FRONTEND_REFILL + GPU_RECONVERGE_PASSES,
            "front-end refill plus warp-reconvergence passes"
        );
        // The derivation preserves the historical flat value, so fingerprints
        // and every pinned cycle count are unchanged.
        assert_eq!(GPU_DIVERGENCE_PENALTY, 12);
    }

    #[test]
    fn dsp_punishes_floating_point() {
        let dsp = TargetDesc::dsp();
        assert!(dsp.cost.fp_add > 10 * dsp.cost.int_op);
        assert!(dsp.cost.int_mul <= 2, "the DSP has a hardware MAC");
    }
}
