//! Machine-code representation shared by all virtual targets.
//!
//! The virtual ISA is a generic load/store architecture with three register
//! classes (integer, floating point, vector). Whether the vector instructions
//! are available — and how wide the vector registers are — is a property of
//! the [`TargetDesc`](crate::TargetDesc); the online compiler only emits what
//! the target supports.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Register class of a physical register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RegClass {
    /// General-purpose integer register (holds 64 bits).
    Int,
    /// Floating-point register (holds one f64).
    Float,
    /// SIMD vector register.
    Vec,
}

/// A physical register of the virtual ISA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PReg {
    /// The register class.
    pub class: RegClass,
    /// Index within the class (0-based).
    pub index: u16,
}

impl PReg {
    /// An integer register.
    pub fn int(index: u16) -> Self {
        PReg {
            class: RegClass::Int,
            index,
        }
    }
    /// A floating-point register.
    pub fn float(index: u16) -> Self {
        PReg {
            class: RegClass::Float,
            index,
        }
    }
    /// A vector register.
    pub fn vec(index: u16) -> Self {
        PReg {
            class: RegClass::Vec,
            index,
        }
    }
}

impl fmt::Display for PReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.class {
            RegClass::Int => write!(f, "r{}", self.index),
            RegClass::Float => write!(f, "f{}", self.index),
            RegClass::Vec => write!(f, "v{}", self.index),
        }
    }
}

/// Operand width in bytes for integer operations and memory accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Width {
    /// 8 bits.
    W8,
    /// 16 bits.
    W16,
    /// 32 bits.
    W32,
    /// 64 bits.
    W64,
}

impl Width {
    /// Size in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            Width::W8 => 1,
            Width::W16 => 2,
            Width::W32 => 4,
            Width::W64 => 8,
        }
    }

    /// The width holding `bytes` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not 1, 2, 4 or 8.
    pub fn from_bytes(bytes: u64) -> Width {
        match bytes {
            1 => Width::W8,
            2 => Width::W16,
            4 => Width::W32,
            8 => Width::W64,
            other => panic!("no machine width of {other} bytes"),
        }
    }
}

/// Integer ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AluOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Remainder.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left. The count is masked modulo 64 (the simulated register
    /// width), never the operand width, and the result is then normalized to
    /// the instruction's [`Width`] — matching `BinOp::Shl` in the bytecode so
    /// every execution path agrees bit-for-bit on extreme counts.
    Shl,
    /// Shift right (arithmetic when signed, logical when unsigned). The
    /// count is masked modulo 64, like [`AluOp::Shl`].
    Shr,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

/// Floating-point operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FpuOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

/// Comparison predicates (shared by integer and floating-point compares).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpPred {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

/// Horizontal reduction operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RedOp {
    /// Sum of lanes.
    Add,
    /// Minimum of lanes.
    Min,
    /// Maximum of lanes.
    Max,
}

/// One machine instruction of the virtual ISA.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MInst {
    /// `dst = value` (integer register).
    Imm {
        /// Destination integer register.
        dst: PReg,
        /// The immediate.
        value: i64,
    },
    /// `dst = value` (floating-point register).
    FImm {
        /// Destination floating-point register.
        dst: PReg,
        /// The immediate.
        value: f64,
    },
    /// Register-to-register move within one class.
    Mov {
        /// Destination register.
        dst: PReg,
        /// Source register.
        src: PReg,
    },
    /// Integer ALU operation.
    IntOp {
        /// Operation.
        op: AluOp,
        /// Operand width.
        width: Width,
        /// Signed semantics for division, shifts, min/max.
        signed: bool,
        /// Destination.
        dst: PReg,
        /// Left operand.
        lhs: PReg,
        /// Right operand.
        rhs: PReg,
    },
    /// Floating-point operation.
    FloatOp {
        /// Operation.
        op: FpuOp,
        /// `true` for f64, `false` for f32 precision.
        double: bool,
        /// Destination.
        dst: PReg,
        /// Left operand.
        lhs: PReg,
        /// Right operand.
        rhs: PReg,
    },
    /// Integer negate.
    IntNeg {
        /// Operand width.
        width: Width,
        /// Destination.
        dst: PReg,
        /// Source.
        src: PReg,
    },
    /// Integer bitwise not.
    IntNot {
        /// Operand width.
        width: Width,
        /// Destination.
        dst: PReg,
        /// Source.
        src: PReg,
    },
    /// Floating-point negate.
    FloatNeg {
        /// `true` for f64 precision.
        double: bool,
        /// Destination.
        dst: PReg,
        /// Source.
        src: PReg,
    },
    /// Integer comparison; `dst` (integer) receives 0 or 1.
    IntCmp {
        /// Predicate.
        pred: CmpPred,
        /// Operand width.
        width: Width,
        /// Signed comparison.
        signed: bool,
        /// Destination integer register.
        dst: PReg,
        /// Left operand.
        lhs: PReg,
        /// Right operand.
        rhs: PReg,
    },
    /// Floating-point comparison; `dst` (integer) receives 0 or 1.
    FloatCmp {
        /// Predicate.
        pred: CmpPred,
        /// `true` for f64 precision.
        double: bool,
        /// Destination integer register.
        dst: PReg,
        /// Left operand.
        lhs: PReg,
        /// Right operand.
        rhs: PReg,
    },
    /// Conditional select within one register class.
    Select {
        /// Destination register.
        dst: PReg,
        /// Integer condition register (non-zero selects `if_true`).
        cond: PReg,
        /// Value when the condition is non-zero.
        if_true: PReg,
        /// Value when the condition is zero.
        if_false: PReg,
    },
    /// Integer to floating-point conversion.
    IntToFloat {
        /// Treat the source as signed.
        signed: bool,
        /// Produce f64 (`true`) or f32 (`false`) precision.
        double: bool,
        /// Destination floating-point register.
        dst: PReg,
        /// Source integer register.
        src: PReg,
    },
    /// Floating-point to integer conversion (truncation).
    FloatToInt {
        /// Destination width.
        width: Width,
        /// Signed destination.
        signed: bool,
        /// Destination integer register.
        dst: PReg,
        /// Source floating-point register.
        src: PReg,
    },
    /// Floating-point precision change.
    FloatCvt {
        /// Convert to f64 (`true`) or round to f32 (`false`).
        to_double: bool,
        /// Destination floating-point register.
        dst: PReg,
        /// Source floating-point register.
        src: PReg,
    },
    /// Re-normalize an integer register to a narrower width.
    IntResize {
        /// Target width.
        width: Width,
        /// Sign-extend (`true`) or zero-extend.
        signed: bool,
        /// Destination integer register.
        dst: PReg,
        /// Source integer register.
        src: PReg,
    },
    /// Scalar load from memory.
    Load {
        /// Access width.
        width: Width,
        /// Load into a floating-point register.
        float: bool,
        /// Sign-extend integer loads.
        signed: bool,
        /// Destination register.
        dst: PReg,
        /// Base address register (integer).
        base: PReg,
        /// Byte displacement.
        offset: i64,
    },
    /// Scalar store to memory.
    Store {
        /// Access width.
        width: Width,
        /// Store from a floating-point register.
        float: bool,
        /// Base address register (integer).
        base: PReg,
        /// Byte displacement.
        offset: i64,
        /// Source register.
        src: PReg,
    },
    /// Vector load of one full vector register.
    VecLoad {
        /// Destination vector register.
        dst: PReg,
        /// Base address register (integer).
        base: PReg,
        /// Byte displacement.
        offset: i64,
    },
    /// Vector store of one full vector register.
    VecStore {
        /// Base address register (integer).
        base: PReg,
        /// Byte displacement.
        offset: i64,
        /// Source vector register.
        src: PReg,
    },
    /// Broadcast an integer scalar into every lane.
    VecSplatInt {
        /// Lane width.
        elem: Width,
        /// Destination vector register.
        dst: PReg,
        /// Source integer register.
        src: PReg,
    },
    /// Broadcast a floating-point scalar into every lane.
    VecSplatFloat {
        /// Lane width (`W32` or `W64`).
        elem: Width,
        /// Destination vector register.
        dst: PReg,
        /// Source floating-point register.
        src: PReg,
    },
    /// Element-wise integer vector operation.
    VecIntOp {
        /// Operation.
        op: AluOp,
        /// Lane width.
        elem: Width,
        /// Signed lane semantics.
        signed: bool,
        /// Destination vector register.
        dst: PReg,
        /// Left operand.
        lhs: PReg,
        /// Right operand.
        rhs: PReg,
    },
    /// Element-wise floating-point vector operation.
    VecFloatOp {
        /// Operation.
        op: FpuOp,
        /// Lane width (`W32` or `W64`).
        elem: Width,
        /// Destination vector register.
        dst: PReg,
        /// Left operand.
        lhs: PReg,
        /// Right operand.
        rhs: PReg,
    },
    /// Horizontal integer reduction into an integer register.
    VecReduceInt {
        /// Reduction operator.
        op: RedOp,
        /// Lane width.
        elem: Width,
        /// Signed lane semantics.
        signed: bool,
        /// Destination integer register.
        dst: PReg,
        /// Source vector register.
        src: PReg,
    },
    /// Horizontal floating-point reduction into a floating-point register.
    VecReduceFloat {
        /// Reduction operator.
        op: RedOp,
        /// Lane width (`W32` or `W64`).
        elem: Width,
        /// Destination floating-point register.
        dst: PReg,
        /// Source vector register.
        src: PReg,
    },
    /// Spill a register to a stack slot.
    Spill {
        /// Stack slot index.
        slot: u32,
        /// Source register.
        src: PReg,
    },
    /// Reload a register from a stack slot.
    Reload {
        /// Stack slot index.
        slot: u32,
        /// Destination register.
        dst: PReg,
    },
    /// Unconditional jump to a block.
    Jump {
        /// Target block index.
        target: u32,
    },
    /// Branch on a non-zero integer condition.
    BranchNz {
        /// Condition register (integer).
        cond: PReg,
        /// Target when non-zero.
        then_target: u32,
        /// Target when zero.
        else_target: u32,
    },
    /// Direct call with a virtual calling convention (the simulator copies the
    /// argument registers into the callee's parameter registers).
    Call {
        /// Callee function name.
        callee: String,
        /// Argument registers, in order.
        args: Vec<PReg>,
        /// Register receiving the return value, if any.
        ret: Option<PReg>,
    },
    /// Return from the function.
    Ret {
        /// Returned register, if any.
        value: Option<PReg>,
    },
}

impl MInst {
    /// `true` if this instruction ends a basic block.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            MInst::Jump { .. } | MInst::BranchNz { .. } | MInst::Ret { .. }
        )
    }

    /// `true` for vector instructions (only valid on SIMD-capable targets).
    pub fn is_vector(&self) -> bool {
        matches!(
            self,
            MInst::VecLoad { .. }
                | MInst::VecStore { .. }
                | MInst::VecSplatInt { .. }
                | MInst::VecSplatFloat { .. }
                | MInst::VecIntOp { .. }
                | MInst::VecFloatOp { .. }
                | MInst::VecReduceInt { .. }
                | MInst::VecReduceFloat { .. }
        )
    }

    /// `true` for spill/reload traffic inserted by the register allocator.
    pub fn is_spill(&self) -> bool {
        matches!(self, MInst::Spill { .. } | MInst::Reload { .. })
    }

    /// Estimated encoded size in bytes, used by the code-size experiment (E5).
    ///
    /// The estimate models a 32-bit RISC-style encoding with extension words
    /// for large immediates and displacements, plus a prefix byte for vector
    /// operations (as on SSE/AltiVec).
    pub fn estimated_bytes(&self) -> u64 {
        let imm_extra = |v: i64| if (-128..=127).contains(&v) { 0 } else { 4 };
        match self {
            MInst::Imm { value, .. } => 4 + imm_extra(*value),
            MInst::FImm { .. } => 8,
            MInst::Load { offset, .. } | MInst::Store { offset, .. } => 4 + imm_extra(*offset),
            MInst::VecLoad { offset, .. } | MInst::VecStore { offset, .. } => {
                5 + imm_extra(*offset)
            }
            MInst::Call { args, .. } => 4 + args.len() as u64,
            i if i.is_vector() => 5,
            _ => 4,
        }
    }
}

/// A basic block of machine code.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MBlock {
    /// Instructions; the last one must be a terminator.
    pub insts: Vec<MInst>,
}

/// A compiled machine function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MFunction {
    /// Function name (matches the bytecode function it was compiled from).
    pub name: String,
    /// Registers in which the function expects its arguments.
    pub params: Vec<PReg>,
    /// Basic blocks; block 0 is the entry.
    pub blocks: Vec<MBlock>,
    /// Number of stack slots used for spills.
    pub num_slots: u32,
}

impl MFunction {
    /// Total instruction count.
    pub fn num_insts(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// Number of spill/reload instructions (static count).
    pub fn num_spill_insts(&self) -> usize {
        self.blocks
            .iter()
            .flat_map(|b| b.insts.iter())
            .filter(|i| i.is_spill())
            .count()
    }

    /// Estimated code size in bytes (see [`MInst::estimated_bytes`]).
    pub fn estimated_code_bytes(&self) -> u64 {
        self.blocks
            .iter()
            .flat_map(|b| b.insts.iter())
            .map(MInst::estimated_bytes)
            .sum()
    }
}

/// A fully compiled program for one target.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MProgram {
    /// Name of the originating module.
    pub name: String,
    /// Compiled functions.
    pub functions: Vec<MFunction>,
}

impl MProgram {
    /// Look up a function by name.
    pub fn function(&self, name: &str) -> Option<&MFunction> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Estimated total code size in bytes.
    pub fn estimated_code_bytes(&self) -> u64 {
        self.functions
            .iter()
            .map(MFunction::estimated_code_bytes)
            .sum()
    }

    /// Total instruction count across all functions.
    pub fn num_insts(&self) -> usize {
        self.functions.iter().map(MFunction::num_insts).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_and_pregs() {
        assert_eq!(Width::W8.bytes(), 1);
        assert_eq!(Width::from_bytes(4), Width::W32);
        assert_eq!(PReg::int(3).to_string(), "r3");
        assert_eq!(PReg::float(2).to_string(), "f2");
        assert_eq!(PReg::vec(1).to_string(), "v1");
    }

    #[test]
    #[should_panic(expected = "no machine width")]
    fn bad_width_panics() {
        let _ = Width::from_bytes(3);
    }

    #[test]
    fn classification_of_instructions() {
        let j = MInst::Jump { target: 2 };
        assert!(j.is_terminator());
        let v = MInst::VecIntOp {
            op: AluOp::Add,
            elem: Width::W8,
            signed: false,
            dst: PReg::vec(0),
            lhs: PReg::vec(1),
            rhs: PReg::vec(2),
        };
        assert!(v.is_vector() && !v.is_terminator());
        let s = MInst::Spill {
            slot: 0,
            src: PReg::int(1),
        };
        assert!(s.is_spill());
    }

    #[test]
    fn code_size_estimates_scale_with_program_size() {
        let small = MFunction {
            name: "f".into(),
            params: vec![],
            blocks: vec![MBlock {
                insts: vec![MInst::Ret { value: None }],
            }],
            num_slots: 0,
        };
        let big = MFunction {
            name: "g".into(),
            params: vec![],
            blocks: vec![MBlock {
                insts: vec![
                    MInst::Imm {
                        dst: PReg::int(0),
                        value: 1_000_000,
                    },
                    MInst::Load {
                        width: Width::W32,
                        float: false,
                        signed: true,
                        dst: PReg::int(1),
                        base: PReg::int(0),
                        offset: 4096,
                    },
                    MInst::Ret { value: None },
                ],
            }],
            num_slots: 0,
        };
        assert!(big.estimated_code_bytes() > small.estimated_code_bytes());
        let program = MProgram {
            name: "m".into(),
            functions: vec![small, big],
        };
        assert_eq!(program.functions.len(), 2);
        assert!(program.function("g").is_some());
        assert!(program.estimated_code_bytes() > 8);
        assert_eq!(program.num_insts(), 4);
    }
}
