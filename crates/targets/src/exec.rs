//! Pre-decoded execution: deploy-time preparation of machine programs.
//!
//! Split compilation moves work out of the latency-critical stage into an
//! earlier stage that runs once. This module applies the same discipline to
//! *execution*: a [`PreparedProgram`] is built once per `(program, target)`
//! pair — at deploy time, right after online compilation — and can then be
//! run any number of times with none of the per-run decoding the legacy
//! [`Simulator`](crate::Simulator) walk pays on every instruction:
//!
//! * every function's blocks are **flattened into one linear instruction
//!   stream**, with block jumps resolved to instruction offsets (no
//!   `blocks[b].insts[i]` double indirection, no per-step instruction clone);
//! * call targets are resolved from `&str` names to **dense function
//!   indices** (no per-call linear name lookup);
//! * every register index is **bounds-checked once at prepare time** against
//!   the target's register files, so the hot loop never re-validates;
//! * per-instruction cycle costs and vector lane counts are **precomputed**
//!   where they depend on the opcode;
//! * call frames come from a [`FramePool`] that recycles the register-file
//!   and spill-slot allocations across calls and across runs (vector
//!   registers live in one flat byte buffer — empty on scalar-only targets —
//!   instead of one heap allocation per register).
//!
//! Semantics are bit-identical to the legacy walk — results, traps and
//! [`SimStats`] alike — which the cross-crate differential tests assert.
//!
//! # Example
//!
//! ```
//! use splitc_targets::{
//!     AluOp, FramePool, MBlock, MFunction, MInst, MProgram, MachineValue, PReg,
//!     PreparedProgram, PreparedSimulator, TargetDesc, Width,
//! };
//!
//! let f = MFunction {
//!     name: "add1".into(),
//!     params: vec![PReg::int(0)],
//!     blocks: vec![MBlock {
//!         insts: vec![
//!             MInst::Imm { dst: PReg::int(1), value: 1 },
//!             MInst::IntOp {
//!                 op: AluOp::Add, width: Width::W32, signed: true,
//!                 dst: PReg::int(0), lhs: PReg::int(0), rhs: PReg::int(1),
//!             },
//!             MInst::Ret { value: Some(PReg::int(0)) },
//!         ],
//!     }],
//!     num_slots: 0,
//! };
//! let program = MProgram { name: "demo".into(), functions: vec![f] };
//! let target = TargetDesc::x86_sse();
//!
//! // Prepare once (deploy time)...
//! let prepared = PreparedProgram::prepare(&program, &target).unwrap();
//! // ...run many times (online), reusing one simulator and its frame pool.
//! let mut sim = PreparedSimulator::new(&prepared);
//! let mut mem = vec![0u8; 64];
//! for i in 0..10 {
//!     let out = sim.run("add1", &[MachineValue::Int(i)], &mut mem).unwrap();
//!     assert_eq!(out, Some(MachineValue::Int(i + 1)));
//! }
//! ```

use crate::desc::{CostModel, TargetDesc};
use crate::mcode::{
    AluOp, CmpPred, FpuOp, MFunction, MInst, MProgram, PReg, RedOp, RegClass, Width,
};
use crate::simulator::{
    alu, check_range, compare, fpu, normalize, read_lane_float, read_lane_int, read_mem,
    write_lane_float, write_lane_int, write_mem, MachineValue, SimError, SimStats,
    DEFAULT_SIM_FUEL, MAX_CALL_DEPTH,
};
use std::collections::HashMap;

/// A value held in a spill slot of a prepared frame.
#[derive(Debug, Clone, PartialEq)]
enum SlotValue {
    Empty,
    Int(i64),
    Float(f64),
    Vec(Vec<u8>),
}

/// One recycled call frame: the register files and spill slots of one call.
///
/// Vector registers are a single flat byte buffer (`vec_regs × vector_bytes`),
/// not one heap allocation per register; on scalar-only targets it is empty.
#[derive(Debug, Default)]
struct Frame {
    int: Vec<i64>,
    float: Vec<f64>,
    vec: Vec<u8>,
    slots: Vec<SlotValue>,
}

/// A pool of reusable call frames (and call-argument scratch buffers).
///
/// The legacy simulator allocated four `Vec`s — including a `Vec<Vec<u8>>`
/// for the vector registers — on **every** call, including recursive ones.
/// A `FramePool` hands frames out of a free list instead: after a short
/// warm-up, running a kernel performs no allocation at all. Pools are
/// target-agnostic (frames are resized on acquire, reusing capacity), so one
/// pool can serve a whole sweep across many targets.
#[derive(Debug, Default)]
pub struct FramePool {
    frames: Vec<Frame>,
    argv: Vec<Vec<MachineValue>>,
}

impl FramePool {
    /// An empty pool; frames are created on first use and recycled after.
    pub fn new() -> Self {
        FramePool::default()
    }

    /// Frames currently sitting in the free list (for tests/diagnostics).
    pub fn pooled_frames(&self) -> usize {
        self.frames.len()
    }

    fn acquire(&mut self, int: usize, float: usize, vec_bytes: usize, slots: usize) -> Frame {
        let mut f = self.frames.pop().unwrap_or_default();
        f.int.clear();
        f.int.resize(int, 0);
        f.float.clear();
        f.float.resize(float, 0.0);
        f.vec.clear();
        f.vec.resize(vec_bytes, 0);
        f.slots.clear();
        f.slots.resize(slots, SlotValue::Empty);
        f
    }

    fn release(&mut self, frame: Frame) {
        self.frames.push(frame);
    }

    fn take_argv(&mut self) -> Vec<MachineValue> {
        let mut v = self.argv.pop().unwrap_or_default();
        v.clear();
        v
    }

    fn give_argv(&mut self, argv: Vec<MachineValue>) {
        self.argv.push(argv);
    }
}

/// A register operand resolved to `(class, index)` with the index validated
/// at prepare time. For vector registers the `usize` is a *byte offset* into
/// the frame's flat vector buffer.
type RRef = (RegClass, usize);

/// One pre-decoded instruction of the flat stream.
///
/// Operands are plain `usize` indices (validated at prepare time), block
/// targets are instruction offsets, call targets are function indices, and
/// opcode-dependent cycle costs / lane counts are baked in.
#[derive(Debug, Clone, PartialEq)]
enum PInst {
    Imm {
        dst: usize,
        value: i64,
    },
    FImm {
        dst: usize,
        value: f64,
    },
    MovInt {
        dst: usize,
        src: usize,
    },
    MovFloat {
        dst: usize,
        src: usize,
    },
    MovVec {
        dst: usize,
        src: usize,
    },
    IntOp {
        op: AluOp,
        width: Width,
        signed: bool,
        dst: usize,
        lhs: usize,
        rhs: usize,
        cost: u64,
    },
    FloatOp {
        op: FpuOp,
        double: bool,
        dst: usize,
        lhs: usize,
        rhs: usize,
        cost: u64,
    },
    IntNeg {
        width: Width,
        dst: usize,
        src: usize,
    },
    IntNot {
        width: Width,
        dst: usize,
        src: usize,
    },
    FloatNeg {
        double: bool,
        dst: usize,
        src: usize,
    },
    IntCmp {
        pred: CmpPred,
        width: Width,
        signed: bool,
        dst: usize,
        lhs: usize,
        rhs: usize,
    },
    FloatCmp {
        pred: CmpPred,
        double: bool,
        dst: usize,
        lhs: usize,
        rhs: usize,
    },
    SelectInt {
        dst: usize,
        cond: usize,
        if_true: usize,
        if_false: usize,
    },
    SelectFloat {
        dst: usize,
        cond: usize,
        if_true: usize,
        if_false: usize,
    },
    SelectVec {
        dst: usize,
        cond: usize,
        if_true: usize,
        if_false: usize,
    },
    IntToFloat {
        signed: bool,
        double: bool,
        dst: usize,
        src: usize,
    },
    FloatToInt {
        width: Width,
        signed: bool,
        dst: usize,
        src: usize,
    },
    FloatCvt {
        to_double: bool,
        dst: usize,
        src: usize,
    },
    IntResize {
        width: Width,
        signed: bool,
        dst: usize,
        src: usize,
    },
    LoadInt {
        width: Width,
        signed: bool,
        dst: usize,
        base: usize,
        offset: i64,
    },
    LoadFloat {
        width: Width,
        dst: usize,
        base: usize,
        offset: i64,
    },
    StoreInt {
        width: Width,
        base: usize,
        offset: i64,
        src: usize,
    },
    StoreFloat {
        width: Width,
        base: usize,
        offset: i64,
        src: usize,
    },
    VecLoad {
        dst: usize,
        base: usize,
        offset: i64,
    },
    VecStore {
        base: usize,
        offset: i64,
        src: usize,
    },
    VecSplatInt {
        elem: Width,
        lanes: usize,
        dst: usize,
        src: usize,
    },
    VecSplatFloat {
        elem: Width,
        lanes: usize,
        dst: usize,
        src: usize,
    },
    VecIntOp {
        op: AluOp,
        elem: Width,
        signed: bool,
        lanes: usize,
        dst: usize,
        lhs: usize,
        rhs: usize,
    },
    VecFloatOp {
        op: FpuOp,
        elem: Width,
        double: bool,
        lanes: usize,
        dst: usize,
        lhs: usize,
        rhs: usize,
    },
    VecReduceInt {
        op: RedOp,
        elem: Width,
        signed: bool,
        lanes: usize,
        dst: usize,
        src: usize,
    },
    VecReduceFloat {
        op: RedOp,
        elem: Width,
        lanes: usize,
        dst: usize,
        src: usize,
    },
    SpillInt {
        slot: usize,
        src: usize,
    },
    SpillFloat {
        slot: usize,
        src: usize,
    },
    SpillVec {
        slot: usize,
        src: usize,
    },
    Reload {
        slot: usize,
        class: RegClass,
        dst: usize,
    },
    Jump {
        target: u32,
    },
    BranchNz {
        cond: usize,
        then_target: u32,
        else_target: u32,
    },
    Call {
        callee: usize,
        args: Box<[RRef]>,
        ret: Option<RRef>,
    },
    /// A call whose target does not exist in the program. Kept as a runtime
    /// error (like the legacy walk) so dead malformed calls don't poison
    /// preparation of an otherwise-valid program.
    CallUnknown {
        name: String,
    },
    Ret {
        value: Option<RRef>,
    },
    /// Synthetic trap appended after any block that does not end in a
    /// terminator, preserving the legacy "fell off the end" behaviour in a
    /// flat stream.
    FellOff {
        block: u32,
    },
}

/// One function of a [`PreparedProgram`]: a flat, pre-validated instruction
/// stream plus the frame layout it needs.
#[derive(Debug, Clone, PartialEq)]
struct PreparedFunction {
    name: String,
    params: Box<[RRef]>,
    num_slots: usize,
    code: Vec<PInst>,
}

/// A machine program pre-decoded for one target, ready to run many times.
///
/// Built once per `(program, target)` pair with [`PreparedProgram::prepare`]
/// — typically at deploy time, cached next to the compiled program — and
/// driven by [`PreparedSimulator`] (or directly via [`PreparedProgram::run`]
/// with an external [`FramePool`]). See the [module docs](self) for what is
/// precomputed.
#[derive(Debug, Clone, PartialEq)]
pub struct PreparedProgram {
    name: String,
    functions: Vec<PreparedFunction>,
    by_name: HashMap<String, usize>,
    int_regs: usize,
    float_regs: usize,
    /// Total bytes of the flat vector buffer (`vec_regs × vector_bytes`);
    /// zero on scalar-only targets, so their frames allocate nothing for it.
    vec_bytes_total: usize,
    vector_bytes: usize,
    cost: CostModel,
}

impl PreparedProgram {
    /// Pre-decode `program` for `target`.
    ///
    /// All register indices, spill-slot indices, block targets and vector
    /// capabilities are validated here, **once**, so the execution loop never
    /// re-checks them.
    ///
    /// Validation is deliberately **eager and whole-program**: a malformed
    /// instruction fails deployment even if it sits in a function the
    /// deployment would never execute (where the legacy walk only trapped on
    /// execution). Failing at deploy time instead of on the Nth run is the
    /// point of preparation; only *unknown call targets* stay lazy (they are
    /// a name-resolution property, not a malformed-code one).
    ///
    /// # Errors
    ///
    /// Returns the same [`SimError`] variants the legacy walk would raise at
    /// run time: [`SimError::BadRegister`] for an index beyond the target's
    /// register file, [`SimError::NoVectorUnit`] for vector instructions on a
    /// scalar-only target, and [`SimError::Trap`] for malformed control flow.
    pub fn prepare(program: &MProgram, target: &TargetDesc) -> Result<PreparedProgram, SimError> {
        let mut by_name = HashMap::with_capacity(program.functions.len());
        for (i, f) in program.functions.iter().enumerate() {
            // First definition wins, matching `MProgram::function`.
            by_name.entry(f.name.clone()).or_insert(i);
        }
        let layout = Layout {
            int_regs: usize::from(target.int_regs),
            float_regs: usize::from(target.float_regs),
            vec_regs: target.vector.map(|v| usize::from(v.regs)).unwrap_or(0),
            vector_bytes: target.vector_bytes() as usize,
        };
        let mut functions = Vec::with_capacity(program.functions.len());
        for f in &program.functions {
            functions.push(prepare_function(f, target, &layout, &by_name)?);
        }
        Ok(PreparedProgram {
            name: program.name.clone(),
            functions,
            by_name,
            int_regs: layout.int_regs,
            float_regs: layout.float_regs,
            vec_bytes_total: layout.vec_regs * layout.vector_bytes,
            vector_bytes: layout.vector_bytes,
            cost: target.cost,
        })
    }

    /// Name of the originating module.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of prepared functions.
    pub fn num_functions(&self) -> usize {
        self.functions.len()
    }

    /// Dense index of `func`, if it exists (the prepared equivalent of
    /// `MProgram::function`, resolved through a hash map instead of a linear
    /// scan).
    pub fn function_index(&self, func: &str) -> Option<usize> {
        self.by_name.get(func).copied()
    }

    /// Execute `func` with `args` against `mem`, drawing frames from `pool`
    /// and writing run statistics into `stats` (which is reset first).
    ///
    /// This is the externally-pooled entry the engine and sweep workers use
    /// so frame allocations amortize across *runs*, not just across calls
    /// within one run. [`PreparedSimulator`] wraps it with an owned pool.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] on unknown functions, argument mismatches,
    /// runtime traps or fuel exhaustion.
    pub fn run(
        &self,
        func: &str,
        args: &[MachineValue],
        mem: &mut [u8],
        pool: &mut FramePool,
        fuel: u64,
        stats: &mut SimStats,
    ) -> Result<Option<MachineValue>, SimError> {
        *stats = SimStats::default();
        let fi = self
            .function_index(func)
            .ok_or_else(|| SimError::UnknownFunction(func.to_owned()))?;
        let mut fuel = fuel;
        self.exec(fi, args, mem, pool, &mut fuel, 0, stats)
    }

    #[allow(clippy::too_many_arguments)]
    fn exec(
        &self,
        fi: usize,
        args: &[MachineValue],
        mem: &mut [u8],
        pool: &mut FramePool,
        fuel: &mut u64,
        depth: usize,
        stats: &mut SimStats,
    ) -> Result<Option<MachineValue>, SimError> {
        if depth > MAX_CALL_DEPTH {
            return Err(SimError::Trap("call depth exceeded".into()));
        }
        let f = &self.functions[fi];
        if f.params.len() != args.len() {
            return Err(SimError::BadArgumentCount {
                expected: f.params.len(),
                found: args.len(),
            });
        }
        let mut frame = pool.acquire(
            self.int_regs,
            self.float_regs,
            self.vec_bytes_total,
            f.num_slots,
        );
        let result = self.exec_in_frame(f, &mut frame, args, mem, pool, fuel, depth, stats);
        pool.release(frame);
        result
    }

    #[allow(clippy::too_many_arguments, clippy::too_many_lines)]
    fn exec_in_frame(
        &self,
        f: &PreparedFunction,
        frame: &mut Frame,
        args: &[MachineValue],
        mem: &mut [u8],
        pool: &mut FramePool,
        fuel: &mut u64,
        depth: usize,
        stats: &mut SimStats,
    ) -> Result<Option<MachineValue>, SimError> {
        for (&(class, idx), value) in f.params.iter().zip(args) {
            match (class, value) {
                (RegClass::Int, MachineValue::Int(v)) => frame.int[idx] = *v,
                (RegClass::Float, MachineValue::Float(v)) => frame.float[idx] = *v,
                (RegClass::Int, MachineValue::Float(v)) => frame.int[idx] = *v as i64,
                (RegClass::Float, MachineValue::Int(v)) => frame.float[idx] = *v as f64,
                (RegClass::Vec, _) => {
                    return Err(SimError::Trap(
                        "vector registers cannot be parameters".into(),
                    ));
                }
            }
        }

        let cost = &self.cost;
        let vb = self.vector_bytes;
        let code = &f.code;
        let mut pc = 0usize;
        loop {
            if *fuel == 0 {
                return Err(SimError::OutOfFuel);
            }
            *fuel -= 1;
            let inst = &code[pc];
            pc += 1;
            stats.instructions += 1;

            match inst {
                PInst::Imm { dst, value } => {
                    frame.int[*dst] = *value;
                    stats.cycles += cost.mov;
                }
                PInst::FImm { dst, value } => {
                    frame.float[*dst] = *value;
                    stats.cycles += cost.mov;
                }
                PInst::MovInt { dst, src } => {
                    frame.int[*dst] = frame.int[*src];
                    stats.cycles += cost.mov;
                }
                PInst::MovFloat { dst, src } => {
                    frame.float[*dst] = frame.float[*src];
                    stats.cycles += cost.mov;
                }
                PInst::MovVec { dst, src } => {
                    frame.vec.copy_within(*src..*src + vb, *dst);
                    stats.cycles += cost.mov;
                }
                PInst::IntOp {
                    op,
                    width,
                    signed,
                    dst,
                    lhs,
                    rhs,
                    cost,
                } => {
                    let a = frame.int[*lhs];
                    let b = frame.int[*rhs];
                    frame.int[*dst] = alu(*op, *width, *signed, a, b)?;
                    stats.cycles += cost;
                }
                PInst::FloatOp {
                    op,
                    double,
                    dst,
                    lhs,
                    rhs,
                    cost,
                } => {
                    let a = frame.float[*lhs];
                    let b = frame.float[*rhs];
                    frame.float[*dst] = fpu(*op, *double, a, b);
                    stats.cycles += cost;
                }
                PInst::IntNeg { width, dst, src } => {
                    let v = frame.int[*src];
                    frame.int[*dst] = normalize(*width, true, v.wrapping_neg());
                    stats.cycles += cost.int_op;
                }
                PInst::IntNot { width, dst, src } => {
                    let v = frame.int[*src];
                    frame.int[*dst] = normalize(*width, false, !v);
                    stats.cycles += cost.int_op;
                }
                PInst::FloatNeg { double, dst, src } => {
                    let v = frame.float[*src];
                    frame.float[*dst] = if *double { -v } else { f64::from(-(v as f32)) };
                    stats.cycles += cost.fp_add;
                }
                PInst::IntCmp {
                    pred,
                    width,
                    signed,
                    dst,
                    lhs,
                    rhs,
                } => {
                    let a = normalize(*width, *signed, frame.int[*lhs]);
                    let b = normalize(*width, *signed, frame.int[*rhs]);
                    frame.int[*dst] = if *signed {
                        compare(*pred, a, b)
                    } else {
                        compare(*pred, a as u64, b as u64)
                    };
                    stats.cycles += cost.int_op;
                }
                PInst::FloatCmp {
                    pred,
                    double,
                    dst,
                    lhs,
                    rhs,
                } => {
                    let a = frame.float[*lhs];
                    let b = frame.float[*rhs];
                    let (a, b) = if *double {
                        (a, b)
                    } else {
                        (f64::from(a as f32), f64::from(b as f32))
                    };
                    frame.int[*dst] = if a.partial_cmp(&b).is_none() {
                        i64::from(*pred == CmpPred::Ne)
                    } else {
                        compare(*pred, a, b)
                    };
                    stats.cycles += cost.fp_add;
                }
                PInst::SelectInt {
                    dst,
                    cond,
                    if_true,
                    if_false,
                } => {
                    let chosen = if frame.int[*cond] != 0 {
                        *if_true
                    } else {
                        *if_false
                    };
                    frame.int[*dst] = frame.int[chosen];
                    stats.cycles += cost.mov;
                }
                PInst::SelectFloat {
                    dst,
                    cond,
                    if_true,
                    if_false,
                } => {
                    let chosen = if frame.int[*cond] != 0 {
                        *if_true
                    } else {
                        *if_false
                    };
                    frame.float[*dst] = frame.float[chosen];
                    stats.cycles += cost.mov;
                }
                PInst::SelectVec {
                    dst,
                    cond,
                    if_true,
                    if_false,
                } => {
                    let chosen = if frame.int[*cond] != 0 {
                        *if_true
                    } else {
                        *if_false
                    };
                    frame.vec.copy_within(chosen..chosen + vb, *dst);
                    stats.cycles += cost.mov;
                }
                PInst::IntToFloat {
                    signed,
                    double,
                    dst,
                    src,
                } => {
                    let v = frame.int[*src];
                    let x = if *signed { v as f64 } else { v as u64 as f64 };
                    frame.float[*dst] = if *double { x } else { f64::from(x as f32) };
                    stats.cycles += cost.convert;
                }
                PInst::FloatToInt {
                    width,
                    signed,
                    dst,
                    src,
                } => {
                    let v = frame.float[*src];
                    frame.int[*dst] = normalize(*width, *signed, v as i64);
                    stats.cycles += cost.convert;
                }
                PInst::FloatCvt {
                    to_double,
                    dst,
                    src,
                } => {
                    let v = frame.float[*src];
                    frame.float[*dst] = if *to_double { v } else { f64::from(v as f32) };
                    stats.cycles += cost.convert;
                }
                PInst::IntResize {
                    width,
                    signed,
                    dst,
                    src,
                } => {
                    let v = frame.int[*src];
                    frame.int[*dst] = normalize(*width, *signed, v);
                    stats.cycles += cost.int_op;
                }
                PInst::LoadInt {
                    width,
                    signed,
                    dst,
                    base,
                    offset,
                } => {
                    let addr = frame.int[*base].wrapping_add(*offset);
                    let raw = read_mem(mem, addr, width.bytes())?;
                    frame.int[*dst] = normalize(*width, *signed, raw as i64);
                    stats.cycles += cost.load;
                    stats.loads += 1;
                }
                PInst::LoadFloat {
                    width,
                    dst,
                    base,
                    offset,
                } => {
                    let addr = frame.int[*base].wrapping_add(*offset);
                    let raw = read_mem(mem, addr, width.bytes())?;
                    frame.float[*dst] = match width {
                        Width::W32 => f64::from(f32::from_bits(raw as u32)),
                        _ => f64::from_bits(raw),
                    };
                    stats.cycles += cost.load;
                    stats.loads += 1;
                }
                PInst::StoreInt {
                    width,
                    base,
                    offset,
                    src,
                } => {
                    let addr = frame.int[*base].wrapping_add(*offset);
                    write_mem(mem, addr, width.bytes(), frame.int[*src] as u64)?;
                    stats.cycles += cost.store;
                    stats.stores += 1;
                }
                PInst::StoreFloat {
                    width,
                    base,
                    offset,
                    src,
                } => {
                    let addr = frame.int[*base].wrapping_add(*offset);
                    let v = frame.float[*src];
                    let raw = match width {
                        Width::W32 => u64::from((v as f32).to_bits()),
                        _ => v.to_bits(),
                    };
                    write_mem(mem, addr, width.bytes(), raw)?;
                    stats.cycles += cost.store;
                    stats.stores += 1;
                }
                PInst::VecLoad { dst, base, offset } => {
                    let addr = frame.int[*base].wrapping_add(*offset);
                    check_range(mem, addr, vb as u64)?;
                    frame.vec[*dst..*dst + vb]
                        .copy_from_slice(&mem[addr as usize..addr as usize + vb]);
                    stats.cycles += cost.vec_load;
                    stats.loads += 1;
                    stats.vector_ops += 1;
                }
                PInst::VecStore { base, offset, src } => {
                    let addr = frame.int[*base].wrapping_add(*offset);
                    check_range(mem, addr, vb as u64)?;
                    mem[addr as usize..addr as usize + vb]
                        .copy_from_slice(&frame.vec[*src..*src + vb]);
                    stats.cycles += cost.vec_store;
                    stats.stores += 1;
                    stats.vector_ops += 1;
                }
                PInst::VecSplatInt {
                    elem,
                    lanes,
                    dst,
                    src,
                } => {
                    let v = frame.int[*src];
                    let reg = &mut frame.vec[*dst..*dst + vb];
                    for lane in 0..*lanes {
                        write_lane_int(reg, lane, *elem, v);
                    }
                    stats.cycles += cost.vec_op;
                    stats.vector_ops += 1;
                }
                PInst::VecSplatFloat {
                    elem,
                    lanes,
                    dst,
                    src,
                } => {
                    let v = frame.float[*src];
                    let reg = &mut frame.vec[*dst..*dst + vb];
                    for lane in 0..*lanes {
                        write_lane_float(reg, lane, *elem, v);
                    }
                    stats.cycles += cost.vec_op;
                    stats.vector_ops += 1;
                }
                PInst::VecIntOp {
                    op,
                    elem,
                    signed,
                    lanes,
                    dst,
                    lhs,
                    rhs,
                } => {
                    // Lane-by-lane read-then-write is aliasing-safe without
                    // the legacy per-op input clones: writing lane i of dst
                    // never changes a lane j > i of lhs/rhs.
                    for lane in 0..*lanes {
                        let x = read_lane_int(&frame.vec[*lhs..*lhs + vb], lane, *elem, *signed);
                        let y = read_lane_int(&frame.vec[*rhs..*rhs + vb], lane, *elem, *signed);
                        let r = alu(*op, *elem, *signed, x, y)?;
                        write_lane_int(&mut frame.vec[*dst..*dst + vb], lane, *elem, r);
                    }
                    stats.cycles += cost.vec_op;
                    stats.vector_ops += 1;
                }
                PInst::VecFloatOp {
                    op,
                    elem,
                    double,
                    lanes,
                    dst,
                    lhs,
                    rhs,
                } => {
                    for lane in 0..*lanes {
                        let x = read_lane_float(&frame.vec[*lhs..*lhs + vb], lane, *elem);
                        let y = read_lane_float(&frame.vec[*rhs..*rhs + vb], lane, *elem);
                        let r = fpu(*op, *double, x, y);
                        write_lane_float(&mut frame.vec[*dst..*dst + vb], lane, *elem, r);
                    }
                    stats.cycles += cost.vec_op;
                    stats.vector_ops += 1;
                }
                PInst::VecReduceInt {
                    op,
                    elem,
                    signed,
                    lanes,
                    dst,
                    src,
                } => {
                    let reg = &frame.vec[*src..*src + vb];
                    let mut acc = read_lane_int(reg, 0, *elem, *signed);
                    for lane in 1..*lanes {
                        let x = read_lane_int(reg, lane, *elem, *signed);
                        acc = match op {
                            RedOp::Add => alu(AluOp::Add, *elem, *signed, acc, x)?,
                            RedOp::Min => alu(AluOp::Min, *elem, *signed, acc, x)?,
                            RedOp::Max => alu(AluOp::Max, *elem, *signed, acc, x)?,
                        };
                    }
                    frame.int[*dst] = acc;
                    stats.cycles += cost.vec_reduce;
                    stats.vector_ops += 1;
                }
                PInst::VecReduceFloat {
                    op,
                    elem,
                    lanes,
                    dst,
                    src,
                } => {
                    let reg = &frame.vec[*src..*src + vb];
                    let double = *elem == Width::W64;
                    let mut acc = read_lane_float(reg, 0, *elem);
                    for lane in 1..*lanes {
                        let x = read_lane_float(reg, lane, *elem);
                        acc = match op {
                            RedOp::Add => fpu(FpuOp::Add, double, acc, x),
                            RedOp::Min => fpu(FpuOp::Min, double, acc, x),
                            RedOp::Max => fpu(FpuOp::Max, double, acc, x),
                        };
                    }
                    frame.float[*dst] = acc;
                    stats.cycles += cost.vec_reduce;
                    stats.vector_ops += 1;
                }
                PInst::SpillInt { slot, src } => {
                    let value = SlotValue::Int(frame.int[*src]);
                    *frame
                        .slots
                        .get_mut(*slot)
                        .ok_or_else(|| SimError::Trap(format!("spill to invalid slot {slot}")))? =
                        value;
                    stats.cycles += cost.spill_store;
                    stats.spill_stores += 1;
                }
                PInst::SpillFloat { slot, src } => {
                    let value = SlotValue::Float(frame.float[*src]);
                    *frame
                        .slots
                        .get_mut(*slot)
                        .ok_or_else(|| SimError::Trap(format!("spill to invalid slot {slot}")))? =
                        value;
                    stats.cycles += cost.spill_store;
                    stats.spill_stores += 1;
                }
                PInst::SpillVec { slot, src } => {
                    let value = SlotValue::Vec(frame.vec[*src..*src + vb].to_vec());
                    *frame
                        .slots
                        .get_mut(*slot)
                        .ok_or_else(|| SimError::Trap(format!("spill to invalid slot {slot}")))? =
                        value;
                    stats.cycles += cost.spill_store;
                    stats.spill_stores += 1;
                }
                PInst::Reload { slot, class, dst } => {
                    let value = frame.slots.get(*slot).ok_or_else(|| {
                        SimError::Trap(format!("reload from invalid slot {slot}"))
                    })?;
                    match (class, value) {
                        (RegClass::Int, SlotValue::Int(v)) => frame.int[*dst] = *v,
                        (RegClass::Float, SlotValue::Float(v)) => frame.float[*dst] = *v,
                        (RegClass::Vec, SlotValue::Vec(v)) => {
                            frame.vec[*dst..*dst + vb].copy_from_slice(v);
                        }
                        (_, SlotValue::Empty) => {
                            return Err(SimError::Trap(format!(
                                "reload of uninitialized slot {slot}"
                            )));
                        }
                        _ => {
                            return Err(SimError::Trap(format!(
                                "reload class mismatch for slot {slot}"
                            )));
                        }
                    }
                    stats.cycles += cost.spill_load;
                    stats.spill_reloads += 1;
                }
                PInst::Jump { target } => {
                    pc = *target as usize;
                    stats.cycles += cost.branch_taken;
                    stats.branches += 1;
                }
                PInst::BranchNz {
                    cond,
                    then_target,
                    else_target,
                } => {
                    let taken = frame.int[*cond] != 0;
                    pc = if taken {
                        *then_target as usize
                    } else {
                        *else_target as usize
                    };
                    stats.cycles += if taken {
                        cost.branch_taken
                    } else {
                        cost.branch_not_taken
                    };
                    stats.branches += 1;
                }
                PInst::Call { callee, args, ret } => {
                    let mut argv = pool.take_argv();
                    for &(class, idx) in args.iter() {
                        argv.push(match class {
                            RegClass::Int => MachineValue::Int(frame.int[idx]),
                            RegClass::Float => MachineValue::Float(frame.float[idx]),
                            RegClass::Vec => {
                                return Err(SimError::Trap(
                                    "vector call arguments are unsupported".into(),
                                ));
                            }
                        });
                    }
                    stats.cycles += cost.call;
                    let out = self.exec(*callee, &argv, mem, pool, fuel, depth + 1, stats)?;
                    pool.give_argv(argv);
                    if let Some((class, idx)) = ret {
                        match (class, out) {
                            (RegClass::Int, Some(MachineValue::Int(v))) => frame.int[*idx] = v,
                            (RegClass::Float, Some(MachineValue::Float(v))) => {
                                frame.float[*idx] = v;
                            }
                            _ => {
                                return Err(SimError::Trap(format!(
                                    "call to {} did not produce the expected value",
                                    self.functions[*callee].name
                                )));
                            }
                        }
                    }
                }
                PInst::CallUnknown { name } => {
                    return Err(SimError::UnknownFunction(name.clone()));
                }
                PInst::Ret { value } => {
                    stats.cycles += cost.mov;
                    return Ok(match value {
                        Some((RegClass::Int, idx)) => Some(MachineValue::Int(frame.int[*idx])),
                        Some((RegClass::Float, idx)) => {
                            Some(MachineValue::Float(frame.float[*idx]))
                        }
                        Some((RegClass::Vec, _)) => {
                            return Err(SimError::Trap(
                                "vector return values are unsupported".into(),
                            ));
                        }
                        None => None,
                    });
                }
                PInst::FellOff { block } => {
                    // The legacy walk charged fuel for the failed fetch but
                    // did not count an instruction; mirror that exactly.
                    stats.instructions -= 1;
                    return Err(SimError::Trap(format!(
                        "fell off the end of block {block} in {}",
                        f.name
                    )));
                }
            }
        }
    }
}

/// Register-file shape of the target a program is being prepared for.
struct Layout {
    int_regs: usize,
    float_regs: usize,
    vec_regs: usize,
    vector_bytes: usize,
}

impl Layout {
    /// Validate `r` against its class's register file; returns the direct
    /// frame index (a byte offset for vector registers).
    fn resolve(&self, r: PReg, fname: &str) -> Result<usize, SimError> {
        let idx = usize::from(r.index);
        let ok = match r.class {
            RegClass::Int => idx < self.int_regs,
            RegClass::Float => idx < self.float_regs,
            RegClass::Vec => idx < self.vec_regs,
        };
        if !ok {
            return Err(SimError::BadRegister {
                reg: r.to_string(),
                function: fname.to_owned(),
            });
        }
        Ok(match r.class {
            RegClass::Vec => idx * self.vector_bytes,
            _ => idx,
        })
    }

    /// Resolve `r` as `(class, index)` for class-dispatched instructions.
    fn resolve_ref(&self, r: PReg, fname: &str) -> Result<RRef, SimError> {
        Ok((r.class, self.resolve(r, fname)?))
    }
}

#[allow(clippy::too_many_lines)]
fn prepare_function(
    f: &MFunction,
    target: &TargetDesc,
    layout: &Layout,
    by_name: &HashMap<String, usize>,
) -> Result<PreparedFunction, SimError> {
    let fname = &f.name;
    // Pass 1: instruction offset of every block in the flat stream (blocks
    // that do not end in a terminator get a synthetic trap appended).
    let mut offsets = Vec::with_capacity(f.blocks.len());
    let mut len = 0u32;
    for b in &f.blocks {
        offsets.push(len);
        len += b.insts.len() as u32;
        if !b.insts.last().is_some_and(MInst::is_terminator) {
            len += 1;
        }
    }
    let block_offset = |target_block: u32| -> Result<u32, SimError> {
        offsets.get(target_block as usize).copied().ok_or_else(|| {
            SimError::Trap(format!("jump to invalid block {target_block} in {fname}"))
        })
    };
    let require_simd = || -> Result<(), SimError> {
        if target.has_simd() {
            Ok(())
        } else {
            Err(SimError::NoVectorUnit {
                function: fname.clone(),
            })
        }
    };
    let lanes_for = |elem: Width| (target.vector_bytes() / elem.bytes()) as usize;

    let mut params = Vec::with_capacity(f.params.len());
    for p in &f.params {
        params.push(layout.resolve_ref(*p, fname)?);
    }

    // Pass 2: pre-decode every instruction.
    let mut code = Vec::with_capacity(len as usize);
    for (bi, b) in f.blocks.iter().enumerate() {
        for inst in &b.insts {
            let p = match inst {
                MInst::Imm { dst, value } => PInst::Imm {
                    dst: layout.resolve(*dst, fname)?,
                    value: *value,
                },
                MInst::FImm { dst, value } => PInst::FImm {
                    dst: layout.resolve(*dst, fname)?,
                    value: *value,
                },
                MInst::Mov { dst, src } => {
                    let d = layout.resolve(*dst, fname)?;
                    let s = layout.resolve(*src, fname)?;
                    match dst.class {
                        RegClass::Int => PInst::MovInt { dst: d, src: s },
                        RegClass::Float => PInst::MovFloat { dst: d, src: s },
                        RegClass::Vec => PInst::MovVec { dst: d, src: s },
                    }
                }
                MInst::IntOp {
                    op,
                    width,
                    signed,
                    dst,
                    lhs,
                    rhs,
                } => PInst::IntOp {
                    op: *op,
                    width: *width,
                    signed: *signed,
                    dst: layout.resolve(*dst, fname)?,
                    lhs: layout.resolve(*lhs, fname)?,
                    rhs: layout.resolve(*rhs, fname)?,
                    cost: match op {
                        AluOp::Mul => target.cost.int_mul,
                        AluOp::Div | AluOp::Rem => target.cost.int_div,
                        _ => target.cost.int_op,
                    },
                },
                MInst::FloatOp {
                    op,
                    double,
                    dst,
                    lhs,
                    rhs,
                } => PInst::FloatOp {
                    op: *op,
                    double: *double,
                    dst: layout.resolve(*dst, fname)?,
                    lhs: layout.resolve(*lhs, fname)?,
                    rhs: layout.resolve(*rhs, fname)?,
                    cost: match op {
                        FpuOp::Mul => target.cost.fp_mul,
                        FpuOp::Div => target.cost.fp_div,
                        _ => target.cost.fp_add,
                    },
                },
                MInst::IntNeg { width, dst, src } => PInst::IntNeg {
                    width: *width,
                    dst: layout.resolve(*dst, fname)?,
                    src: layout.resolve(*src, fname)?,
                },
                MInst::IntNot { width, dst, src } => PInst::IntNot {
                    width: *width,
                    dst: layout.resolve(*dst, fname)?,
                    src: layout.resolve(*src, fname)?,
                },
                MInst::FloatNeg { double, dst, src } => PInst::FloatNeg {
                    double: *double,
                    dst: layout.resolve(*dst, fname)?,
                    src: layout.resolve(*src, fname)?,
                },
                MInst::IntCmp {
                    pred,
                    width,
                    signed,
                    dst,
                    lhs,
                    rhs,
                } => PInst::IntCmp {
                    pred: *pred,
                    width: *width,
                    signed: *signed,
                    dst: layout.resolve(*dst, fname)?,
                    lhs: layout.resolve(*lhs, fname)?,
                    rhs: layout.resolve(*rhs, fname)?,
                },
                MInst::FloatCmp {
                    pred,
                    double,
                    dst,
                    lhs,
                    rhs,
                } => PInst::FloatCmp {
                    pred: *pred,
                    double: *double,
                    dst: layout.resolve(*dst, fname)?,
                    lhs: layout.resolve(*lhs, fname)?,
                    rhs: layout.resolve(*rhs, fname)?,
                },
                MInst::Select {
                    dst,
                    cond,
                    if_true,
                    if_false,
                } => {
                    let d = layout.resolve(*dst, fname)?;
                    let c = layout.resolve(*cond, fname)?;
                    let t = layout.resolve(*if_true, fname)?;
                    let e = layout.resolve(*if_false, fname)?;
                    match dst.class {
                        RegClass::Int => PInst::SelectInt {
                            dst: d,
                            cond: c,
                            if_true: t,
                            if_false: e,
                        },
                        RegClass::Float => PInst::SelectFloat {
                            dst: d,
                            cond: c,
                            if_true: t,
                            if_false: e,
                        },
                        RegClass::Vec => PInst::SelectVec {
                            dst: d,
                            cond: c,
                            if_true: t,
                            if_false: e,
                        },
                    }
                }
                MInst::IntToFloat {
                    signed,
                    double,
                    dst,
                    src,
                } => PInst::IntToFloat {
                    signed: *signed,
                    double: *double,
                    dst: layout.resolve(*dst, fname)?,
                    src: layout.resolve(*src, fname)?,
                },
                MInst::FloatToInt {
                    width,
                    signed,
                    dst,
                    src,
                } => PInst::FloatToInt {
                    width: *width,
                    signed: *signed,
                    dst: layout.resolve(*dst, fname)?,
                    src: layout.resolve(*src, fname)?,
                },
                MInst::FloatCvt {
                    to_double,
                    dst,
                    src,
                } => PInst::FloatCvt {
                    to_double: *to_double,
                    dst: layout.resolve(*dst, fname)?,
                    src: layout.resolve(*src, fname)?,
                },
                MInst::IntResize {
                    width,
                    signed,
                    dst,
                    src,
                } => PInst::IntResize {
                    width: *width,
                    signed: *signed,
                    dst: layout.resolve(*dst, fname)?,
                    src: layout.resolve(*src, fname)?,
                },
                MInst::Load {
                    width,
                    float,
                    signed,
                    dst,
                    base,
                    offset,
                } => {
                    let d = layout.resolve(*dst, fname)?;
                    let b = layout.resolve(*base, fname)?;
                    if *float {
                        PInst::LoadFloat {
                            width: *width,
                            dst: d,
                            base: b,
                            offset: *offset,
                        }
                    } else {
                        PInst::LoadInt {
                            width: *width,
                            signed: *signed,
                            dst: d,
                            base: b,
                            offset: *offset,
                        }
                    }
                }
                MInst::Store {
                    width,
                    float,
                    base,
                    offset,
                    src,
                } => {
                    let b = layout.resolve(*base, fname)?;
                    let s = layout.resolve(*src, fname)?;
                    if *float {
                        PInst::StoreFloat {
                            width: *width,
                            base: b,
                            offset: *offset,
                            src: s,
                        }
                    } else {
                        PInst::StoreInt {
                            width: *width,
                            base: b,
                            offset: *offset,
                            src: s,
                        }
                    }
                }
                MInst::VecLoad { dst, base, offset } => {
                    require_simd()?;
                    PInst::VecLoad {
                        dst: layout.resolve(*dst, fname)?,
                        base: layout.resolve(*base, fname)?,
                        offset: *offset,
                    }
                }
                MInst::VecStore { base, offset, src } => {
                    require_simd()?;
                    PInst::VecStore {
                        base: layout.resolve(*base, fname)?,
                        offset: *offset,
                        src: layout.resolve(*src, fname)?,
                    }
                }
                MInst::VecSplatInt { elem, dst, src } => {
                    require_simd()?;
                    PInst::VecSplatInt {
                        elem: *elem,
                        lanes: lanes_for(*elem),
                        dst: layout.resolve(*dst, fname)?,
                        src: layout.resolve(*src, fname)?,
                    }
                }
                MInst::VecSplatFloat { elem, dst, src } => {
                    require_simd()?;
                    PInst::VecSplatFloat {
                        elem: *elem,
                        lanes: lanes_for(*elem),
                        dst: layout.resolve(*dst, fname)?,
                        src: layout.resolve(*src, fname)?,
                    }
                }
                MInst::VecIntOp {
                    op,
                    elem,
                    signed,
                    dst,
                    lhs,
                    rhs,
                } => {
                    require_simd()?;
                    PInst::VecIntOp {
                        op: *op,
                        elem: *elem,
                        signed: *signed,
                        lanes: lanes_for(*elem),
                        dst: layout.resolve(*dst, fname)?,
                        lhs: layout.resolve(*lhs, fname)?,
                        rhs: layout.resolve(*rhs, fname)?,
                    }
                }
                MInst::VecFloatOp {
                    op,
                    elem,
                    dst,
                    lhs,
                    rhs,
                } => {
                    require_simd()?;
                    PInst::VecFloatOp {
                        op: *op,
                        elem: *elem,
                        double: *elem == Width::W64,
                        lanes: lanes_for(*elem),
                        dst: layout.resolve(*dst, fname)?,
                        lhs: layout.resolve(*lhs, fname)?,
                        rhs: layout.resolve(*rhs, fname)?,
                    }
                }
                MInst::VecReduceInt {
                    op,
                    elem,
                    signed,
                    dst,
                    src,
                } => {
                    require_simd()?;
                    PInst::VecReduceInt {
                        op: *op,
                        elem: *elem,
                        signed: *signed,
                        lanes: lanes_for(*elem),
                        dst: layout.resolve(*dst, fname)?,
                        src: layout.resolve(*src, fname)?,
                    }
                }
                MInst::VecReduceFloat { op, elem, dst, src } => {
                    require_simd()?;
                    PInst::VecReduceFloat {
                        op: *op,
                        elem: *elem,
                        lanes: lanes_for(*elem),
                        dst: layout.resolve(*dst, fname)?,
                        src: layout.resolve(*src, fname)?,
                    }
                }
                MInst::Spill { slot, src } => {
                    let s = layout.resolve(*src, fname)?;
                    let slot = *slot as usize;
                    match src.class {
                        RegClass::Int => PInst::SpillInt { slot, src: s },
                        RegClass::Float => PInst::SpillFloat { slot, src: s },
                        RegClass::Vec => PInst::SpillVec { slot, src: s },
                    }
                }
                MInst::Reload { slot, dst } => PInst::Reload {
                    slot: *slot as usize,
                    class: dst.class,
                    dst: layout.resolve(*dst, fname)?,
                },
                MInst::Jump { target } => PInst::Jump {
                    target: block_offset(*target)?,
                },
                MInst::BranchNz {
                    cond,
                    then_target,
                    else_target,
                } => PInst::BranchNz {
                    cond: layout.resolve(*cond, fname)?,
                    then_target: block_offset(*then_target)?,
                    else_target: block_offset(*else_target)?,
                },
                MInst::Call { callee, args, ret } => {
                    let mut resolved = Vec::with_capacity(args.len());
                    for a in args {
                        resolved.push(layout.resolve_ref(*a, fname)?);
                    }
                    let ret = match ret {
                        Some(r) => Some(layout.resolve_ref(*r, fname)?),
                        None => None,
                    };
                    match by_name.get(callee) {
                        Some(&index) => PInst::Call {
                            callee: index,
                            args: resolved.into_boxed_slice(),
                            ret,
                        },
                        None => PInst::CallUnknown {
                            name: callee.clone(),
                        },
                    }
                }
                MInst::Ret { value } => PInst::Ret {
                    value: match value {
                        Some(r) => Some(layout.resolve_ref(*r, fname)?),
                        None => None,
                    },
                },
            };
            code.push(p);
        }
        if !b.insts.last().is_some_and(MInst::is_terminator) {
            code.push(PInst::FellOff { block: bi as u32 });
        }
    }
    if f.blocks.is_empty() {
        code.push(PInst::FellOff { block: 0 });
    }
    Ok(PreparedFunction {
        name: f.name.clone(),
        params: params.into_boxed_slice(),
        num_slots: f.num_slots as usize,
        code,
    })
}

/// A reusable executor over one [`PreparedProgram`]: owns a [`FramePool`] and
/// the fuel/stats bookkeeping, mirroring the [`Simulator`](crate::Simulator)
/// API for code that runs the same prepared program many times.
#[derive(Debug)]
pub struct PreparedSimulator<'p> {
    program: &'p PreparedProgram,
    pool: FramePool,
    fuel: u64,
    stats: SimStats,
}

impl<'p> PreparedSimulator<'p> {
    /// Create an executor over `program` with the default fuel budget.
    pub fn new(program: &'p PreparedProgram) -> Self {
        PreparedSimulator {
            program,
            pool: FramePool::new(),
            fuel: DEFAULT_SIM_FUEL,
            stats: SimStats::default(),
        }
    }

    /// Override the instruction budget.
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }

    /// Statistics from the most recent [`PreparedSimulator::run`].
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Execute `func` with `args` against `mem`, recycling frames from the
    /// executor's pool.
    ///
    /// # Errors
    ///
    /// Same conditions as [`PreparedProgram::run`].
    pub fn run(
        &mut self,
        func: &str,
        args: &[MachineValue],
        mem: &mut [u8],
    ) -> Result<Option<MachineValue>, SimError> {
        self.program
            .run(func, args, mem, &mut self.pool, self.fuel, &mut self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mcode::{MBlock, MProgram};

    fn call_program() -> MProgram {
        // main(f0) { f1 = sq(f0); return f1 }   sq(f0) { return f0*f0 }
        let callee = MFunction {
            name: "sq".into(),
            params: vec![PReg::float(0)],
            blocks: vec![MBlock {
                insts: vec![
                    MInst::FloatOp {
                        op: FpuOp::Mul,
                        double: false,
                        dst: PReg::float(0),
                        lhs: PReg::float(0),
                        rhs: PReg::float(0),
                    },
                    MInst::Ret {
                        value: Some(PReg::float(0)),
                    },
                ],
            }],
            num_slots: 0,
        };
        let caller = MFunction {
            name: "main".into(),
            params: vec![PReg::float(0)],
            blocks: vec![MBlock {
                insts: vec![
                    MInst::Call {
                        callee: "sq".into(),
                        args: vec![PReg::float(0)],
                        ret: Some(PReg::float(1)),
                    },
                    MInst::Ret {
                        value: Some(PReg::float(1)),
                    },
                ],
            }],
            num_slots: 0,
        };
        MProgram {
            name: "m".into(),
            functions: vec![callee, caller],
        }
    }

    #[test]
    fn call_targets_resolve_to_dense_indices_and_frames_recycle() {
        let p = call_program();
        let target = TargetDesc::x86_sse();
        let prepared = PreparedProgram::prepare(&p, &target).unwrap();
        assert_eq!(prepared.function_index("sq"), Some(0));
        assert_eq!(prepared.function_index("main"), Some(1));
        assert_eq!(prepared.function_index("nope"), None);
        let mut sim = PreparedSimulator::new(&prepared);
        let mut mem = vec![0u8; 16];
        for _ in 0..3 {
            let out = sim
                .run("main", &[MachineValue::Float(3.0)], &mut mem)
                .unwrap();
            assert_eq!(out, Some(MachineValue::Float(9.0)));
        }
        // Both the caller's and the callee's frame went back to the pool.
        assert_eq!(sim.pool.pooled_frames(), 2);
    }

    #[test]
    fn scalar_only_targets_prepare_an_empty_vector_buffer() {
        let p = call_program();
        let prepared = PreparedProgram::prepare(&p, &TargetDesc::ultrasparc()).unwrap();
        assert_eq!(prepared.vec_bytes_total, 0);
        let simd = PreparedProgram::prepare(&p, &TargetDesc::x86_sse()).unwrap();
        assert_eq!(simd.vec_bytes_total, 8 * 16);
    }

    #[test]
    fn bad_registers_and_missing_vector_units_fail_at_prepare_time() {
        let bad = MProgram {
            name: "bad".into(),
            functions: vec![MFunction {
                name: "f".into(),
                params: vec![],
                blocks: vec![MBlock {
                    insts: vec![
                        MInst::Imm {
                            dst: PReg::int(40),
                            value: 1,
                        },
                        MInst::Ret { value: None },
                    ],
                }],
                num_slots: 0,
            }],
        };
        let err = PreparedProgram::prepare(&bad, &TargetDesc::x86_sse()).unwrap_err();
        assert!(matches!(err, SimError::BadRegister { .. }));

        let vecp = MProgram {
            name: "v".into(),
            functions: vec![MFunction {
                name: "f".into(),
                params: vec![PReg::int(0)],
                blocks: vec![MBlock {
                    insts: vec![
                        MInst::VecLoad {
                            dst: PReg::vec(0),
                            base: PReg::int(0),
                            offset: 0,
                        },
                        MInst::Ret { value: None },
                    ],
                }],
                num_slots: 0,
            }],
        };
        let err = PreparedProgram::prepare(&vecp, &TargetDesc::ultrasparc()).unwrap_err();
        assert!(matches!(err, SimError::NoVectorUnit { .. }));
        assert!(PreparedProgram::prepare(&vecp, &TargetDesc::x86_sse()).is_ok());
    }

    #[test]
    fn hostile_addresses_trap_identically_on_both_execution_paths() {
        // Negative bases, i64::MAX + positive offset (wraps negative) and a
        // vector access straddling the end of memory must all surface as
        // `SimError::Trap` — never a slice panic — and the prepared path must
        // agree with the legacy walk on each.
        let scalar = MProgram {
            name: "m".into(),
            functions: vec![MFunction {
                name: "peek".into(),
                params: vec![PReg::int(0)],
                blocks: vec![MBlock {
                    insts: vec![
                        MInst::Load {
                            width: Width::W64,
                            float: false,
                            signed: true,
                            dst: PReg::int(1),
                            base: PReg::int(0),
                            offset: 8,
                        },
                        MInst::Ret {
                            value: Some(PReg::int(1)),
                        },
                    ],
                }],
                num_slots: 0,
            }],
        };
        let vector = MProgram {
            name: "m".into(),
            functions: vec![MFunction {
                name: "vpeek".into(),
                params: vec![PReg::int(0)],
                blocks: vec![MBlock {
                    insts: vec![
                        MInst::VecLoad {
                            dst: PReg::vec(0),
                            base: PReg::int(0),
                            offset: 0,
                        },
                        MInst::Ret { value: None },
                    ],
                }],
                num_slots: 0,
            }],
        };
        let target = TargetDesc::x86_sse();
        let mem_size = 256usize;
        // Hostile for both programs (the scalar load adds offset 8): negative
        // effective addresses, i64 overflow, and far-out-of-bounds positives.
        let bases = [-9i64, -12, i64::MIN, i64::MAX, i64::MAX - 8];
        for (program, func) in [(&scalar, "peek"), (&vector, "vpeek")] {
            let prepared = PreparedProgram::prepare(program, &target).unwrap();
            for base in bases {
                let mut mem = vec![0u8; mem_size];
                let mut legacy = crate::Simulator::new(program, &target);
                let legacy_err = legacy
                    .run_legacy(func, &[MachineValue::Int(base)], &mut mem)
                    .unwrap_err();
                assert!(
                    matches!(legacy_err, SimError::Trap(_)),
                    "{func} base {base} (legacy): {legacy_err:?}"
                );
                let mut sim = PreparedSimulator::new(&prepared);
                let prepared_err = sim
                    .run(func, &[MachineValue::Int(base)], &mut mem)
                    .unwrap_err();
                assert_eq!(
                    prepared_err, legacy_err,
                    "{func} base {base}: paths disagree on the trap"
                );
            }
        }
        // Straddling the end: scalar 8-byte load at len-4, 16-byte vector
        // load at len-15.
        let prepared = PreparedProgram::prepare(&vector, &target).unwrap();
        let mut mem = vec![0u8; mem_size];
        let mut sim = PreparedSimulator::new(&prepared);
        let base = (mem_size - 15) as i64;
        let err = sim
            .run("vpeek", &[MachineValue::Int(base)], &mut mem)
            .unwrap_err();
        assert!(matches!(err, SimError::Trap(_)), "straddle: {err:?}");
        let mut legacy = crate::Simulator::new(&vector, &target);
        assert_eq!(
            legacy
                .run_legacy("vpeek", &[MachineValue::Int(base)], &mut mem)
                .unwrap_err(),
            err
        );
        // In-bounds accesses still succeed on both paths.
        let ok = sim
            .run("vpeek", &[MachineValue::Int(64)], &mut mem)
            .unwrap();
        assert_eq!(ok, None);
    }

    #[test]
    fn vector_lane_shifts_mask_counts_like_the_scalar_alu() {
        // AluOp::Shl/Shr through the SIMD lane path: counts splatted across
        // the lanes mask modulo 64 exactly like the scalar ALU, on both the
        // legacy walk and the prepared stream.
        let lanes_program = |count: i64| MProgram {
            name: "m".into(),
            functions: vec![MFunction {
                name: "vshift".into(),
                params: vec![PReg::int(0)],
                blocks: vec![MBlock {
                    insts: vec![
                        MInst::Imm {
                            dst: PReg::int(1),
                            value: count,
                        },
                        MInst::VecLoad {
                            dst: PReg::vec(0),
                            base: PReg::int(0),
                            offset: 0,
                        },
                        MInst::VecSplatInt {
                            elem: Width::W32,
                            dst: PReg::vec(1),
                            src: PReg::int(1),
                        },
                        MInst::VecIntOp {
                            op: AluOp::Shl,
                            elem: Width::W32,
                            signed: true,
                            dst: PReg::vec(0),
                            lhs: PReg::vec(0),
                            rhs: PReg::vec(1),
                        },
                        MInst::VecStore {
                            base: PReg::int(0),
                            offset: 0,
                            src: PReg::vec(0),
                        },
                        MInst::Ret { value: None },
                    ],
                }],
                num_slots: 0,
            }],
        };
        let target = TargetDesc::x86_sse();
        for (count, expect) in [(1i64, 2i32), (33, 0), (65, 2), (-1, 0), (64, 1)] {
            let program = lanes_program(count);
            let prepared = PreparedProgram::prepare(&program, &target).unwrap();
            let mut mem = vec![0u8; 64];
            for lane in 0..4 {
                mem[16 + lane * 4..16 + lane * 4 + 4].copy_from_slice(&1i32.to_le_bytes());
            }
            let mut legacy_mem = mem.clone();
            let mut sim = PreparedSimulator::new(&prepared);
            sim.run("vshift", &[MachineValue::Int(16)], &mut mem)
                .unwrap();
            let mut legacy = crate::Simulator::new(&program, &target);
            legacy
                .run_legacy("vshift", &[MachineValue::Int(16)], &mut legacy_mem)
                .unwrap();
            assert_eq!(mem, legacy_mem, "count {count}");
            for lane in 0..4 {
                let mut b = [0u8; 4];
                b.copy_from_slice(&mem[16 + lane * 4..16 + lane * 4 + 4]);
                assert_eq!(
                    i32::from_le_bytes(b),
                    expect,
                    "count {count}: 1 << ({count} & 63) truncated to 32 bits"
                );
            }
        }
    }

    #[test]
    fn unterminated_blocks_trap_like_the_legacy_walk() {
        let p = MProgram {
            name: "m".into(),
            functions: vec![MFunction {
                name: "f".into(),
                params: vec![],
                blocks: vec![MBlock {
                    insts: vec![MInst::Imm {
                        dst: PReg::int(0),
                        value: 1,
                    }],
                }],
                num_slots: 0,
            }],
        };
        let prepared = PreparedProgram::prepare(&p, &TargetDesc::powerpc()).unwrap();
        let mut sim = PreparedSimulator::new(&prepared);
        let mut mem = vec![0u8; 16];
        let err = sim.run("f", &[], &mut mem).unwrap_err();
        assert_eq!(
            err,
            SimError::Trap("fell off the end of block 0 in f".into())
        );
    }
}
