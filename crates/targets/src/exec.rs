//! Pre-decoded execution: deploy-time preparation of machine programs.
//!
//! Split compilation moves work out of the latency-critical stage into an
//! earlier stage that runs once. This module applies the same discipline to
//! *execution*: a [`PreparedProgram`] is built once per `(program, target)`
//! pair — at deploy time, right after online compilation — and can then be
//! run any number of times with none of the per-run decoding the legacy
//! [`Simulator`](crate::Simulator) walk pays on every instruction:
//!
//! * every function's blocks are **flattened into one linear instruction
//!   stream**, with block jumps resolved to instruction offsets (no
//!   `blocks[b].insts[i]` double indirection, no per-step instruction clone);
//! * call targets are resolved from `&str` names to **dense function
//!   indices** (no per-call linear name lookup);
//! * every register index is **bounds-checked once at prepare time** against
//!   the target's register files, so the hot loop never re-validates;
//! * per-instruction cycle costs and vector lane counts are **precomputed**
//!   where they depend on the opcode;
//! * call frames come from a [`FramePool`] that recycles the register-file
//!   and spill-slot allocations across calls and across runs;
//! * on top of the flat stream, each function is lowered to a **threaded
//!   dispatch stream** of fn-pointer handlers over packed 32-byte operand
//!   records (see [`dispatch`](crate::exec) internals), with fuel and
//!   instruction accounting hoisted out of the per-instruction path into
//!   per-region charges, and adjacent instructions **fused into macro-ops**
//!   (compare+branch, load+op, induction-variable steps).
//!
//! Semantics are bit-identical to the legacy walk — results, traps and
//! [`SimStats`] alike — which the cross-crate differential tests assert.
//! The per-instruction enum interpreter survives as the *metered* path
//! ([`PreparedProgram::run_metered`]): it is the in-crate semantic reference,
//! the deoptimization target when fuel runs too low to prepay a region, and
//! the baseline side of the dispatch microbenchmark.
//!
//! # Example
//!
//! ```
//! use splitc_targets::{
//!     AluOp, FramePool, MBlock, MFunction, MInst, MProgram, MachineValue, PReg,
//!     PreparedProgram, PreparedSimulator, TargetDesc, Width,
//! };
//!
//! let f = MFunction {
//!     name: "add1".into(),
//!     params: vec![PReg::int(0)],
//!     blocks: vec![MBlock {
//!         insts: vec![
//!             MInst::Imm { dst: PReg::int(1), value: 1 },
//!             MInst::IntOp {
//!                 op: AluOp::Add, width: Width::W32, signed: true,
//!                 dst: PReg::int(0), lhs: PReg::int(0), rhs: PReg::int(1),
//!             },
//!             MInst::Ret { value: Some(PReg::int(0)) },
//!         ],
//!     }],
//!     num_slots: 0,
//! };
//! let program = MProgram { name: "demo".into(), functions: vec![f] };
//! let target = TargetDesc::x86_sse();
//!
//! // Prepare once (deploy time)...
//! let prepared = PreparedProgram::prepare(&program, &target).unwrap();
//! // ...run many times (online), reusing one simulator and its frame pool.
//! let mut sim = PreparedSimulator::new(&prepared);
//! let mut mem = vec![0u8; 64];
//! for i in 0..10 {
//!     let out = sim.run("add1", &[MachineValue::Int(i)], &mut mem).unwrap();
//!     assert_eq!(out, Some(MachineValue::Int(i + 1)));
//! }
//! ```

use crate::desc::{CostModel, TargetDesc};
pub use crate::dispatch::FusionStats;
use crate::dispatch::{self, FuseKind, OpMeta, OpRecord, Threaded};
use crate::mcode::{
    AluOp, CmpPred, FpuOp, MFunction, MInst, MProgram, PReg, RedOp, RegClass, Width,
};
use crate::simulator::{
    alu, check_range, compare, fpu, normalize, read_lane_float, read_lane_int, read_mem,
    write_lane_float, write_lane_int, write_mem, MachineValue, SimError, SimStats,
    DEFAULT_SIM_FUEL, MAX_CALL_DEPTH,
};
use crate::timing::{FlatCost, InOrderPipeline, LatClass, TimingKind, TimingModel, NO_REG};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A value held in a spill slot of a prepared frame.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum SlotValue {
    Empty,
    Int(i64),
    Float(f64),
    Vec(Vec<u8>),
}

/// One recycled call frame: the register files and spill slots of one call.
///
/// Vector registers are a single flat byte buffer (`vec_regs × vector_bytes`),
/// not one heap allocation per register; on scalar-only targets it is empty.
#[derive(Debug, Default)]
pub(crate) struct Frame {
    pub(crate) int: Vec<i64>,
    pub(crate) float: Vec<f64>,
    pub(crate) vec: Vec<u8>,
    pub(crate) slots: Vec<SlotValue>,
}

/// A pool of reusable call frames (and call-argument scratch buffers).
///
/// The legacy simulator allocated four `Vec`s — including a `Vec<Vec<u8>>`
/// for the vector registers — on **every** call, including recursive ones.
/// A `FramePool` hands frames out of a free list instead: after a short
/// warm-up, running a kernel performs no allocation at all. Pools are
/// target-agnostic (frames are resized on acquire, reusing capacity), so one
/// pool can serve a whole sweep across many targets.
///
/// A pool can also carry an optional **cancellation token** for the runs it
/// backs ([`FramePool::set_cancel_token`]): the executor polls it at region
/// boundaries (region prepayment on the threaded path, back edges on the
/// metered path) and aborts with [`SimError::Cancelled`] once it flips —
/// the cooperative-cancellation hook the serving tier's deadlines use to
/// stop a runaway kernel without killing the worker thread.
#[derive(Debug, Default)]
pub struct FramePool {
    frames: Vec<Frame>,
    argv: Vec<Vec<MachineValue>>,
    cancel: Option<Arc<AtomicBool>>,
}

impl FramePool {
    /// An empty pool; frames are created on first use and recycled after.
    pub fn new() -> Self {
        FramePool::default()
    }

    /// Frames currently sitting in the free list (for tests/diagnostics).
    pub fn pooled_frames(&self) -> usize {
        self.frames.len()
    }

    /// Arm cooperative cancellation for subsequent runs drawn from this
    /// pool: once `token` reads `true`, execution stops at the next region
    /// boundary with [`SimError::Cancelled`]. The token stays armed until
    /// [`FramePool::clear_cancel_token`]; callers that reuse one pool across
    /// requests must re-arm (or clear) per run.
    pub fn set_cancel_token(&mut self, token: Arc<AtomicBool>) {
        self.cancel = Some(token);
    }

    /// Disarm cooperative cancellation (subsequent runs are uncancellable).
    pub fn clear_cancel_token(&mut self) {
        self.cancel = None;
    }

    /// `true` once the armed token (if any) has been flipped. Hot-path
    /// polling site: a `None` token is a single branch.
    #[inline(always)]
    pub fn cancel_requested(&self) -> bool {
        match &self.cancel {
            Some(t) => t.load(Ordering::Relaxed),
            None => false,
        }
    }

    fn acquire(&mut self, int: usize, float: usize, vec_bytes: usize, slots: usize) -> Frame {
        let mut f = self.frames.pop().unwrap_or_default();
        f.int.clear();
        f.int.resize(int, 0);
        f.float.clear();
        f.float.resize(float, 0.0);
        f.vec.clear();
        f.vec.resize(vec_bytes, 0);
        f.slots.clear();
        f.slots.resize(slots, SlotValue::Empty);
        f
    }

    fn release(&mut self, frame: Frame) {
        self.frames.push(frame);
    }

    pub(crate) fn take_argv(&mut self) -> Vec<MachineValue> {
        let mut v = self.argv.pop().unwrap_or_default();
        v.clear();
        v
    }

    pub(crate) fn give_argv(&mut self, argv: Vec<MachineValue>) {
        self.argv.push(argv);
    }
}

/// A register operand resolved to `(class, index)` with the index validated
/// at prepare time. For vector registers the `usize` is a *byte offset* into
/// the frame's flat vector buffer.
pub(crate) type RRef = (RegClass, usize);

/// Payload of a resolved call, boxed so [`PInst`] stays within its 32-byte
/// cache-footprint budget.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct PCall {
    pub(crate) callee: usize,
    pub(crate) args: Box<[RRef]>,
    pub(crate) ret: Option<RRef>,
}

/// One pre-decoded instruction of the flat stream.
///
/// Operands are `u32` indices (validated at prepare time), block targets are
/// instruction offsets, call targets are function indices, and
/// opcode-dependent cycle costs / lane counts are baked in. The enum is kept
/// at or under 32 bytes (statically asserted below) so the metered stream
/// stays two instructions per cache line.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum PInst {
    Imm {
        dst: u32,
        value: i64,
    },
    FImm {
        dst: u32,
        value: f64,
    },
    MovInt {
        dst: u32,
        src: u32,
    },
    MovFloat {
        dst: u32,
        src: u32,
    },
    MovVec {
        dst: u32,
        src: u32,
    },
    IntOp {
        op: AluOp,
        width: Width,
        signed: bool,
        dst: u32,
        lhs: u32,
        rhs: u32,
        cost: u64,
    },
    FloatOp {
        op: FpuOp,
        double: bool,
        dst: u32,
        lhs: u32,
        rhs: u32,
        cost: u64,
    },
    IntNeg {
        width: Width,
        dst: u32,
        src: u32,
    },
    IntNot {
        width: Width,
        dst: u32,
        src: u32,
    },
    FloatNeg {
        double: bool,
        dst: u32,
        src: u32,
    },
    IntCmp {
        pred: CmpPred,
        width: Width,
        signed: bool,
        dst: u32,
        lhs: u32,
        rhs: u32,
    },
    FloatCmp {
        pred: CmpPred,
        double: bool,
        dst: u32,
        lhs: u32,
        rhs: u32,
    },
    SelectInt {
        dst: u32,
        cond: u32,
        if_true: u32,
        if_false: u32,
    },
    SelectFloat {
        dst: u32,
        cond: u32,
        if_true: u32,
        if_false: u32,
    },
    SelectVec {
        dst: u32,
        cond: u32,
        if_true: u32,
        if_false: u32,
    },
    IntToFloat {
        signed: bool,
        double: bool,
        dst: u32,
        src: u32,
    },
    FloatToInt {
        width: Width,
        signed: bool,
        dst: u32,
        src: u32,
    },
    FloatCvt {
        to_double: bool,
        dst: u32,
        src: u32,
    },
    IntResize {
        width: Width,
        signed: bool,
        dst: u32,
        src: u32,
    },
    LoadInt {
        width: Width,
        signed: bool,
        dst: u32,
        base: u32,
        offset: i64,
    },
    LoadFloat {
        width: Width,
        dst: u32,
        base: u32,
        offset: i64,
    },
    StoreInt {
        width: Width,
        base: u32,
        offset: i64,
        src: u32,
    },
    StoreFloat {
        width: Width,
        base: u32,
        offset: i64,
        src: u32,
    },
    VecLoad {
        dst: u32,
        base: u32,
        offset: i64,
    },
    VecStore {
        base: u32,
        offset: i64,
        src: u32,
    },
    VecSplatInt {
        elem: Width,
        lanes: u32,
        dst: u32,
        src: u32,
    },
    VecSplatFloat {
        elem: Width,
        lanes: u32,
        dst: u32,
        src: u32,
    },
    VecIntOp {
        op: AluOp,
        elem: Width,
        signed: bool,
        lanes: u32,
        dst: u32,
        lhs: u32,
        rhs: u32,
    },
    VecFloatOp {
        op: FpuOp,
        elem: Width,
        double: bool,
        lanes: u32,
        dst: u32,
        lhs: u32,
        rhs: u32,
    },
    VecReduceInt {
        op: RedOp,
        elem: Width,
        signed: bool,
        lanes: u32,
        dst: u32,
        src: u32,
    },
    VecReduceFloat {
        op: RedOp,
        elem: Width,
        lanes: u32,
        dst: u32,
        src: u32,
    },
    SpillInt {
        slot: u32,
        src: u32,
    },
    SpillFloat {
        slot: u32,
        src: u32,
    },
    SpillVec {
        slot: u32,
        src: u32,
    },
    Reload {
        slot: u32,
        class: RegClass,
        dst: u32,
    },
    Jump {
        target: u32,
    },
    BranchNz {
        cond: u32,
        then_target: u32,
        else_target: u32,
    },
    Call(Box<PCall>),
    /// A call whose target does not exist in the program. Kept as a runtime
    /// error (like the legacy walk) so dead malformed calls don't poison
    /// preparation of an otherwise-valid program.
    CallUnknown {
        name: Box<str>,
    },
    Ret {
        value: Option<RRef>,
    },
    /// Synthetic trap appended after any block that does not end in a
    /// terminator, preserving the legacy "fell off the end" behaviour in a
    /// flat stream.
    FellOff {
        block: u32,
    },
}

// The hot streams must stay cache-dense: the metered enum stream at two
// instructions per 64-byte line, the threaded operand records at exactly two
// per line. Fusion variants and new opcodes must not bloat either.
const _: () = assert!(std::mem::size_of::<PInst>() <= 32);
const _: () = assert!(std::mem::size_of::<OpRecord>() <= 32);

/// Scoreboard key of a flat *integer*-file register index for the timing
/// model (see [`crate::timing::InOrderPipeline`]).
#[inline(always)]
fn ik(r: u32) -> u32 {
    r << 1
}

/// Scoreboard key of a flat *float*-file register index for the timing model.
#[inline(always)]
fn fk(r: u32) -> u32 {
    (r << 1) | 1
}

/// One function of a [`PreparedProgram`]: a flat, pre-validated instruction
/// stream, the threaded dispatch stream lowered from it, and the frame layout
/// it needs.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct PreparedFunction {
    pub(crate) name: String,
    pub(crate) params: Box<[RRef]>,
    pub(crate) num_slots: usize,
    /// The unfused per-instruction stream: metered reference and deopt target.
    pub(crate) code: Vec<PInst>,
    /// Enum-stream offset of every block (one synthetic block if none).
    pub(crate) block_offsets: Vec<u32>,
    /// The threaded stream: packed operand records dispatched by fn pointer.
    pub(crate) ops: Vec<OpRecord>,
    /// Per-op correction subtracted from the prepaid `stats.instructions`
    /// and static counter charges when the op raises an error (cold path).
    pub(crate) fixup: Vec<dispatch::FixupRec>,
    /// Per-op enum-stream span and fusion kind (disasm / accounting, cold).
    pub(crate) meta: Vec<OpMeta>,
    /// Region entries (block entries first, then after-call regions): where
    /// control can land plus the fuel/instruction charge and static counter
    /// sums prepaid on entry.
    pub(crate) targets: Vec<dispatch::BlockTarget>,
    /// Resolved call sites referenced by threaded call records.
    pub(crate) calls: Vec<dispatch::CallSite>,
}

/// A machine program pre-decoded for one target, ready to run many times.
///
/// Built once per `(program, target)` pair with [`PreparedProgram::prepare`]
/// — typically at deploy time, cached next to the compiled program — and
/// driven by [`PreparedSimulator`] (or directly via [`PreparedProgram::run`]
/// with an external [`FramePool`]). See the [module docs](self) for what is
/// precomputed.
#[derive(Debug, Clone, PartialEq)]
pub struct PreparedProgram {
    name: String,
    pub(crate) functions: Vec<PreparedFunction>,
    by_name: HashMap<String, usize>,
    pub(crate) int_regs: usize,
    pub(crate) float_regs: usize,
    /// Total bytes of the flat vector buffer (`vec_regs × vector_bytes`);
    /// zero on scalar-only targets, so their frames allocate nothing for it.
    pub(crate) vec_bytes_total: usize,
    pub(crate) vector_bytes: usize,
    pub(crate) cost: CostModel,
    /// Timing tier copied from the target at prepare time; selects which
    /// [`TimingModel`] the run entries instantiate.
    pub(crate) timing: TimingKind,
    /// `false` when the target's shape cannot be packed into 32-byte operand
    /// records (oversized custom cost model or vector file), **or** when the
    /// target's timing tier is not flat: region prepayment sums static per-op
    /// cycle charges, which is only sound when cycles are a pure per-op
    /// accumulator. Pipelined timing always runs the metered enum stream.
    pub(crate) threaded: bool,
    fused: bool,
    fusion: FusionStats,
}

impl PreparedProgram {
    /// Pre-decode `program` for `target`, with macro-op fusion enabled.
    ///
    /// All register indices, spill-slot indices, block targets and vector
    /// capabilities are validated here, **once**, so the execution loop never
    /// re-checks them.
    ///
    /// Validation is deliberately **eager and whole-program**: a malformed
    /// instruction fails deployment even if it sits in a function the
    /// deployment would never execute (where the legacy walk only trapped on
    /// execution). Failing at deploy time instead of on the Nth run is the
    /// point of preparation; only *unknown call targets* stay lazy (they are
    /// a name-resolution property, not a malformed-code one).
    ///
    /// # Errors
    ///
    /// Returns the same [`SimError`] variants the legacy walk would raise at
    /// run time: [`SimError::BadRegister`] for an index beyond the target's
    /// register file, [`SimError::NoVectorUnit`] for vector instructions on a
    /// scalar-only target, and [`SimError::Trap`] for malformed control flow.
    pub fn prepare(program: &MProgram, target: &TargetDesc) -> Result<PreparedProgram, SimError> {
        PreparedProgram::prepare_with(program, target, true)
    }

    /// Pre-decode `program` for `target`, choosing whether the threaded
    /// stream fuses adjacent instructions into macro-ops (`fuse = false` is
    /// the ablation/differential configuration; results, traps and
    /// [`SimStats`] are bit-identical either way).
    ///
    /// # Errors
    ///
    /// Same conditions as [`PreparedProgram::prepare`].
    pub fn prepare_with(
        program: &MProgram,
        target: &TargetDesc,
        fuse: bool,
    ) -> Result<PreparedProgram, SimError> {
        let mut by_name = HashMap::with_capacity(program.functions.len());
        for (i, f) in program.functions.iter().enumerate() {
            // First definition wins, matching `MProgram::function`.
            by_name.entry(f.name.clone()).or_insert(i);
        }
        let layout = Layout {
            int_regs: usize::from(target.int_regs),
            float_regs: usize::from(target.float_regs),
            vec_regs: target.vector.map(|v| usize::from(v.regs)).unwrap_or(0),
            vector_bytes: target.vector_bytes() as usize,
        };
        let vec_bytes_total = layout.vec_regs * layout.vector_bytes;
        // The packed operand records hold register/byte offsets in 16 bits
        // and baked costs in 32; a (hand-built) target outside those bounds
        // falls back to the metered stream rather than mis-packing.
        let threaded = vec_bytes_total <= usize::from(u16::MAX) + 1
            && dispatch::costs_fit_u32(&target.cost)
            && target.timing == TimingKind::Flat;
        let mut fusion = FusionStats::default();
        let mut functions = Vec::with_capacity(program.functions.len());
        for f in &program.functions {
            let mut pf = prepare_function(f, target, &layout, &by_name)?;
            if threaded {
                dispatch::build_threaded(&mut pf, &target.cost, fuse, &mut fusion);
            }
            functions.push(pf);
        }
        Ok(PreparedProgram {
            name: program.name.clone(),
            functions,
            by_name,
            int_regs: layout.int_regs,
            float_regs: layout.float_regs,
            vec_bytes_total,
            vector_bytes: layout.vector_bytes,
            cost: target.cost,
            timing: target.timing,
            threaded,
            fused: fuse,
            fusion,
        })
    }

    /// Name of the originating module.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of prepared functions.
    pub fn num_functions(&self) -> usize {
        self.functions.len()
    }

    /// `true` if the macro-op fusion pass ran over the threaded stream.
    pub fn fused(&self) -> bool {
        self.fused
    }

    /// Static macro-op fusion counts over the whole program (how many fused
    /// records of each kind the prepare-time pass emitted).
    pub fn fusion_stats(&self) -> FusionStats {
        self.fusion
    }

    /// Dense index of `func`, if it exists (the prepared equivalent of
    /// `MProgram::function`, resolved through a hash map instead of a linear
    /// scan).
    pub fn function_index(&self, func: &str) -> Option<usize> {
        self.by_name.get(func).copied()
    }

    /// Execute `func` with `args` against `mem`, drawing frames from `pool`
    /// and writing run statistics into `stats` (which is reset first).
    ///
    /// This is the externally-pooled entry the engine and sweep workers use
    /// so frame allocations amortize across *runs*, not just across calls
    /// within one run. [`PreparedSimulator`] wraps it with an owned pool.
    /// Execution takes the threaded dispatch stream; fuel and instruction
    /// counts are prepaid per straight-line region and the engine deopts to
    /// the metered stream when a region's charge no longer fits the budget,
    /// so behaviour is bit-identical to [`PreparedProgram::run_metered`].
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] on unknown functions, argument mismatches,
    /// runtime traps or fuel exhaustion.
    pub fn run(
        &self,
        func: &str,
        args: &[MachineValue],
        mem: &mut [u8],
        pool: &mut FramePool,
        fuel: u64,
        stats: &mut SimStats,
    ) -> Result<Option<MachineValue>, SimError> {
        *stats = SimStats::default();
        let fi = self
            .function_index(func)
            .ok_or_else(|| SimError::UnknownFunction(func.to_owned()))?;
        let mut fuel = fuel;
        match self.timing {
            TimingKind::Flat => {
                let mut tm = FlatCost;
                let r = self.exec(fi, args, mem, pool, &mut fuel, 0, stats, &mut tm);
                tm.finish(stats);
                r
            }
            TimingKind::InOrder => {
                let mut tm = InOrderPipeline::new(&self.cost);
                let r = self.exec(fi, args, mem, pool, &mut fuel, 0, stats, &mut tm);
                tm.finish(stats);
                r
            }
        }
    }

    /// Execute `func` on the metered per-instruction enum stream — the
    /// pre-threading prepared loop, kept as the in-crate semantic reference
    /// and the baseline side of the dispatch microbenchmark.
    ///
    /// # Errors
    ///
    /// Same conditions as [`PreparedProgram::run`].
    pub fn run_metered(
        &self,
        func: &str,
        args: &[MachineValue],
        mem: &mut [u8],
        pool: &mut FramePool,
        fuel: u64,
        stats: &mut SimStats,
    ) -> Result<Option<MachineValue>, SimError> {
        *stats = SimStats::default();
        let fi = self
            .function_index(func)
            .ok_or_else(|| SimError::UnknownFunction(func.to_owned()))?;
        let mut fuel = fuel;
        match self.timing {
            TimingKind::Flat => {
                let mut tm = FlatCost;
                let r = self.exec_metered(fi, args, mem, pool, &mut fuel, 0, stats, &mut tm);
                tm.finish(stats);
                r
            }
            TimingKind::InOrder => {
                let mut tm = InOrderPipeline::new(&self.cost);
                let r = self.exec_metered(fi, args, mem, pool, &mut fuel, 0, stats, &mut tm);
                tm.finish(stats);
                r
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn exec<T: TimingModel>(
        &self,
        fi: usize,
        args: &[MachineValue],
        mem: &mut [u8],
        pool: &mut FramePool,
        fuel: &mut u64,
        depth: usize,
        stats: &mut SimStats,
        tm: &mut T,
    ) -> Result<Option<MachineValue>, SimError> {
        if depth > MAX_CALL_DEPTH {
            return Err(SimError::Trap("call depth exceeded".into()));
        }
        let f = &self.functions[fi];
        if f.params.len() != args.len() {
            return Err(SimError::BadArgumentCount {
                expected: f.params.len(),
                found: args.len(),
            });
        }
        let mut frame = pool.acquire(
            self.int_regs,
            self.float_regs,
            self.vec_bytes_total,
            f.num_slots,
        );
        let result = self.exec_in_frame(f, &mut frame, args, mem, pool, fuel, depth, stats, tm);
        pool.release(frame);
        result
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_metered<T: TimingModel>(
        &self,
        fi: usize,
        args: &[MachineValue],
        mem: &mut [u8],
        pool: &mut FramePool,
        fuel: &mut u64,
        depth: usize,
        stats: &mut SimStats,
        tm: &mut T,
    ) -> Result<Option<MachineValue>, SimError> {
        if depth > MAX_CALL_DEPTH {
            return Err(SimError::Trap("call depth exceeded".into()));
        }
        let f = &self.functions[fi];
        if f.params.len() != args.len() {
            return Err(SimError::BadArgumentCount {
                expected: f.params.len(),
                found: args.len(),
            });
        }
        let mut frame = pool.acquire(
            self.int_regs,
            self.float_regs,
            self.vec_bytes_total,
            f.num_slots,
        );
        let result = write_params(f, &mut frame, args)
            .and_then(|()| self.run_enum(f, &mut frame, mem, pool, fuel, depth, stats, 0, tm));
        pool.release(frame);
        result
    }

    /// Threaded entry: write parameters, prepay the entry region, and drive
    /// the fn-pointer dispatch loop; deopt to the metered stream whenever a
    /// region's charge no longer fits the remaining fuel (the metered loop
    /// then reproduces exact legacy out-of-fuel timing).
    #[allow(clippy::too_many_arguments)]
    fn exec_in_frame<T: TimingModel>(
        &self,
        f: &PreparedFunction,
        frame: &mut Frame,
        args: &[MachineValue],
        mem: &mut [u8],
        pool: &mut FramePool,
        fuel: &mut u64,
        depth: usize,
        stats: &mut SimStats,
        tm: &mut T,
    ) -> Result<Option<MachineValue>, SimError> {
        write_params(f, frame, args)?;
        if self.threaded {
            let entry = &f.targets[0];
            let charge = u64::from(entry.charge);
            if *fuel >= charge {
                *fuel -= charge;
                stats.instructions += charge;
                entry.stat.charge(stats);
                let entry_pc = entry.ops_pc;
                return match dispatch::run_ops(
                    self, f, frame, mem, pool, fuel, depth, stats, entry_pc,
                )? {
                    Threaded::Done(v) => Ok(v),
                    Threaded::Deopt(enum_pc) => self.run_enum(
                        f,
                        frame,
                        mem,
                        pool,
                        fuel,
                        depth,
                        stats,
                        enum_pc as usize,
                        tm,
                    ),
                };
            }
        }
        self.run_enum(f, frame, mem, pool, fuel, depth, stats, 0, tm)
    }

    /// The metered per-instruction interpreter over the enum stream, charging
    /// fuel and `stats.instructions` exactly like the legacy block walk. Runs
    /// the whole function when threading is off (or forced off via
    /// [`PreparedProgram::run_metered`]) and the post-deopt tail otherwise;
    /// calls made from metered code stay metered all the way down.
    #[allow(clippy::too_many_arguments, clippy::too_many_lines)]
    fn run_enum<T: TimingModel>(
        &self,
        f: &PreparedFunction,
        frame: &mut Frame,
        mem: &mut [u8],
        pool: &mut FramePool,
        fuel: &mut u64,
        depth: usize,
        stats: &mut SimStats,
        start: usize,
        tm: &mut T,
    ) -> Result<Option<MachineValue>, SimError> {
        let cost = &self.cost;
        let vb = self.vector_bytes;
        let code = &f.code;
        let mut pc = start;
        // Cooperative cancellation: poll at function entry (which is also
        // every post-deopt resumption) and at branches below, so a hot loop
        // cannot outrun a flipped token by more than one basic block.
        if pool.cancel_requested() {
            return Err(SimError::Cancelled);
        }
        loop {
            if *fuel == 0 {
                return Err(SimError::OutOfFuel);
            }
            *fuel -= 1;
            let inst = &code[pc];
            pc += 1;
            stats.instructions += 1;

            match inst {
                PInst::Imm { dst, value } => {
                    frame.int[*dst as usize] = *value;
                    tm.op(stats, LatClass::Mov, cost.mov, ik(*dst), NO_REG, NO_REG);
                }
                PInst::FImm { dst, value } => {
                    frame.float[*dst as usize] = *value;
                    tm.op(stats, LatClass::Mov, cost.mov, fk(*dst), NO_REG, NO_REG);
                }
                PInst::MovInt { dst, src } => {
                    frame.int[*dst as usize] = frame.int[*src as usize];
                    tm.op(stats, LatClass::Mov, cost.mov, ik(*dst), ik(*src), NO_REG);
                }
                PInst::MovFloat { dst, src } => {
                    frame.float[*dst as usize] = frame.float[*src as usize];
                    tm.op(stats, LatClass::Mov, cost.mov, fk(*dst), fk(*src), NO_REG);
                }
                PInst::MovVec { dst, src } => {
                    let (d, s) = (*dst as usize, *src as usize);
                    frame.vec.copy_within(s..s + vb, d);
                    tm.op(stats, LatClass::Mov, cost.mov, NO_REG, NO_REG, NO_REG);
                }
                PInst::IntOp {
                    op,
                    width,
                    signed,
                    dst,
                    lhs,
                    rhs,
                    cost,
                } => {
                    let a = frame.int[*lhs as usize];
                    let b = frame.int[*rhs as usize];
                    frame.int[*dst as usize] = alu(*op, *width, *signed, a, b)?;
                    let class = match op {
                        AluOp::Mul => LatClass::Mul,
                        AluOp::Div | AluOp::Rem => LatClass::Div,
                        _ => LatClass::Alu,
                    };
                    tm.op(stats, class, *cost, ik(*dst), ik(*lhs), ik(*rhs));
                }
                PInst::FloatOp {
                    op,
                    double,
                    dst,
                    lhs,
                    rhs,
                    cost,
                } => {
                    let a = frame.float[*lhs as usize];
                    let b = frame.float[*rhs as usize];
                    frame.float[*dst as usize] = fpu(*op, *double, a, b);
                    let class = match op {
                        FpuOp::Mul => LatClass::FpMul,
                        FpuOp::Div => LatClass::FpDiv,
                        _ => LatClass::FpAdd,
                    };
                    tm.op(stats, class, *cost, fk(*dst), fk(*lhs), fk(*rhs));
                }
                PInst::IntNeg { width, dst, src } => {
                    let v = frame.int[*src as usize];
                    frame.int[*dst as usize] = normalize(*width, true, v.wrapping_neg());
                    tm.op(
                        stats,
                        LatClass::Alu,
                        cost.int_op,
                        ik(*dst),
                        ik(*src),
                        NO_REG,
                    );
                }
                PInst::IntNot { width, dst, src } => {
                    let v = frame.int[*src as usize];
                    frame.int[*dst as usize] = normalize(*width, false, !v);
                    tm.op(
                        stats,
                        LatClass::Alu,
                        cost.int_op,
                        ik(*dst),
                        ik(*src),
                        NO_REG,
                    );
                }
                PInst::FloatNeg { double, dst, src } => {
                    let v = frame.float[*src as usize];
                    frame.float[*dst as usize] = if *double { -v } else { f64::from(-(v as f32)) };
                    tm.op(
                        stats,
                        LatClass::FpAdd,
                        cost.fp_add,
                        fk(*dst),
                        fk(*src),
                        NO_REG,
                    );
                }
                PInst::IntCmp {
                    pred,
                    width,
                    signed,
                    dst,
                    lhs,
                    rhs,
                } => {
                    let a = normalize(*width, *signed, frame.int[*lhs as usize]);
                    let b = normalize(*width, *signed, frame.int[*rhs as usize]);
                    frame.int[*dst as usize] = if *signed {
                        compare(*pred, a, b)
                    } else {
                        compare(*pred, a as u64, b as u64)
                    };
                    tm.op(
                        stats,
                        LatClass::Alu,
                        cost.int_op,
                        ik(*dst),
                        ik(*lhs),
                        ik(*rhs),
                    );
                }
                PInst::FloatCmp {
                    pred,
                    double,
                    dst,
                    lhs,
                    rhs,
                } => {
                    let a = frame.float[*lhs as usize];
                    let b = frame.float[*rhs as usize];
                    let (a, b) = if *double {
                        (a, b)
                    } else {
                        (f64::from(a as f32), f64::from(b as f32))
                    };
                    frame.int[*dst as usize] = if a.partial_cmp(&b).is_none() {
                        i64::from(*pred == CmpPred::Ne)
                    } else {
                        compare(*pred, a, b)
                    };
                    tm.op(
                        stats,
                        LatClass::FpAdd,
                        cost.fp_add,
                        ik(*dst),
                        fk(*lhs),
                        fk(*rhs),
                    );
                }
                PInst::SelectInt {
                    dst,
                    cond,
                    if_true,
                    if_false,
                } => {
                    let chosen = if frame.int[*cond as usize] != 0 {
                        *if_true
                    } else {
                        *if_false
                    };
                    frame.int[*dst as usize] = frame.int[chosen as usize];
                    tm.op(
                        stats,
                        LatClass::Mov,
                        cost.mov,
                        ik(*dst),
                        ik(*cond),
                        ik(chosen),
                    );
                }
                PInst::SelectFloat {
                    dst,
                    cond,
                    if_true,
                    if_false,
                } => {
                    let chosen = if frame.int[*cond as usize] != 0 {
                        *if_true
                    } else {
                        *if_false
                    };
                    frame.float[*dst as usize] = frame.float[chosen as usize];
                    tm.op(
                        stats,
                        LatClass::Mov,
                        cost.mov,
                        fk(*dst),
                        ik(*cond),
                        fk(chosen),
                    );
                }
                PInst::SelectVec {
                    dst,
                    cond,
                    if_true,
                    if_false,
                } => {
                    let chosen = if frame.int[*cond as usize] != 0 {
                        *if_true as usize
                    } else {
                        *if_false as usize
                    };
                    frame.vec.copy_within(chosen..chosen + vb, *dst as usize);
                    tm.op(stats, LatClass::Mov, cost.mov, NO_REG, ik(*cond), NO_REG);
                }
                PInst::IntToFloat {
                    signed,
                    double,
                    dst,
                    src,
                } => {
                    let v = frame.int[*src as usize];
                    let x = if *signed { v as f64 } else { v as u64 as f64 };
                    frame.float[*dst as usize] = if *double { x } else { f64::from(x as f32) };
                    tm.op(
                        stats,
                        LatClass::Convert,
                        cost.convert,
                        fk(*dst),
                        ik(*src),
                        NO_REG,
                    );
                }
                PInst::FloatToInt {
                    width,
                    signed,
                    dst,
                    src,
                } => {
                    let v = frame.float[*src as usize];
                    frame.int[*dst as usize] = normalize(*width, *signed, v as i64);
                    tm.op(
                        stats,
                        LatClass::Convert,
                        cost.convert,
                        ik(*dst),
                        fk(*src),
                        NO_REG,
                    );
                }
                PInst::FloatCvt {
                    to_double,
                    dst,
                    src,
                } => {
                    let v = frame.float[*src as usize];
                    frame.float[*dst as usize] = if *to_double { v } else { f64::from(v as f32) };
                    tm.op(
                        stats,
                        LatClass::Convert,
                        cost.convert,
                        fk(*dst),
                        fk(*src),
                        NO_REG,
                    );
                }
                PInst::IntResize {
                    width,
                    signed,
                    dst,
                    src,
                } => {
                    let v = frame.int[*src as usize];
                    frame.int[*dst as usize] = normalize(*width, *signed, v);
                    tm.op(
                        stats,
                        LatClass::Alu,
                        cost.int_op,
                        ik(*dst),
                        ik(*src),
                        NO_REG,
                    );
                }
                PInst::LoadInt {
                    width,
                    signed,
                    dst,
                    base,
                    offset,
                } => {
                    let addr = frame.int[*base as usize].wrapping_add(*offset);
                    let raw = read_mem(mem, addr, width.bytes())?;
                    frame.int[*dst as usize] = normalize(*width, *signed, raw as i64);
                    tm.op(
                        stats,
                        LatClass::Load,
                        cost.load,
                        ik(*dst),
                        ik(*base),
                        NO_REG,
                    );
                    stats.loads += 1;
                }
                PInst::LoadFloat {
                    width,
                    dst,
                    base,
                    offset,
                } => {
                    let addr = frame.int[*base as usize].wrapping_add(*offset);
                    let raw = read_mem(mem, addr, width.bytes())?;
                    frame.float[*dst as usize] = match width {
                        Width::W32 => f64::from(f32::from_bits(raw as u32)),
                        _ => f64::from_bits(raw),
                    };
                    tm.op(
                        stats,
                        LatClass::Load,
                        cost.load,
                        fk(*dst),
                        ik(*base),
                        NO_REG,
                    );
                    stats.loads += 1;
                }
                PInst::StoreInt {
                    width,
                    base,
                    offset,
                    src,
                } => {
                    let addr = frame.int[*base as usize].wrapping_add(*offset);
                    write_mem(mem, addr, width.bytes(), frame.int[*src as usize] as u64)?;
                    tm.op(
                        stats,
                        LatClass::Store,
                        cost.store,
                        NO_REG,
                        ik(*base),
                        ik(*src),
                    );
                    stats.stores += 1;
                }
                PInst::StoreFloat {
                    width,
                    base,
                    offset,
                    src,
                } => {
                    let addr = frame.int[*base as usize].wrapping_add(*offset);
                    let v = frame.float[*src as usize];
                    let raw = match width {
                        Width::W32 => u64::from((v as f32).to_bits()),
                        _ => v.to_bits(),
                    };
                    write_mem(mem, addr, width.bytes(), raw)?;
                    tm.op(
                        stats,
                        LatClass::Store,
                        cost.store,
                        NO_REG,
                        ik(*base),
                        fk(*src),
                    );
                    stats.stores += 1;
                }
                PInst::VecLoad { dst, base, offset } => {
                    let addr = frame.int[*base as usize].wrapping_add(*offset);
                    check_range(mem, addr, vb as u64)?;
                    let d = *dst as usize;
                    frame.vec[d..d + vb].copy_from_slice(&mem[addr as usize..addr as usize + vb]);
                    tm.op(
                        stats,
                        LatClass::VecLoad,
                        cost.vec_load,
                        NO_REG,
                        ik(*base),
                        NO_REG,
                    );
                    stats.loads += 1;
                    stats.vector_ops += 1;
                }
                PInst::VecStore { base, offset, src } => {
                    let addr = frame.int[*base as usize].wrapping_add(*offset);
                    check_range(mem, addr, vb as u64)?;
                    let s = *src as usize;
                    mem[addr as usize..addr as usize + vb].copy_from_slice(&frame.vec[s..s + vb]);
                    tm.op(
                        stats,
                        LatClass::VecStore,
                        cost.vec_store,
                        NO_REG,
                        ik(*base),
                        NO_REG,
                    );
                    stats.stores += 1;
                    stats.vector_ops += 1;
                }
                PInst::VecSplatInt {
                    elem,
                    lanes,
                    dst,
                    src,
                } => {
                    let v = frame.int[*src as usize];
                    let d = *dst as usize;
                    let reg = &mut frame.vec[d..d + vb];
                    for lane in 0..*lanes as usize {
                        write_lane_int(reg, lane, *elem, v);
                    }
                    tm.op(stats, LatClass::Vec, cost.vec_op, NO_REG, ik(*src), NO_REG);
                    stats.vector_ops += 1;
                }
                PInst::VecSplatFloat {
                    elem,
                    lanes,
                    dst,
                    src,
                } => {
                    let v = frame.float[*src as usize];
                    let d = *dst as usize;
                    let reg = &mut frame.vec[d..d + vb];
                    for lane in 0..*lanes as usize {
                        write_lane_float(reg, lane, *elem, v);
                    }
                    tm.op(stats, LatClass::Vec, cost.vec_op, NO_REG, fk(*src), NO_REG);
                    stats.vector_ops += 1;
                }
                PInst::VecIntOp {
                    op,
                    elem,
                    signed,
                    lanes,
                    dst,
                    lhs,
                    rhs,
                } => {
                    // Lane-by-lane read-then-write is aliasing-safe without
                    // the legacy per-op input clones: writing lane i of dst
                    // never changes a lane j > i of lhs/rhs.
                    let (d, l, r) = (*dst as usize, *lhs as usize, *rhs as usize);
                    for lane in 0..*lanes as usize {
                        let x = read_lane_int(&frame.vec[l..l + vb], lane, *elem, *signed);
                        let y = read_lane_int(&frame.vec[r..r + vb], lane, *elem, *signed);
                        let v = alu(*op, *elem, *signed, x, y)?;
                        write_lane_int(&mut frame.vec[d..d + vb], lane, *elem, v);
                    }
                    tm.op(stats, LatClass::Vec, cost.vec_op, NO_REG, NO_REG, NO_REG);
                    stats.vector_ops += 1;
                }
                PInst::VecFloatOp {
                    op,
                    elem,
                    double,
                    lanes,
                    dst,
                    lhs,
                    rhs,
                } => {
                    let (d, l, r) = (*dst as usize, *lhs as usize, *rhs as usize);
                    for lane in 0..*lanes as usize {
                        let x = read_lane_float(&frame.vec[l..l + vb], lane, *elem);
                        let y = read_lane_float(&frame.vec[r..r + vb], lane, *elem);
                        let v = fpu(*op, *double, x, y);
                        write_lane_float(&mut frame.vec[d..d + vb], lane, *elem, v);
                    }
                    tm.op(stats, LatClass::Vec, cost.vec_op, NO_REG, NO_REG, NO_REG);
                    stats.vector_ops += 1;
                }
                PInst::VecReduceInt {
                    op,
                    elem,
                    signed,
                    lanes,
                    dst,
                    src,
                } => {
                    let s = *src as usize;
                    let reg = &frame.vec[s..s + vb];
                    let mut acc = read_lane_int(reg, 0, *elem, *signed);
                    for lane in 1..*lanes as usize {
                        let x = read_lane_int(reg, lane, *elem, *signed);
                        acc = match op {
                            RedOp::Add => alu(AluOp::Add, *elem, *signed, acc, x)?,
                            RedOp::Min => alu(AluOp::Min, *elem, *signed, acc, x)?,
                            RedOp::Max => alu(AluOp::Max, *elem, *signed, acc, x)?,
                        };
                    }
                    frame.int[*dst as usize] = acc;
                    tm.op(
                        stats,
                        LatClass::VecReduce,
                        cost.vec_reduce,
                        ik(*dst),
                        NO_REG,
                        NO_REG,
                    );
                    stats.vector_ops += 1;
                }
                PInst::VecReduceFloat {
                    op,
                    elem,
                    lanes,
                    dst,
                    src,
                } => {
                    let s = *src as usize;
                    let reg = &frame.vec[s..s + vb];
                    let double = *elem == Width::W64;
                    let mut acc = read_lane_float(reg, 0, *elem);
                    for lane in 1..*lanes as usize {
                        let x = read_lane_float(reg, lane, *elem);
                        acc = match op {
                            RedOp::Add => fpu(FpuOp::Add, double, acc, x),
                            RedOp::Min => fpu(FpuOp::Min, double, acc, x),
                            RedOp::Max => fpu(FpuOp::Max, double, acc, x),
                        };
                    }
                    frame.float[*dst as usize] = acc;
                    tm.op(
                        stats,
                        LatClass::VecReduce,
                        cost.vec_reduce,
                        fk(*dst),
                        NO_REG,
                        NO_REG,
                    );
                    stats.vector_ops += 1;
                }
                PInst::SpillInt { slot, src } => {
                    let value = SlotValue::Int(frame.int[*src as usize]);
                    *frame
                        .slots
                        .get_mut(*slot as usize)
                        .ok_or_else(|| SimError::Trap(format!("spill to invalid slot {slot}")))? =
                        value;
                    tm.op(
                        stats,
                        LatClass::SpillStore,
                        cost.spill_store,
                        NO_REG,
                        ik(*src),
                        NO_REG,
                    );
                    stats.spill_stores += 1;
                }
                PInst::SpillFloat { slot, src } => {
                    let value = SlotValue::Float(frame.float[*src as usize]);
                    *frame
                        .slots
                        .get_mut(*slot as usize)
                        .ok_or_else(|| SimError::Trap(format!("spill to invalid slot {slot}")))? =
                        value;
                    tm.op(
                        stats,
                        LatClass::SpillStore,
                        cost.spill_store,
                        NO_REG,
                        fk(*src),
                        NO_REG,
                    );
                    stats.spill_stores += 1;
                }
                PInst::SpillVec { slot, src } => {
                    let s = *src as usize;
                    let value = SlotValue::Vec(frame.vec[s..s + vb].to_vec());
                    *frame
                        .slots
                        .get_mut(*slot as usize)
                        .ok_or_else(|| SimError::Trap(format!("spill to invalid slot {slot}")))? =
                        value;
                    tm.op(
                        stats,
                        LatClass::SpillStore,
                        cost.spill_store,
                        NO_REG,
                        NO_REG,
                        NO_REG,
                    );
                    stats.spill_stores += 1;
                }
                PInst::Reload { slot, class, dst } => {
                    let value = frame.slots.get(*slot as usize).ok_or_else(|| {
                        SimError::Trap(format!("reload from invalid slot {slot}"))
                    })?;
                    match (class, value) {
                        (RegClass::Int, SlotValue::Int(v)) => frame.int[*dst as usize] = *v,
                        (RegClass::Float, SlotValue::Float(v)) => {
                            frame.float[*dst as usize] = *v;
                        }
                        (RegClass::Vec, SlotValue::Vec(v)) => {
                            let d = *dst as usize;
                            frame.vec[d..d + vb].copy_from_slice(v);
                        }
                        (_, SlotValue::Empty) => {
                            return Err(SimError::Trap(format!(
                                "reload of uninitialized slot {slot}"
                            )));
                        }
                        _ => {
                            return Err(SimError::Trap(format!(
                                "reload class mismatch for slot {slot}"
                            )));
                        }
                    }
                    let dkey = match class {
                        RegClass::Int => ik(*dst),
                        RegClass::Float => fk(*dst),
                        RegClass::Vec => NO_REG,
                    };
                    tm.op(
                        stats,
                        LatClass::SpillReload,
                        cost.spill_load,
                        dkey,
                        NO_REG,
                        NO_REG,
                    );
                    stats.spill_reloads += 1;
                }
                PInst::Jump { target } => {
                    if pool.cancel_requested() {
                        return Err(SimError::Cancelled);
                    }
                    pc = *target as usize;
                    tm.jump(stats, cost.branch_taken);
                    stats.branches += 1;
                }
                PInst::BranchNz {
                    cond,
                    then_target,
                    else_target,
                } => {
                    if pool.cancel_requested() {
                        return Err(SimError::Cancelled);
                    }
                    let taken = frame.int[*cond as usize] != 0;
                    // Predictor site id: this branch's own enum-stream offset
                    // (`pc` already advanced past the fetch), captured before
                    // the redirect below.
                    let site = (pc - 1) as u32;
                    pc = if taken {
                        *then_target as usize
                    } else {
                        *else_target as usize
                    };
                    let c = if taken {
                        cost.branch_taken
                    } else {
                        cost.branch_not_taken
                    };
                    tm.branch(stats, site, taken, c, ik(*cond));
                    stats.branches += 1;
                }
                PInst::Call(call) => {
                    let mut argv = pool.take_argv();
                    for &(class, idx) in call.args.iter() {
                        argv.push(match class {
                            RegClass::Int => MachineValue::Int(frame.int[idx]),
                            RegClass::Float => MachineValue::Float(frame.float[idx]),
                            RegClass::Vec => {
                                return Err(SimError::Trap(
                                    "vector call arguments are unsupported".into(),
                                ));
                            }
                        });
                    }
                    tm.call(stats, cost.call);
                    // Calls made from metered code stay metered: once fuel is
                    // too low for region prepayment, the whole remaining
                    // execution runs per-instruction like the legacy walk.
                    let out = self.exec_metered(
                        call.callee,
                        &argv,
                        mem,
                        pool,
                        fuel,
                        depth + 1,
                        stats,
                        tm,
                    )?;
                    pool.give_argv(argv);
                    if let Some((class, idx)) = call.ret {
                        match (class, out) {
                            (RegClass::Int, Some(MachineValue::Int(v))) => frame.int[idx] = v,
                            (RegClass::Float, Some(MachineValue::Float(v))) => {
                                frame.float[idx] = v;
                            }
                            _ => {
                                return Err(SimError::Trap(format!(
                                    "call to {} did not produce the expected value",
                                    self.functions[call.callee].name
                                )));
                            }
                        }
                    }
                }
                PInst::CallUnknown { name } => {
                    return Err(SimError::UnknownFunction(name.to_string()));
                }
                PInst::Ret { value } => {
                    let src = match value {
                        Some((RegClass::Int, idx)) => ik(*idx as u32),
                        Some((RegClass::Float, idx)) => fk(*idx as u32),
                        _ => NO_REG,
                    };
                    tm.op(stats, LatClass::Mov, cost.mov, NO_REG, src, NO_REG);
                    return Ok(match value {
                        Some((RegClass::Int, idx)) => Some(MachineValue::Int(frame.int[*idx])),
                        Some((RegClass::Float, idx)) => {
                            Some(MachineValue::Float(frame.float[*idx]))
                        }
                        Some((RegClass::Vec, _)) => {
                            return Err(SimError::Trap(
                                "vector return values are unsupported".into(),
                            ));
                        }
                        None => None,
                    });
                }
                PInst::FellOff { block } => {
                    // The legacy walk charged fuel for the failed fetch but
                    // did not count an instruction; mirror that exactly.
                    stats.instructions -= 1;
                    return Err(SimError::Trap(format!(
                        "fell off the end of block {block} in {}",
                        f.name
                    )));
                }
            }
        }
    }

    /// Render the prepared (and fused) instruction streams of every function:
    /// resolved offsets, per-instruction cycle costs, fusion decisions and
    /// per-region fuel charges. This is the debugging surface behind
    /// `splitc disasm`.
    #[allow(clippy::too_many_lines)]
    pub fn disasm(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "; prepared program `{}` — {} function(s), dispatch: {}, fusion: {}",
            self.name,
            self.functions.len(),
            if self.threaded {
                "threaded"
            } else {
                "metered (fallback)"
            },
            if self.fused { "on" } else { "off" },
        );
        let fs = self.fusion;
        let _ = writeln!(
            out,
            "; fused macro-ops: {} cmp+branch, {} load+op, {} indvar-step, {} paired, {} tripled",
            fs.cmp_branch, fs.load_op, fs.indvar, fs.pair, fs.triple
        );
        let _ = writeln!(out, "; timing model: {}", self.timing.label());
        for (fi, f) in self.functions.iter().enumerate() {
            let _ = writeln!(
                out,
                "\nfn {} (#{fi}) — params {}, slots {}, {} inst / {} op",
                f.name,
                f.params.len(),
                f.num_slots,
                f.code.len(),
                f.ops.len(),
            );
            if !self.threaded {
                // No threaded stream was built; dump the enum stream directly.
                for (pc, inst) in f.code.iter().enumerate() {
                    let block = f
                        .block_offsets
                        .iter()
                        .position(|&o| o as usize == pc)
                        .map(|b| format!("b{b}:"))
                        .unwrap_or_default();
                    // Under the pipelined model the baked charge doubles as
                    // the op's result latency; name its latency class so the
                    // stall attribution in `SimStats` can be traced per op.
                    let lat = if self.timing == TimingKind::InOrder {
                        pinst_lat_class(inst)
                            .map(|c| format!(" ; lat {}", c.label()))
                            .unwrap_or_default()
                    } else {
                        String::new()
                    };
                    let _ = writeln!(
                        out,
                        "  {block:>5} @{pc:<4} {:<60} ; cycles {}{lat}",
                        pinst_text(inst),
                        pinst_cost_text(inst, &self.cost)
                    );
                }
                continue;
            }
            for (pi, meta) in f.meta.iter().enumerate() {
                let enum_pc = meta.enum_pc as usize;
                // Block label + region charge when an op starts a region.
                if let Some(b) = f.block_offsets.iter().position(|&o| o as usize == enum_pc) {
                    let t = &f.targets[b];
                    let _ = writeln!(
                        out,
                        "  b{b}: (entry charge {} inst, prepaid {} cycles)",
                        t.charge, t.stat.cycles
                    );
                } else if let Some(t) = f
                    .targets
                    .iter()
                    .skip(f.block_offsets.len())
                    .find(|t| t.ops_pc as usize == pi)
                {
                    let _ = writeln!(
                        out,
                        "  .after-call: (entry charge {} inst, prepaid {} cycles)",
                        t.charge, t.stat.cycles
                    );
                }
                let span = if meta.len > 1 {
                    format!("@{enum_pc}..{}", enum_pc + meta.len as usize)
                } else {
                    format!("@{enum_pc}")
                };
                // A `+` (pair) or `*` (triple) after the record index marks
                // a weld opener: its handler also executes the next one or
                // two records printed below it.
                let pm = match meta.welded {
                    2 => "+",
                    3 => "*",
                    _ => " ",
                };
                match meta.fused {
                    FuseKind::None => {
                        let inst = &f.code[enum_pc];
                        let _ = writeln!(
                            out,
                            "  {pi:>4}{pm}{span:<9} {:<58} ; cycles {}",
                            pinst_text(inst),
                            pinst_cost_text(inst, &self.cost)
                        );
                    }
                    kind => {
                        let parts: Vec<String> = f.code[enum_pc..enum_pc + meta.len as usize]
                            .iter()
                            .map(pinst_text)
                            .collect();
                        let costs: Vec<String> = f.code[enum_pc..enum_pc + meta.len as usize]
                            .iter()
                            .map(|i| pinst_cost_text(i, &self.cost))
                            .collect();
                        let _ = writeln!(
                            out,
                            "  {pi:>4}{pm}{span:<9} fuse.{} {{ {} }} ; cycles {} ; fuel {}",
                            kind.label(),
                            parts.join(" ; "),
                            costs.join(" + "),
                            meta.len
                        );
                    }
                }
            }
        }
        out
    }
}

/// Copy `args` into the register files named by the function's parameters.
fn write_params(
    f: &PreparedFunction,
    frame: &mut Frame,
    args: &[MachineValue],
) -> Result<(), SimError> {
    for (&(class, idx), value) in f.params.iter().zip(args) {
        match (class, value) {
            (RegClass::Int, MachineValue::Int(v)) => frame.int[idx] = *v,
            (RegClass::Float, MachineValue::Float(v)) => frame.float[idx] = *v,
            (RegClass::Int, MachineValue::Float(v)) => frame.int[idx] = *v as i64,
            (RegClass::Float, MachineValue::Int(v)) => frame.float[idx] = *v as f64,
            (RegClass::Vec, _) => {
                return Err(SimError::Trap(
                    "vector registers cannot be parameters".into(),
                ));
            }
        }
    }
    Ok(())
}

/// Compact one-line rendering of a pre-decoded instruction.
fn pinst_text(inst: &PInst) -> String {
    match inst {
        PInst::Call(c) => format!(
            "Call {{ callee: #{}, args: {:?}, ret: {:?} }}",
            c.callee, c.args, c.ret
        ),
        other => format!("{other:?}"),
    }
}

/// The cycle charge of one pre-decoded instruction as text (`taken/not`
/// for conditional branches, whose charge depends on the outcome).
fn pinst_cost_text(inst: &PInst, cost: &CostModel) -> String {
    match inst {
        PInst::Imm { .. }
        | PInst::FImm { .. }
        | PInst::MovInt { .. }
        | PInst::MovFloat { .. }
        | PInst::MovVec { .. }
        | PInst::SelectInt { .. }
        | PInst::SelectFloat { .. }
        | PInst::SelectVec { .. }
        | PInst::Ret { .. } => cost.mov.to_string(),
        PInst::IntOp { cost, .. } | PInst::FloatOp { cost, .. } => cost.to_string(),
        PInst::IntNeg { .. }
        | PInst::IntNot { .. }
        | PInst::IntCmp { .. }
        | PInst::IntResize { .. } => cost.int_op.to_string(),
        PInst::FloatNeg { .. } | PInst::FloatCmp { .. } => cost.fp_add.to_string(),
        PInst::IntToFloat { .. } | PInst::FloatToInt { .. } | PInst::FloatCvt { .. } => {
            cost.convert.to_string()
        }
        PInst::LoadInt { .. } | PInst::LoadFloat { .. } => cost.load.to_string(),
        PInst::StoreInt { .. } | PInst::StoreFloat { .. } => cost.store.to_string(),
        PInst::VecLoad { .. } => cost.vec_load.to_string(),
        PInst::VecStore { .. } => cost.vec_store.to_string(),
        PInst::VecSplatInt { .. }
        | PInst::VecSplatFloat { .. }
        | PInst::VecIntOp { .. }
        | PInst::VecFloatOp { .. } => cost.vec_op.to_string(),
        PInst::VecReduceInt { .. } | PInst::VecReduceFloat { .. } => cost.vec_reduce.to_string(),
        PInst::SpillInt { .. } | PInst::SpillFloat { .. } | PInst::SpillVec { .. } => {
            cost.spill_store.to_string()
        }
        PInst::Reload { .. } => cost.spill_load.to_string(),
        PInst::Jump { .. } => cost.branch_taken.to_string(),
        PInst::BranchNz { .. } => {
            format!("{}/{}", cost.branch_taken, cost.branch_not_taken)
        }
        PInst::Call(_) => cost.call.to_string(),
        PInst::CallUnknown { .. } | PInst::FellOff { .. } => "0 (trap)".to_string(),
    }
}

/// The latency class of one pre-decoded instruction under the pipelined
/// timing model, or `None` for instructions priced by control-flow hooks
/// (branches, jumps, calls) or synthetic traps.
fn pinst_lat_class(inst: &PInst) -> Option<LatClass> {
    Some(match inst {
        PInst::Imm { .. }
        | PInst::FImm { .. }
        | PInst::MovInt { .. }
        | PInst::MovFloat { .. }
        | PInst::MovVec { .. }
        | PInst::SelectInt { .. }
        | PInst::SelectFloat { .. }
        | PInst::SelectVec { .. }
        | PInst::Ret { .. } => LatClass::Mov,
        PInst::IntOp { op, .. } => match op {
            AluOp::Mul => LatClass::Mul,
            AluOp::Div | AluOp::Rem => LatClass::Div,
            _ => LatClass::Alu,
        },
        PInst::FloatOp { op, .. } => match op {
            FpuOp::Mul => LatClass::FpMul,
            FpuOp::Div => LatClass::FpDiv,
            _ => LatClass::FpAdd,
        },
        PInst::IntNeg { .. }
        | PInst::IntNot { .. }
        | PInst::IntCmp { .. }
        | PInst::IntResize { .. } => LatClass::Alu,
        PInst::FloatNeg { .. } | PInst::FloatCmp { .. } => LatClass::FpAdd,
        PInst::IntToFloat { .. } | PInst::FloatToInt { .. } | PInst::FloatCvt { .. } => {
            LatClass::Convert
        }
        PInst::LoadInt { .. } | PInst::LoadFloat { .. } => LatClass::Load,
        PInst::StoreInt { .. } | PInst::StoreFloat { .. } => LatClass::Store,
        PInst::VecLoad { .. } => LatClass::VecLoad,
        PInst::VecStore { .. } => LatClass::VecStore,
        PInst::VecSplatInt { .. }
        | PInst::VecSplatFloat { .. }
        | PInst::VecIntOp { .. }
        | PInst::VecFloatOp { .. } => LatClass::Vec,
        PInst::VecReduceInt { .. } | PInst::VecReduceFloat { .. } => LatClass::VecReduce,
        PInst::SpillInt { .. } | PInst::SpillFloat { .. } | PInst::SpillVec { .. } => {
            LatClass::SpillStore
        }
        PInst::Reload { .. } => LatClass::SpillReload,
        PInst::Jump { .. }
        | PInst::BranchNz { .. }
        | PInst::Call(_)
        | PInst::CallUnknown { .. }
        | PInst::FellOff { .. } => return None,
    })
}

/// Register-file shape of the target a program is being prepared for.
struct Layout {
    int_regs: usize,
    float_regs: usize,
    vec_regs: usize,
    vector_bytes: usize,
}

impl Layout {
    /// Validate `r` against its class's register file; returns the direct
    /// frame index (a byte offset for vector registers).
    fn resolve(&self, r: PReg, fname: &str) -> Result<u32, SimError> {
        let idx = usize::from(r.index);
        let ok = match r.class {
            RegClass::Int => idx < self.int_regs,
            RegClass::Float => idx < self.float_regs,
            RegClass::Vec => idx < self.vec_regs,
        };
        if !ok {
            return Err(SimError::BadRegister {
                reg: r.to_string(),
                function: fname.to_owned(),
            });
        }
        Ok(match r.class {
            RegClass::Vec => (idx * self.vector_bytes) as u32,
            _ => idx as u32,
        })
    }

    /// Resolve `r` as `(class, index)` for class-dispatched instructions.
    fn resolve_ref(&self, r: PReg, fname: &str) -> Result<RRef, SimError> {
        Ok((r.class, self.resolve(r, fname)? as usize))
    }
}

#[allow(clippy::too_many_lines)]
fn prepare_function(
    f: &MFunction,
    target: &TargetDesc,
    layout: &Layout,
    by_name: &HashMap<String, usize>,
) -> Result<PreparedFunction, SimError> {
    let fname = &f.name;
    // Pass 1: instruction offset of every block in the flat stream (blocks
    // that do not end in a terminator get a synthetic trap appended).
    let mut offsets = Vec::with_capacity(f.blocks.len());
    let mut len = 0u32;
    for b in &f.blocks {
        offsets.push(len);
        len += b.insts.len() as u32;
        if !b.insts.last().is_some_and(MInst::is_terminator) {
            len += 1;
        }
    }
    let block_offset = |target_block: u32| -> Result<u32, SimError> {
        offsets.get(target_block as usize).copied().ok_or_else(|| {
            SimError::Trap(format!("jump to invalid block {target_block} in {fname}"))
        })
    };
    let require_simd = || -> Result<(), SimError> {
        if target.has_simd() {
            Ok(())
        } else {
            Err(SimError::NoVectorUnit {
                function: fname.clone(),
            })
        }
    };
    let lanes_for = |elem: Width| (target.vector_bytes() / elem.bytes()) as u32;

    let mut params = Vec::with_capacity(f.params.len());
    for p in &f.params {
        params.push(layout.resolve_ref(*p, fname)?);
    }

    // Pass 2: pre-decode every instruction.
    let mut code = Vec::with_capacity(len as usize);
    for (bi, b) in f.blocks.iter().enumerate() {
        for inst in &b.insts {
            let p = match inst {
                MInst::Imm { dst, value } => PInst::Imm {
                    dst: layout.resolve(*dst, fname)?,
                    value: *value,
                },
                MInst::FImm { dst, value } => PInst::FImm {
                    dst: layout.resolve(*dst, fname)?,
                    value: *value,
                },
                MInst::Mov { dst, src } => {
                    let d = layout.resolve(*dst, fname)?;
                    let s = layout.resolve(*src, fname)?;
                    match dst.class {
                        RegClass::Int => PInst::MovInt { dst: d, src: s },
                        RegClass::Float => PInst::MovFloat { dst: d, src: s },
                        RegClass::Vec => PInst::MovVec { dst: d, src: s },
                    }
                }
                MInst::IntOp {
                    op,
                    width,
                    signed,
                    dst,
                    lhs,
                    rhs,
                } => PInst::IntOp {
                    op: *op,
                    width: *width,
                    signed: *signed,
                    dst: layout.resolve(*dst, fname)?,
                    lhs: layout.resolve(*lhs, fname)?,
                    rhs: layout.resolve(*rhs, fname)?,
                    cost: match op {
                        AluOp::Mul => target.cost.int_mul,
                        AluOp::Div | AluOp::Rem => target.cost.int_div,
                        _ => target.cost.int_op,
                    },
                },
                MInst::FloatOp {
                    op,
                    double,
                    dst,
                    lhs,
                    rhs,
                } => PInst::FloatOp {
                    op: *op,
                    double: *double,
                    dst: layout.resolve(*dst, fname)?,
                    lhs: layout.resolve(*lhs, fname)?,
                    rhs: layout.resolve(*rhs, fname)?,
                    cost: match op {
                        FpuOp::Mul => target.cost.fp_mul,
                        FpuOp::Div => target.cost.fp_div,
                        _ => target.cost.fp_add,
                    },
                },
                MInst::IntNeg { width, dst, src } => PInst::IntNeg {
                    width: *width,
                    dst: layout.resolve(*dst, fname)?,
                    src: layout.resolve(*src, fname)?,
                },
                MInst::IntNot { width, dst, src } => PInst::IntNot {
                    width: *width,
                    dst: layout.resolve(*dst, fname)?,
                    src: layout.resolve(*src, fname)?,
                },
                MInst::FloatNeg { double, dst, src } => PInst::FloatNeg {
                    double: *double,
                    dst: layout.resolve(*dst, fname)?,
                    src: layout.resolve(*src, fname)?,
                },
                MInst::IntCmp {
                    pred,
                    width,
                    signed,
                    dst,
                    lhs,
                    rhs,
                } => PInst::IntCmp {
                    pred: *pred,
                    width: *width,
                    signed: *signed,
                    dst: layout.resolve(*dst, fname)?,
                    lhs: layout.resolve(*lhs, fname)?,
                    rhs: layout.resolve(*rhs, fname)?,
                },
                MInst::FloatCmp {
                    pred,
                    double,
                    dst,
                    lhs,
                    rhs,
                } => PInst::FloatCmp {
                    pred: *pred,
                    double: *double,
                    dst: layout.resolve(*dst, fname)?,
                    lhs: layout.resolve(*lhs, fname)?,
                    rhs: layout.resolve(*rhs, fname)?,
                },
                MInst::Select {
                    dst,
                    cond,
                    if_true,
                    if_false,
                } => {
                    let d = layout.resolve(*dst, fname)?;
                    let c = layout.resolve(*cond, fname)?;
                    let t = layout.resolve(*if_true, fname)?;
                    let e = layout.resolve(*if_false, fname)?;
                    match dst.class {
                        RegClass::Int => PInst::SelectInt {
                            dst: d,
                            cond: c,
                            if_true: t,
                            if_false: e,
                        },
                        RegClass::Float => PInst::SelectFloat {
                            dst: d,
                            cond: c,
                            if_true: t,
                            if_false: e,
                        },
                        RegClass::Vec => PInst::SelectVec {
                            dst: d,
                            cond: c,
                            if_true: t,
                            if_false: e,
                        },
                    }
                }
                MInst::IntToFloat {
                    signed,
                    double,
                    dst,
                    src,
                } => PInst::IntToFloat {
                    signed: *signed,
                    double: *double,
                    dst: layout.resolve(*dst, fname)?,
                    src: layout.resolve(*src, fname)?,
                },
                MInst::FloatToInt {
                    width,
                    signed,
                    dst,
                    src,
                } => PInst::FloatToInt {
                    width: *width,
                    signed: *signed,
                    dst: layout.resolve(*dst, fname)?,
                    src: layout.resolve(*src, fname)?,
                },
                MInst::FloatCvt {
                    to_double,
                    dst,
                    src,
                } => PInst::FloatCvt {
                    to_double: *to_double,
                    dst: layout.resolve(*dst, fname)?,
                    src: layout.resolve(*src, fname)?,
                },
                MInst::IntResize {
                    width,
                    signed,
                    dst,
                    src,
                } => PInst::IntResize {
                    width: *width,
                    signed: *signed,
                    dst: layout.resolve(*dst, fname)?,
                    src: layout.resolve(*src, fname)?,
                },
                MInst::Load {
                    width,
                    float,
                    signed,
                    dst,
                    base,
                    offset,
                } => {
                    let d = layout.resolve(*dst, fname)?;
                    let b = layout.resolve(*base, fname)?;
                    if *float {
                        PInst::LoadFloat {
                            width: *width,
                            dst: d,
                            base: b,
                            offset: *offset,
                        }
                    } else {
                        PInst::LoadInt {
                            width: *width,
                            signed: *signed,
                            dst: d,
                            base: b,
                            offset: *offset,
                        }
                    }
                }
                MInst::Store {
                    width,
                    float,
                    base,
                    offset,
                    src,
                } => {
                    let b = layout.resolve(*base, fname)?;
                    let s = layout.resolve(*src, fname)?;
                    if *float {
                        PInst::StoreFloat {
                            width: *width,
                            base: b,
                            offset: *offset,
                            src: s,
                        }
                    } else {
                        PInst::StoreInt {
                            width: *width,
                            base: b,
                            offset: *offset,
                            src: s,
                        }
                    }
                }
                MInst::VecLoad { dst, base, offset } => {
                    require_simd()?;
                    PInst::VecLoad {
                        dst: layout.resolve(*dst, fname)?,
                        base: layout.resolve(*base, fname)?,
                        offset: *offset,
                    }
                }
                MInst::VecStore { base, offset, src } => {
                    require_simd()?;
                    PInst::VecStore {
                        base: layout.resolve(*base, fname)?,
                        offset: *offset,
                        src: layout.resolve(*src, fname)?,
                    }
                }
                MInst::VecSplatInt { elem, dst, src } => {
                    require_simd()?;
                    PInst::VecSplatInt {
                        elem: *elem,
                        lanes: lanes_for(*elem),
                        dst: layout.resolve(*dst, fname)?,
                        src: layout.resolve(*src, fname)?,
                    }
                }
                MInst::VecSplatFloat { elem, dst, src } => {
                    require_simd()?;
                    PInst::VecSplatFloat {
                        elem: *elem,
                        lanes: lanes_for(*elem),
                        dst: layout.resolve(*dst, fname)?,
                        src: layout.resolve(*src, fname)?,
                    }
                }
                MInst::VecIntOp {
                    op,
                    elem,
                    signed,
                    dst,
                    lhs,
                    rhs,
                } => {
                    require_simd()?;
                    PInst::VecIntOp {
                        op: *op,
                        elem: *elem,
                        signed: *signed,
                        lanes: lanes_for(*elem),
                        dst: layout.resolve(*dst, fname)?,
                        lhs: layout.resolve(*lhs, fname)?,
                        rhs: layout.resolve(*rhs, fname)?,
                    }
                }
                MInst::VecFloatOp {
                    op,
                    elem,
                    dst,
                    lhs,
                    rhs,
                } => {
                    require_simd()?;
                    PInst::VecFloatOp {
                        op: *op,
                        elem: *elem,
                        double: *elem == Width::W64,
                        lanes: lanes_for(*elem),
                        dst: layout.resolve(*dst, fname)?,
                        lhs: layout.resolve(*lhs, fname)?,
                        rhs: layout.resolve(*rhs, fname)?,
                    }
                }
                MInst::VecReduceInt {
                    op,
                    elem,
                    signed,
                    dst,
                    src,
                } => {
                    require_simd()?;
                    PInst::VecReduceInt {
                        op: *op,
                        elem: *elem,
                        signed: *signed,
                        lanes: lanes_for(*elem),
                        dst: layout.resolve(*dst, fname)?,
                        src: layout.resolve(*src, fname)?,
                    }
                }
                MInst::VecReduceFloat { op, elem, dst, src } => {
                    require_simd()?;
                    PInst::VecReduceFloat {
                        op: *op,
                        elem: *elem,
                        lanes: lanes_for(*elem),
                        dst: layout.resolve(*dst, fname)?,
                        src: layout.resolve(*src, fname)?,
                    }
                }
                MInst::Spill { slot, src } => {
                    let s = layout.resolve(*src, fname)?;
                    let slot = *slot;
                    match src.class {
                        RegClass::Int => PInst::SpillInt { slot, src: s },
                        RegClass::Float => PInst::SpillFloat { slot, src: s },
                        RegClass::Vec => PInst::SpillVec { slot, src: s },
                    }
                }
                MInst::Reload { slot, dst } => PInst::Reload {
                    slot: *slot,
                    class: dst.class,
                    dst: layout.resolve(*dst, fname)?,
                },
                MInst::Jump { target } => PInst::Jump {
                    target: block_offset(*target)?,
                },
                MInst::BranchNz {
                    cond,
                    then_target,
                    else_target,
                } => PInst::BranchNz {
                    cond: layout.resolve(*cond, fname)?,
                    then_target: block_offset(*then_target)?,
                    else_target: block_offset(*else_target)?,
                },
                MInst::Call { callee, args, ret } => {
                    let mut resolved = Vec::with_capacity(args.len());
                    for a in args {
                        resolved.push(layout.resolve_ref(*a, fname)?);
                    }
                    let ret = match ret {
                        Some(r) => Some(layout.resolve_ref(*r, fname)?),
                        None => None,
                    };
                    match by_name.get(callee) {
                        Some(&index) => PInst::Call(Box::new(PCall {
                            callee: index,
                            args: resolved.into_boxed_slice(),
                            ret,
                        })),
                        None => PInst::CallUnknown {
                            name: callee.clone().into_boxed_str(),
                        },
                    }
                }
                MInst::Ret { value } => PInst::Ret {
                    value: match value {
                        Some(r) => Some(layout.resolve_ref(*r, fname)?),
                        None => None,
                    },
                },
            };
            code.push(p);
        }
        if !b.insts.last().is_some_and(MInst::is_terminator) {
            code.push(PInst::FellOff { block: bi as u32 });
        }
    }
    if f.blocks.is_empty() {
        code.push(PInst::FellOff { block: 0 });
        offsets.push(0);
    }
    Ok(PreparedFunction {
        name: f.name.clone(),
        params: params.into_boxed_slice(),
        num_slots: f.num_slots as usize,
        code,
        block_offsets: offsets,
        ops: Vec::new(),
        fixup: Vec::new(),
        meta: Vec::new(),
        targets: Vec::new(),
        calls: Vec::new(),
    })
}

/// A reusable executor over one [`PreparedProgram`]: owns a [`FramePool`] and
/// the fuel/stats bookkeeping, mirroring the [`Simulator`](crate::Simulator)
/// API for code that runs the same prepared program many times.
#[derive(Debug)]
pub struct PreparedSimulator<'p> {
    program: &'p PreparedProgram,
    pub(crate) pool: FramePool,
    fuel: u64,
    stats: SimStats,
}

impl<'p> PreparedSimulator<'p> {
    /// Create an executor over `program` with the default fuel budget.
    pub fn new(program: &'p PreparedProgram) -> Self {
        PreparedSimulator {
            program,
            pool: FramePool::new(),
            fuel: DEFAULT_SIM_FUEL,
            stats: SimStats::default(),
        }
    }

    /// Override the instruction budget.
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }

    /// Statistics from the most recent [`PreparedSimulator::run`] /
    /// [`PreparedSimulator::run_metered`].
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Execute `func` with `args` against `mem` on the threaded dispatch
    /// stream, recycling frames from the executor's pool.
    ///
    /// # Errors
    ///
    /// Same conditions as [`PreparedProgram::run`].
    pub fn run(
        &mut self,
        func: &str,
        args: &[MachineValue],
        mem: &mut [u8],
    ) -> Result<Option<MachineValue>, SimError> {
        self.program
            .run(func, args, mem, &mut self.pool, self.fuel, &mut self.stats)
    }

    /// Execute `func` on the metered per-instruction stream (the reference
    /// loop the threaded path is differenced against).
    ///
    /// # Errors
    ///
    /// Same conditions as [`PreparedProgram::run`].
    pub fn run_metered(
        &mut self,
        func: &str,
        args: &[MachineValue],
        mem: &mut [u8],
    ) -> Result<Option<MachineValue>, SimError> {
        self.program
            .run_metered(func, args, mem, &mut self.pool, self.fuel, &mut self.stats)
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::mcode::{MBlock, MProgram};

    fn call_program() -> MProgram {
        // main(f0) { f1 = sq(f0); return f1 }   sq(f0) { return f0*f0 }
        let callee = MFunction {
            name: "sq".into(),
            params: vec![PReg::float(0)],
            blocks: vec![MBlock {
                insts: vec![
                    MInst::FloatOp {
                        op: FpuOp::Mul,
                        double: false,
                        dst: PReg::float(0),
                        lhs: PReg::float(0),
                        rhs: PReg::float(0),
                    },
                    MInst::Ret {
                        value: Some(PReg::float(0)),
                    },
                ],
            }],
            num_slots: 0,
        };
        let caller = MFunction {
            name: "main".into(),
            params: vec![PReg::float(0)],
            blocks: vec![MBlock {
                insts: vec![
                    MInst::Call {
                        callee: "sq".into(),
                        args: vec![PReg::float(0)],
                        ret: Some(PReg::float(1)),
                    },
                    MInst::Ret {
                        value: Some(PReg::float(1)),
                    },
                ],
            }],
            num_slots: 0,
        };
        MProgram {
            name: "m".into(),
            functions: vec![callee, caller],
        }
    }

    #[test]
    fn call_targets_resolve_to_dense_indices_and_frames_recycle() {
        let p = call_program();
        let target = TargetDesc::x86_sse();
        let prepared = PreparedProgram::prepare(&p, &target).unwrap();
        assert_eq!(prepared.function_index("sq"), Some(0));
        assert_eq!(prepared.function_index("main"), Some(1));
        assert_eq!(prepared.function_index("nope"), None);
        let mut sim = PreparedSimulator::new(&prepared);
        let mut mem = vec![0u8; 16];
        for _ in 0..3 {
            let out = sim
                .run("main", &[MachineValue::Float(3.0)], &mut mem)
                .unwrap();
            assert_eq!(out, Some(MachineValue::Float(9.0)));
        }
        // Both the caller's and the callee's frame went back to the pool.
        assert_eq!(sim.pool.pooled_frames(), 2);
    }

    #[test]
    fn scalar_only_targets_prepare_an_empty_vector_buffer() {
        let p = call_program();
        let prepared = PreparedProgram::prepare(&p, &TargetDesc::ultrasparc()).unwrap();
        assert_eq!(prepared.vec_bytes_total, 0);
        let simd = PreparedProgram::prepare(&p, &TargetDesc::x86_sse()).unwrap();
        assert_eq!(simd.vec_bytes_total, 8 * 16);
    }

    #[test]
    fn bad_registers_and_missing_vector_units_fail_at_prepare_time() {
        let bad = MProgram {
            name: "bad".into(),
            functions: vec![MFunction {
                name: "f".into(),
                params: vec![],
                blocks: vec![MBlock {
                    insts: vec![
                        MInst::Imm {
                            dst: PReg::int(40),
                            value: 1,
                        },
                        MInst::Ret { value: None },
                    ],
                }],
                num_slots: 0,
            }],
        };
        let err = PreparedProgram::prepare(&bad, &TargetDesc::x86_sse()).unwrap_err();
        assert!(matches!(err, SimError::BadRegister { .. }));

        let vecp = MProgram {
            name: "v".into(),
            functions: vec![MFunction {
                name: "f".into(),
                params: vec![PReg::int(0)],
                blocks: vec![MBlock {
                    insts: vec![
                        MInst::VecLoad {
                            dst: PReg::vec(0),
                            base: PReg::int(0),
                            offset: 0,
                        },
                        MInst::Ret { value: None },
                    ],
                }],
                num_slots: 0,
            }],
        };
        let err = PreparedProgram::prepare(&vecp, &TargetDesc::ultrasparc()).unwrap_err();
        assert!(matches!(err, SimError::NoVectorUnit { .. }));
        assert!(PreparedProgram::prepare(&vecp, &TargetDesc::x86_sse()).is_ok());
    }

    #[test]
    fn hostile_addresses_trap_identically_on_both_execution_paths() {
        // Negative bases, i64::MAX + positive offset (wraps negative) and a
        // vector access straddling the end of memory must all surface as
        // `SimError::Trap` — never a slice panic — and the prepared path must
        // agree with the legacy walk on each.
        let scalar = MProgram {
            name: "m".into(),
            functions: vec![MFunction {
                name: "peek".into(),
                params: vec![PReg::int(0)],
                blocks: vec![MBlock {
                    insts: vec![
                        MInst::Load {
                            width: Width::W64,
                            float: false,
                            signed: true,
                            dst: PReg::int(1),
                            base: PReg::int(0),
                            offset: 8,
                        },
                        MInst::Ret {
                            value: Some(PReg::int(1)),
                        },
                    ],
                }],
                num_slots: 0,
            }],
        };
        let vector = MProgram {
            name: "m".into(),
            functions: vec![MFunction {
                name: "vpeek".into(),
                params: vec![PReg::int(0)],
                blocks: vec![MBlock {
                    insts: vec![
                        MInst::VecLoad {
                            dst: PReg::vec(0),
                            base: PReg::int(0),
                            offset: 0,
                        },
                        MInst::Ret { value: None },
                    ],
                }],
                num_slots: 0,
            }],
        };
        let target = TargetDesc::x86_sse();
        let mem_size = 256usize;
        // Hostile for both programs (the scalar load adds offset 8): negative
        // effective addresses, i64 overflow, and far-out-of-bounds positives.
        let bases = [-9i64, -12, i64::MIN, i64::MAX, i64::MAX - 8];
        for (program, func) in [(&scalar, "peek"), (&vector, "vpeek")] {
            let prepared = PreparedProgram::prepare(program, &target).unwrap();
            for base in bases {
                let mut mem = vec![0u8; mem_size];
                let mut legacy = crate::Simulator::new(program, &target);
                let legacy_err = legacy
                    .run_legacy(func, &[MachineValue::Int(base)], &mut mem)
                    .unwrap_err();
                assert!(
                    matches!(legacy_err, SimError::Trap(_)),
                    "{func} base {base} (legacy): {legacy_err:?}"
                );
                let mut sim = PreparedSimulator::new(&prepared);
                let prepared_err = sim
                    .run(func, &[MachineValue::Int(base)], &mut mem)
                    .unwrap_err();
                assert_eq!(
                    prepared_err, legacy_err,
                    "{func} base {base}: paths disagree on the trap"
                );
            }
        }
        // Straddling the end: scalar 8-byte load at len-4, 16-byte vector
        // load at len-15.
        let prepared = PreparedProgram::prepare(&vector, &target).unwrap();
        let mut mem = vec![0u8; mem_size];
        let mut sim = PreparedSimulator::new(&prepared);
        let base = (mem_size - 15) as i64;
        let err = sim
            .run("vpeek", &[MachineValue::Int(base)], &mut mem)
            .unwrap_err();
        assert!(matches!(err, SimError::Trap(_)), "straddle: {err:?}");
        let mut legacy = crate::Simulator::new(&vector, &target);
        assert_eq!(
            legacy
                .run_legacy("vpeek", &[MachineValue::Int(base)], &mut mem)
                .unwrap_err(),
            err
        );
        // In-bounds accesses still succeed on both paths.
        let ok = sim
            .run("vpeek", &[MachineValue::Int(64)], &mut mem)
            .unwrap();
        assert_eq!(ok, None);
    }

    #[test]
    fn vector_lane_shifts_mask_counts_like_the_scalar_alu() {
        // AluOp::Shl/Shr through the SIMD lane path: counts splatted across
        // the lanes mask modulo 64 exactly like the scalar ALU, on both the
        // legacy walk and the prepared stream.
        let lanes_program = |count: i64| MProgram {
            name: "m".into(),
            functions: vec![MFunction {
                name: "vshift".into(),
                params: vec![PReg::int(0)],
                blocks: vec![MBlock {
                    insts: vec![
                        MInst::Imm {
                            dst: PReg::int(1),
                            value: count,
                        },
                        MInst::VecLoad {
                            dst: PReg::vec(0),
                            base: PReg::int(0),
                            offset: 0,
                        },
                        MInst::VecSplatInt {
                            elem: Width::W32,
                            dst: PReg::vec(1),
                            src: PReg::int(1),
                        },
                        MInst::VecIntOp {
                            op: AluOp::Shl,
                            elem: Width::W32,
                            signed: true,
                            dst: PReg::vec(0),
                            lhs: PReg::vec(0),
                            rhs: PReg::vec(1),
                        },
                        MInst::VecStore {
                            base: PReg::int(0),
                            offset: 0,
                            src: PReg::vec(0),
                        },
                        MInst::Ret { value: None },
                    ],
                }],
                num_slots: 0,
            }],
        };
        let target = TargetDesc::x86_sse();
        for (count, expect) in [(1i64, 2i32), (33, 0), (65, 2), (-1, 0), (64, 1)] {
            let program = lanes_program(count);
            let prepared = PreparedProgram::prepare(&program, &target).unwrap();
            let mut mem = vec![0u8; 64];
            for lane in 0..4 {
                mem[16 + lane * 4..16 + lane * 4 + 4].copy_from_slice(&1i32.to_le_bytes());
            }
            let mut legacy_mem = mem.clone();
            let mut sim = PreparedSimulator::new(&prepared);
            sim.run("vshift", &[MachineValue::Int(16)], &mut mem)
                .unwrap();
            let mut legacy = crate::Simulator::new(&program, &target);
            legacy
                .run_legacy("vshift", &[MachineValue::Int(16)], &mut legacy_mem)
                .unwrap();
            assert_eq!(mem, legacy_mem, "count {count}");
            for lane in 0..4 {
                let mut b = [0u8; 4];
                b.copy_from_slice(&mem[16 + lane * 4..16 + lane * 4 + 4]);
                assert_eq!(
                    i32::from_le_bytes(b),
                    expect,
                    "count {count}: 1 << ({count} & 63) truncated to 32 bits"
                );
            }
        }
    }

    #[test]
    fn unterminated_blocks_trap_like_the_legacy_walk() {
        let p = MProgram {
            name: "m".into(),
            functions: vec![MFunction {
                name: "f".into(),
                params: vec![],
                blocks: vec![MBlock {
                    insts: vec![MInst::Imm {
                        dst: PReg::int(0),
                        value: 1,
                    }],
                }],
                num_slots: 0,
            }],
        };
        let prepared = PreparedProgram::prepare(&p, &TargetDesc::powerpc()).unwrap();
        let mut sim = PreparedSimulator::new(&prepared);
        let mut mem = vec![0u8; 16];
        let err = sim.run("f", &[], &mut mem).unwrap_err();
        assert_eq!(
            err,
            SimError::Trap("fell off the end of block 0 in f".into())
        );
    }

    /// A counting loop whose back edge is the exact 4-instruction
    /// induction-variable shape the lowering emits (`add tmp,i,s ; mov i,tmp
    /// ; cmp t,i,n ; bnz t`), with a body op so fused and unfused streams
    /// differ in record count but must not differ in anything observable.
    fn counting_loop() -> MProgram {
        let f = MFunction {
            name: "count".into(),
            params: vec![PReg::int(0)], // n
            blocks: vec![
                MBlock {
                    insts: vec![
                        MInst::Imm {
                            dst: PReg::int(1), // i
                            value: 0,
                        },
                        MInst::Imm {
                            dst: PReg::int(2), // step
                            value: 1,
                        },
                        MInst::Imm {
                            dst: PReg::int(3), // acc
                            value: 0,
                        },
                        MInst::Jump { target: 1 },
                    ],
                },
                MBlock {
                    insts: vec![
                        MInst::IntOp {
                            op: AluOp::Add,
                            width: Width::W64,
                            signed: true,
                            dst: PReg::int(3),
                            lhs: PReg::int(3),
                            rhs: PReg::int(1),
                        },
                        MInst::IntOp {
                            op: AluOp::Add,
                            width: Width::W64,
                            signed: true,
                            dst: PReg::int(4), // tmp
                            lhs: PReg::int(1),
                            rhs: PReg::int(2),
                        },
                        MInst::Mov {
                            dst: PReg::int(1),
                            src: PReg::int(4),
                        },
                        MInst::IntCmp {
                            pred: CmpPred::Lt,
                            width: Width::W64,
                            signed: true,
                            dst: PReg::int(5),
                            lhs: PReg::int(1),
                            rhs: PReg::int(0),
                        },
                        MInst::BranchNz {
                            cond: PReg::int(5),
                            then_target: 1,
                            else_target: 2,
                        },
                    ],
                },
                MBlock {
                    insts: vec![MInst::Ret {
                        value: Some(PReg::int(3)),
                    }],
                },
            ],
            num_slots: 0,
        };
        MProgram {
            name: "m".into(),
            functions: vec![f],
        }
    }

    #[test]
    fn hot_stream_records_stay_within_32_bytes() {
        // Backstop for the compile-time asserts: both per-op representations
        // must stay at two records per 64-byte cache line.
        assert!(
            std::mem::size_of::<PInst>() <= 32,
            "PInst grew past 32 bytes"
        );
        assert!(
            std::mem::size_of::<OpRecord>() <= 32,
            "OpRecord grew past 32 bytes"
        );
    }

    #[test]
    fn fusion_is_toggleable_and_bit_identical_on_the_indvar_loop() {
        let p = counting_loop();
        let target = TargetDesc::x86_sse();
        let fused = PreparedProgram::prepare_with(&p, &target, true).unwrap();
        let unfused = PreparedProgram::prepare_with(&p, &target, false).unwrap();
        assert!(fused.fused() && !unfused.fused());
        assert_eq!(fused.fusion_stats().indvar, 1, "back edge must fuse");
        assert_eq!(unfused.fusion_stats().total(), 0);
        // Fewer records with fusion on, same enum stream either way.
        assert!(fused.functions[0].ops.len() < unfused.functions[0].ops.len());
        assert_eq!(fused.functions[0].code, unfused.functions[0].code);

        let args = [MachineValue::Int(10)];
        let mut outs = Vec::new();
        for prog in [&fused, &unfused] {
            let mut mem = vec![0u8; 32];
            let mut sim = PreparedSimulator::new(prog);
            let out = sim.run("count", &args, &mut mem).unwrap();
            outs.push((out, sim.stats()));
            let out = sim.run_metered("count", &args, &mut mem).unwrap();
            outs.push((out, sim.stats()));
        }
        // 0+1+...+9 = 45; all four paths agree on result and full stats.
        assert_eq!(outs[0].0, Some(MachineValue::Int(45)));
        assert!(outs.iter().all(|o| o == &outs[0]), "{outs:?}");
    }

    #[test]
    fn fuel_exhaustion_is_identical_across_fused_unfused_and_metered() {
        // Satellite bugfix pin: `OutOfFuel` must trigger at the identical
        // retired-instruction count whether the back edge runs as one fused
        // record or four metered instructions — i.e. for every fuel value
        // from 0 to "just enough", including ones that land *inside* the
        // fused span, all paths agree on outcome and full stats.
        let p = counting_loop();
        let target = TargetDesc::x86_sse();
        let fused = PreparedProgram::prepare_with(&p, &target, true).unwrap();
        let unfused = PreparedProgram::prepare_with(&p, &target, false).unwrap();
        let args = [MachineValue::Int(4)];

        let total = {
            let mut mem = vec![0u8; 32];
            let mut sim = PreparedSimulator::new(&fused);
            sim.run("count", &args, &mut mem).unwrap();
            sim.stats().instructions
        };
        assert!(total > 8, "loop must straddle several fused back edges");

        for fuel in 0..=total + 1 {
            let mut results = Vec::new();
            for prog in [&fused, &unfused] {
                for metered in [false, true] {
                    let mut mem = vec![0u8; 32];
                    let mut sim = PreparedSimulator::new(prog).with_fuel(fuel);
                    let out = if metered {
                        sim.run_metered("count", &args, &mut mem)
                    } else {
                        sim.run("count", &args, &mut mem)
                    };
                    results.push((out, sim.stats()));
                }
            }
            assert!(
                results.iter().all(|r| r == &results[0]),
                "fuel {fuel}: paths diverged: {results:?}"
            );
            let (out, stats) = &results[0];
            if fuel >= total {
                assert!(out.is_ok(), "fuel {fuel}");
            } else {
                assert_eq!(out, &Err(SimError::OutOfFuel), "fuel {fuel}");
                // Exactly `fuel` source instructions retired before running dry.
                assert_eq!(stats.instructions, fuel, "fuel {fuel}");
            }
        }
    }

    #[test]
    fn disasm_renders_fused_spans_and_region_charges() {
        let p = counting_loop();
        let target = TargetDesc::x86_sse();
        let fused = PreparedProgram::prepare_with(&p, &target, true).unwrap();
        let text = fused.disasm();
        assert!(text.contains("dispatch: threaded"), "{text}");
        assert!(text.contains("fuse.indvar4"), "{text}");
        assert!(text.contains("entry charge"), "{text}");
        let unfused = PreparedProgram::prepare_with(&p, &target, false).unwrap();
        assert!(
            !unfused.disasm().contains("fuse."),
            "no fused spans expected"
        );
    }
}
