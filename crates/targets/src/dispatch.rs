//! Threaded dispatch and macro-op fusion over the prepared stream.
//!
//! The metered interpreter in [`exec`](crate::exec) still pays three costs on
//! every instruction: a fuel check + decrement, a `stats.instructions`
//! increment, and a ~40-arm enum match. This module removes all three at
//! prepare time:
//!
//! * every [`PInst`] is lowered to an [`OpRecord`] — a packed 32-byte operand
//!   record whose first field is the **handler fn pointer** — so the hot loop
//!   is `(op.handler)(op, ctx)` with no discriminant match;
//! * fuel and instruction accounting are hoisted into **per-region charges**:
//!   a region is a maximal straight-line run (from a block entry, or from the
//!   return point of a call, through its first control-flow op inclusive) and
//!   its source-instruction count is prepaid on entry. A region either fully
//!   retires (the prepaid charge is exact), aborts the whole execution via a
//!   trap (a per-op `fixup` table corrects `stats.instructions` on that cold
//!   path), or — when fuel can no longer cover a prepayment — **deopts** to
//!   the metered loop, which then reproduces legacy out-of-fuel timing to the
//!   instruction;
//! * adjacent instructions are **fused into macro-ops** (compare+branch,
//!   load+ALU, and the 3- and 4-instruction induction-variable steps the
//!   lowered indvar shape produces), each charging the exact sum of its
//!   constituents' cycles and fuel so `SimStats` stays bit-identical.
//!
//! Targets whose cost model or vector file cannot be packed into the 32-byte
//! record (see [`costs_fit_u32`]) simply never build a threaded stream and
//! run metered everywhere — a semantics-preserving fallback, not an error.

use crate::desc::CostModel;
use crate::exec::{Frame, FramePool, PInst, PreparedFunction, PreparedProgram, RRef, SlotValue};
use crate::mcode::{AluOp, CmpPred, FpuOp, RedOp, RegClass, Width};
use crate::simulator::{
    alu, check_range, compare, fpu, normalize, read_lane_float, read_lane_int, read_mem,
    write_lane_float, write_lane_int, write_mem, MachineValue, SimError, SimStats,
};

/// A handler executes one packed record against the live execution context.
///
/// Handlers receive the index of their own record (`pc`) and return the
/// **absolute index of the next record to dispatch** in the low 32 bits —
/// never a `Result`, whose by-memory return would cost the hot loop a stack
/// round-trip per record. A fall-through handler returns `pc + 1`, a welded
/// handler `pc + 2` or `pc + 3`, a branch its target region's first record.
/// The high 32 bits are zero on that hot path, so the dispatch loop is one
/// indirect call plus one never-taken branch; the cold outcomes — return,
/// deopt, trap — come back tagged ([`FLOW_RET`] / [`FLOW_DEOPT`] /
/// [`FLOW_ERR`]) with their payload in the low bits, and any error or return
/// value stashed in the context ([`ExecCtx::err`] / [`ExecCtx::ret`]).
pub(crate) type Handler = fn(&OpRecord, &mut ExecCtx<'_>, u32) -> u64;

/// One threaded-dispatch operation: a handler fn pointer plus its operands
/// packed into exactly 32 bytes (two records per cache line). Scalar register
/// indexes and vector byte offsets fit the `u16` fields (guaranteed by the
/// prepare-time guard), region/call-site indexes and baked cycle costs use
/// the `u32` fields, and memory offsets / packed per-kind flags use `imm`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct OpRecord {
    pub(crate) handler: Handler,
    pub(crate) imm: i64,
    pub(crate) a: u16,
    pub(crate) b: u16,
    pub(crate) c: u16,
    pub(crate) d: u16,
    pub(crate) e: u32,
    pub(crate) f: u32,
}

impl PartialEq for OpRecord {
    fn eq(&self, other: &Self) -> bool {
        // Compare handlers by address explicitly (no derived fn-ptr compare).
        std::ptr::eq(self.handler as *const (), other.handler as *const ())
            && self.imm == other.imm
            && (self.a, self.b, self.c, self.d) == (other.a, other.b, other.c, other.d)
            && (self.e, self.f) == (other.e, other.f)
    }
}

/// Cold-outcome tags for the handler return protocol (see [`Handler`]): any
/// value below `FLOW_RET` is the next record index itself.
///
/// The function returned; the value (if any) is in [`ExecCtx::ret`].
pub(crate) const FLOW_RET: u64 = 1 << 32;
/// Fuel cannot cover the next region's prepayment: resume at the enum-stream
/// pc in the low 32 bits on the metered loop.
pub(crate) const FLOW_DEOPT: u64 = 2 << 32;
/// The execution trapped; the error is in [`ExecCtx::err`] and the low 32
/// bits index the faulting record's fixup (a welded handler reports the
/// *constituent* that trapped, not the weld opener).
pub(crate) const FLOW_ERR: u64 = 3 << 32;

/// Result of driving the threaded stream.
pub(crate) enum Threaded {
    /// Ran to completion.
    Done(Option<MachineValue>),
    /// Switched to the metered loop at this enum-stream pc.
    Deopt(u32),
}

/// The statically-known slice of one record's (or one region's) `SimStats`
/// traffic: everything the metered loop would charge that does not depend on
/// runtime values. Summed per region at prepare time and prepaid on region
/// entry, so straight-line handlers touch no accounting at all. The only
/// *dynamic* charges left to handlers are the taken/not-taken cycles of
/// conditional branches and the cycles of calls (whose argv build can trap
/// before the legacy walk charges them).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct StaticStats {
    pub(crate) cycles: u64,
    pub(crate) loads: u32,
    pub(crate) stores: u32,
    pub(crate) spill_stores: u32,
    pub(crate) spill_reloads: u32,
    pub(crate) vector_ops: u32,
    pub(crate) branches: u32,
}

impl StaticStats {
    fn add(&mut self, o: &StaticStats) {
        self.cycles += o.cycles;
        self.loads += o.loads;
        self.stores += o.stores;
        self.spill_stores += o.spill_stores;
        self.spill_reloads += o.spill_reloads;
        self.vector_ops += o.vector_ops;
        self.branches += o.branches;
    }

    /// Apply this prepayment to the live counters (region entry).
    pub(crate) fn charge(&self, stats: &mut SimStats) {
        stats.cycles += self.cycles;
        stats.loads += u64::from(self.loads);
        stats.stores += u64::from(self.stores);
        stats.spill_stores += u64::from(self.spill_stores);
        stats.spill_reloads += u64::from(self.spill_reloads);
        stats.vector_ops += u64::from(self.vector_ops);
        stats.branches += u64::from(self.branches);
    }

    /// Give back the prepaid-but-not-retired portion (trap cold path).
    fn refund(&self, stats: &mut SimStats) {
        stats.cycles -= self.cycles;
        stats.loads -= u64::from(self.loads);
        stats.stores -= u64::from(self.stores);
        stats.spill_stores -= u64::from(self.spill_stores);
        stats.spill_reloads -= u64::from(self.spill_reloads);
        stats.vector_ops -= u64::from(self.vector_ops);
        stats.branches -= u64::from(self.branches);
    }
}

/// Trap-path correction for one record: when its handler errors out, the
/// region was already prepaid in full, so the charges for everything the
/// legacy walk would *not* have retired by that point are given back.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct FixupRec {
    /// `stats.instructions` to give back (the faulting source instruction
    /// itself stays counted, matching the legacy walk — except a `FellOff`
    /// fetch, which was never retired).
    pub(crate) instructions: u32,
    /// Static counter charges to give back.
    pub(crate) stat: StaticStats,
}

/// Where control can land in the threaded stream: each basic block gets one
/// (index == block index), and each call gets one for its return point.
/// `charge` is the region's source-instruction count, prepaid (fuel and
/// `stats.instructions`) when the region is entered; `stat` is the region's
/// static counter sum, prepaid alongside it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct BlockTarget {
    pub(crate) ops_pc: u32,
    pub(crate) enum_pc: u32,
    pub(crate) charge: u32,
    pub(crate) stat: StaticStats,
}

/// A resolved call site referenced by a threaded call record.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum CallSite {
    /// Call to a function in this program.
    Known {
        /// Dense index of the callee.
        callee: usize,
        /// Argument registers.
        args: Box<[RRef]>,
        /// Destination of the returned value, if any.
        ret: Option<RRef>,
        /// Index into `targets` of the after-call region.
        after: u32,
    },
    /// Call to a name that does not exist in the program (runtime error,
    /// like the legacy walk).
    Unknown(Box<str>),
}

/// Per-record provenance: which enum-stream instructions a record covers and
/// whether it is a fused macro-op. Cold data — only read by `disasm` and the
/// trap path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct OpMeta {
    pub(crate) enum_pc: u32,
    pub(crate) len: u8,
    pub(crate) fused: FuseKind,
    /// Records this one's handler retires per dispatch: 0 for a plain
    /// handler, 2 (pair) or 3 (triple) for a weld opener whose handler also
    /// executes the following record(s).
    pub(crate) welded: u8,
}

/// The macro-op fusion catalogue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FuseKind {
    /// Not fused: a 1:1 lowering of one enum instruction.
    None,
    /// `IntCmp` + `BranchNz` on the compare result.
    CmpBranchInt,
    /// `FloatCmp` + `BranchNz` on the compare result.
    CmpBranchFloat,
    /// `LoadInt` + dependent `IntOp` (no `Div`/`Rem`: only the first
    /// constituent of a fused op may trap).
    LoadIntOp,
    /// `LoadFloat` + dependent `FloatOp` (fp ops never trap).
    LoadFloatOp,
    /// `add i,i,s ; cmp t,i,n ; bnz t` — the compact induction-variable step.
    IndVar3,
    /// `add tmp,i,s ; mov i,tmp ; cmp t,i,n ; bnz t` — the shape the
    /// bytecode lowering actually produces for annotated induction variables.
    IndVar4,
}

impl FuseKind {
    /// Short label used by `disasm`.
    pub(crate) fn label(self) -> &'static str {
        match self {
            FuseKind::None => "none",
            FuseKind::CmpBranchInt => "cmp_branch.i",
            FuseKind::CmpBranchFloat => "cmp_branch.f",
            FuseKind::LoadIntOp => "load_op.i",
            FuseKind::LoadFloatOp => "load_op.f",
            FuseKind::IndVar3 => "indvar3",
            FuseKind::IndVar4 => "indvar4",
        }
    }
}

/// Static macro-op fusion counts for one prepared program: how many fused
/// records of each kind the prepare-time pass emitted across all functions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FusionStats {
    /// Fused compare+branch records (integer and floating-point).
    pub cmp_branch: u64,
    /// Fused load+ALU records (integer and floating-point).
    pub load_op: u64,
    /// Fused induction-variable step records (3- and 4-instruction shapes).
    pub indvar: u64,
    /// Adjacent records welded by the second-level pairing sweep: the first
    /// record's handler executes both, halving dispatch round-trips on the
    /// covered stretch. Constituents keep their own records (and trap
    /// fixups), so any two eligible neighbours pair regardless of shape.
    pub pair: u64,
    /// Adjacent-record triples welded by the same sweep (integer kinds only
    /// — the combination table for a third position is kept small), each
    /// retiring three records per dispatch round-trip.
    pub triple: u64,
}

impl FusionStats {
    /// Total fused records of any kind.
    pub fn total(&self) -> u64 {
        self.cmp_branch + self.load_op + self.indvar + self.pair + self.triple
    }
}

/// The live execution state a handler operates on. The frame's register
/// files are split-borrowed as plain slices (one pointer hop per access
/// instead of going through the `Frame` struct and its `Vec`s); `vb` caches
/// the target's vector register width. `ret` and `err` are the cold-path
/// mailboxes for the register-sized [`Flow`] protocol.
pub(crate) struct ExecCtx<'a> {
    pub(crate) prog: &'a PreparedProgram,
    pub(crate) f: &'a PreparedFunction,
    pub(crate) int: &'a mut [i64],
    pub(crate) float: &'a mut [f64],
    pub(crate) vec: &'a mut [u8],
    pub(crate) slots: &'a mut [SlotValue],
    pub(crate) mem: &'a mut [u8],
    pub(crate) pool: &'a mut FramePool,
    pub(crate) fuel: &'a mut u64,
    pub(crate) stats: &'a mut SimStats,
    pub(crate) depth: usize,
    pub(crate) vb: usize,
    pub(crate) ret: Option<MachineValue>,
    pub(crate) err: Option<SimError>,
}

impl ExecCtx<'_> {
    /// Read integer register `i`.
    ///
    /// Every register index reachable from the threaded stream was validated
    /// against the target's register file when the program was prepared (see
    /// [`PreparedProgram::prepare`](crate::PreparedProgram::prepare): "so the
    /// execution loop never re-checks them"), so the bounds check a slice
    /// index would repeat on every access is provably dead; eliding it keeps
    /// a len load and a panic branch out of every handler.
    #[inline(always)]
    fn int_at(&self, i: usize) -> i64 {
        debug_assert!(i < self.int.len());
        // SAFETY: `i` was validated against the register file at prepare
        // time (see the doc comment).
        unsafe { *self.int.get_unchecked(i) }
    }

    /// Write integer register `i` (same prepare-time validation as
    /// [`ExecCtx::int_at`]).
    #[inline(always)]
    fn set_int(&mut self, i: usize, v: i64) {
        debug_assert!(i < self.int.len());
        // SAFETY: `i` was validated against the register file at prepare
        // time (see `ExecCtx::int_at`).
        unsafe { *self.int.get_unchecked_mut(i) = v };
    }

    /// Read float register `i` (same prepare-time validation as
    /// [`ExecCtx::int_at`]).
    #[inline(always)]
    fn float_at(&self, i: usize) -> f64 {
        debug_assert!(i < self.float.len());
        // SAFETY: `i` was validated against the register file at prepare
        // time (see `ExecCtx::int_at`).
        unsafe { *self.float.get_unchecked(i) }
    }

    /// Write float register `i` (same prepare-time validation as
    /// [`ExecCtx::int_at`]).
    #[inline(always)]
    fn set_float(&mut self, i: usize, v: f64) {
        debug_assert!(i < self.float.len());
        // SAFETY: `i` was validated against the register file at prepare
        // time (see `ExecCtx::int_at`).
        unsafe { *self.float.get_unchecked_mut(i) = v };
    }
}

/// Stash `e` and signal [`FLOW_ERR`] at the failing record — the cold half
/// of the handler protocol, kept out of line so handler bodies stay small.
#[cold]
#[inline(never)]
fn fail(cx: &mut ExecCtx<'_>, e: SimError, pc: u32) -> u64 {
    cx.err = Some(e);
    FLOW_ERR | u64::from(pc)
}

/// `?` for handlers: unwrap or stash the error and bail with [`FLOW_ERR`].
macro_rules! tryh {
    ($cx:expr, $pc:expr, $e:expr) => {
        match $e {
            Ok(v) => v,
            Err(e) => return fail($cx, e, $pc),
        }
    };
}

/// Cycle costs are baked into `u32` record fields, sometimes as sums of up to
/// four constituents; cap each cost well below `u32::MAX` so no packed sum
/// can overflow. Every shipped [`TargetDesc`](crate::TargetDesc) preset uses
/// single- to low-double-digit costs; this guard only excludes hand-built
/// pathological models, which then run metered (exact, just slower).
pub(crate) fn costs_fit_u32(c: &CostModel) -> bool {
    let limit = u64::from(u32::MAX / 4);
    [
        c.int_op,
        c.int_mul,
        c.int_div,
        c.fp_add,
        c.fp_mul,
        c.fp_div,
        c.load,
        c.store,
        c.mov,
        c.convert,
        c.branch_taken,
        c.branch_not_taken,
        c.vec_op,
        c.vec_load,
        c.vec_store,
        c.vec_reduce,
        c.call,
        c.spill_store,
        c.spill_load,
    ]
    .iter()
    .all(|&v| v <= limit)
}

/// Enter region `tidx`: prepay its fuel/instruction charge and its static
/// counter sum, then jump to its first record — or deopt to the metered loop
/// at its enum pc when the remaining fuel cannot cover the prepayment (the
/// metered loop then raises `OutOfFuel` at exactly the instruction the
/// legacy walk would, with nothing from this region charged yet).
#[inline(always)]
fn enter(cx: &mut ExecCtx<'_>, tidx: u32) -> u64 {
    let t = &cx.f.targets[tidx as usize];
    // Cooperative cancellation is polled here, at region entry, because it
    // is the one boundary every loop iteration crosses. Deopt *uncharged*
    // to the metered loop (whose entry check raises `Cancelled`): going
    // through `FLOW_ERR` instead would trigger a fixup refund for a region
    // that was never charged.
    if cx.pool.cancel_requested() {
        return FLOW_DEOPT | u64::from(t.enum_pc);
    }
    let charge = u64::from(t.charge);
    if *cx.fuel >= charge {
        *cx.fuel -= charge;
        cx.stats.instructions += charge;
        t.stat.charge(cx.stats);
        u64::from(t.ops_pc)
    } else {
        FLOW_DEOPT | u64::from(t.enum_pc)
    }
}

/// Drive the threaded stream from record `entry` (whose region the caller
/// has already charged). On a handler error the prepaid instruction count is
/// corrected from the per-op fixup table before the error propagates.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_ops(
    prog: &PreparedProgram,
    f: &PreparedFunction,
    frame: &mut Frame,
    mem: &mut [u8],
    pool: &mut FramePool,
    fuel: &mut u64,
    depth: usize,
    stats: &mut SimStats,
    entry: u32,
) -> Result<Threaded, SimError> {
    let ops = &f.ops;
    let mut cx = ExecCtx {
        prog,
        f,
        int: frame.int.as_mut_slice(),
        float: frame.float.as_mut_slice(),
        vec: frame.vec.as_mut_slice(),
        slots: frame.slots.as_mut_slice(),
        mem,
        pool,
        fuel,
        stats,
        depth,
        vb: prog.vector_bytes,
        ret: None,
        err: None,
    };
    let mut pc = entry as usize;
    loop {
        debug_assert!(pc < ops.len());
        // SAFETY: `entry`, every branch target and every fall-through pc a
        // handler returns are in bounds: region entries come from
        // `build_threaded`, and sequential fall-through always reaches a
        // region-closing control record (every block ends in one — `FellOff`
        // is synthesized where code falls off) before `pc` can pass the end
        // of the stream.
        let op = unsafe { ops.get_unchecked(pc) };
        let r = (op.handler)(op, &mut cx, pc as u32);
        if r < FLOW_RET {
            pc = r as usize;
            continue;
        }
        return match r & !0xffff_ffff {
            FLOW_RET => Ok(Threaded::Done(cx.ret.take())),
            FLOW_DEOPT => Ok(Threaded::Deopt(r as u32)),
            _ => {
                // The region was prepaid in full; give back the charges for
                // everything the legacy walk would not have retired by the
                // faulting instruction (cold path). The low bits index the
                // faulting record — a welded handler reports the constituent
                // that trapped, whose fixup is the exact correction.
                let fx = &f.fixup[r as u32 as usize];
                cx.stats.instructions -= u64::from(fx.instructions);
                fx.stat.refund(cx.stats);
                Err(cx.err.take().expect("failing handler set an error"))
            }
        };
    }
}

// ---------------------------------------------------------------------------
// Flag packing helpers: operand shapes (width / signedness / opcode) are
// packed into the record's spare `u16`s (or `imm` for fused ops) at prepare
// time and decoded branch-free-ly by the handlers.
// ---------------------------------------------------------------------------

fn wbits(w: Width) -> u16 {
    match w {
        Width::W8 => 0,
        Width::W16 => 1,
        Width::W32 => 2,
        Width::W64 => 3,
    }
}

fn wfrom(bits: u16) -> Width {
    match bits & 3 {
        0 => Width::W8,
        1 => Width::W16,
        2 => Width::W32,
        _ => Width::W64,
    }
}

fn alu_bits(op: AluOp) -> u16 {
    match op {
        AluOp::Add => 0,
        AluOp::Sub => 1,
        AluOp::Mul => 2,
        AluOp::Div => 3,
        AluOp::Rem => 4,
        AluOp::And => 5,
        AluOp::Or => 6,
        AluOp::Xor => 7,
        AluOp::Shl => 8,
        AluOp::Shr => 9,
        AluOp::Min => 10,
        AluOp::Max => 11,
    }
}

fn alu_from(bits: u16) -> AluOp {
    match bits & 15 {
        0 => AluOp::Add,
        1 => AluOp::Sub,
        2 => AluOp::Mul,
        3 => AluOp::Div,
        4 => AluOp::Rem,
        5 => AluOp::And,
        6 => AluOp::Or,
        7 => AluOp::Xor,
        8 => AluOp::Shl,
        9 => AluOp::Shr,
        10 => AluOp::Min,
        _ => AluOp::Max,
    }
}

fn fpu_bits(op: FpuOp) -> u16 {
    match op {
        FpuOp::Add => 0,
        FpuOp::Sub => 1,
        FpuOp::Mul => 2,
        FpuOp::Div => 3,
        FpuOp::Min => 4,
        FpuOp::Max => 5,
    }
}

fn fpu_from(bits: u16) -> FpuOp {
    match bits & 7 {
        0 => FpuOp::Add,
        1 => FpuOp::Sub,
        2 => FpuOp::Mul,
        3 => FpuOp::Div,
        4 => FpuOp::Min,
        _ => FpuOp::Max,
    }
}

fn pred_bits(p: CmpPred) -> u16 {
    match p {
        CmpPred::Eq => 0,
        CmpPred::Ne => 1,
        CmpPred::Lt => 2,
        CmpPred::Le => 3,
        CmpPred::Gt => 4,
        CmpPred::Ge => 5,
    }
}

fn pred_from(bits: u16) -> CmpPred {
    match bits & 7 {
        0 => CmpPred::Eq,
        1 => CmpPred::Ne,
        2 => CmpPred::Lt,
        3 => CmpPred::Le,
        4 => CmpPred::Gt,
        _ => CmpPred::Ge,
    }
}

fn red_bits(op: RedOp) -> u16 {
    match op {
        RedOp::Add => 0,
        RedOp::Min => 1,
        RedOp::Max => 2,
    }
}

fn red_from(bits: u16) -> RedOp {
    match bits & 3 {
        0 => RedOp::Add,
        1 => RedOp::Min,
        _ => RedOp::Max,
    }
}

/// Integer compare exactly as the metered loop performs it.
#[inline(always)]
fn int_compare(pred: CmpPred, width: Width, signed: bool, a: i64, b: i64) -> i64 {
    let a = normalize(width, signed, a);
    let b = normalize(width, signed, b);
    if signed {
        compare(pred, a, b)
    } else {
        compare(pred, a as u64, b as u64)
    }
}

/// Float compare exactly as the metered loop performs it (NaN ⇒ `Ne`).
#[inline(always)]
fn float_compare(pred: CmpPred, double: bool, a: f64, b: f64) -> i64 {
    let (a, b) = if double {
        (a, b)
    } else {
        (f64::from(a as f32), f64::from(b as f32))
    };
    if a.partial_cmp(&b).is_none() {
        i64::from(pred == CmpPred::Ne)
    } else {
        compare(pred, a, b)
    }
}

// ---------------------------------------------------------------------------
// Handlers. Each replicates the effect (including evaluation order and stat
// updates) of the matching metered-loop arm; fused handlers replicate the
// exact sequence of their constituents — including writes to intermediate
// destinations, which later code may read.
// ---------------------------------------------------------------------------

fn h_imm(op: &OpRecord, cx: &mut ExecCtx<'_>, pc: u32) -> u64 {
    cx.set_int(op.a as usize, op.imm);
    u64::from(pc) + 1
}

fn h_fimm(op: &OpRecord, cx: &mut ExecCtx<'_>, pc: u32) -> u64 {
    cx.set_float(op.a as usize, f64::from_bits(op.imm as u64));
    u64::from(pc) + 1
}

fn h_mov_int(op: &OpRecord, cx: &mut ExecCtx<'_>, pc: u32) -> u64 {
    cx.set_int(op.a as usize, cx.int_at(op.b as usize));
    u64::from(pc) + 1
}

fn h_mov_float(op: &OpRecord, cx: &mut ExecCtx<'_>, pc: u32) -> u64 {
    cx.set_float(op.a as usize, cx.float_at(op.b as usize));
    u64::from(pc) + 1
}

fn h_mov_vec(op: &OpRecord, cx: &mut ExecCtx<'_>, pc: u32) -> u64 {
    let (d, s, vb) = (op.a as usize, op.b as usize, cx.vb);
    cx.vec.copy_within(s..s + vb, d);
    u64::from(pc) + 1
}

fn h_int_op(op: &OpRecord, cx: &mut ExecCtx<'_>, pc: u32) -> u64 {
    let a = cx.int_at(op.b as usize);
    let b = cx.int_at(op.c as usize);
    let (alu_op, width, signed) = (alu_from(op.d), wfrom(op.d >> 4), op.d & (1 << 6) != 0);
    let v = tryh!(cx, pc, alu(alu_op, width, signed, a, b));
    cx.set_int(op.a as usize, v);
    u64::from(pc) + 1
}

fn h_float_op(op: &OpRecord, cx: &mut ExecCtx<'_>, pc: u32) -> u64 {
    let a = cx.float_at(op.b as usize);
    let b = cx.float_at(op.c as usize);
    let (fpu_op, double) = (fpu_from(op.d), op.d & (1 << 3) != 0);
    cx.set_float(op.a as usize, fpu(fpu_op, double, a, b));
    u64::from(pc) + 1
}

fn h_int_neg(op: &OpRecord, cx: &mut ExecCtx<'_>, pc: u32) -> u64 {
    let v = cx.int_at(op.b as usize);
    cx.set_int(
        op.a as usize,
        normalize(wfrom(op.d), true, v.wrapping_neg()),
    );
    u64::from(pc) + 1
}

fn h_int_not(op: &OpRecord, cx: &mut ExecCtx<'_>, pc: u32) -> u64 {
    let v = cx.int_at(op.b as usize);
    cx.set_int(op.a as usize, normalize(wfrom(op.d), false, !v));
    u64::from(pc) + 1
}

fn h_float_neg(op: &OpRecord, cx: &mut ExecCtx<'_>, pc: u32) -> u64 {
    let v = cx.float_at(op.b as usize);
    cx.set_float(
        op.a as usize,
        if op.d != 0 {
            -v
        } else {
            f64::from(-(v as f32))
        },
    );
    u64::from(pc) + 1
}

fn h_int_cmp(op: &OpRecord, cx: &mut ExecCtx<'_>, pc: u32) -> u64 {
    let a = cx.int_at(op.b as usize);
    let b = cx.int_at(op.c as usize);
    let (pred, width, signed) = (pred_from(op.d), wfrom(op.d >> 3), op.d & (1 << 5) != 0);
    cx.set_int(op.a as usize, int_compare(pred, width, signed, a, b));
    u64::from(pc) + 1
}

fn h_float_cmp(op: &OpRecord, cx: &mut ExecCtx<'_>, pc: u32) -> u64 {
    let a = cx.float_at(op.b as usize);
    let b = cx.float_at(op.c as usize);
    let (pred, double) = (pred_from(op.d), op.d & (1 << 3) != 0);
    cx.set_int(op.a as usize, float_compare(pred, double, a, b));
    u64::from(pc) + 1
}

fn h_select_int(op: &OpRecord, cx: &mut ExecCtx<'_>, pc: u32) -> u64 {
    let chosen = if cx.int_at(op.b as usize) != 0 {
        op.c
    } else {
        op.d
    };
    cx.set_int(op.a as usize, cx.int_at(chosen as usize));
    u64::from(pc) + 1
}

fn h_select_float(op: &OpRecord, cx: &mut ExecCtx<'_>, pc: u32) -> u64 {
    let chosen = if cx.int_at(op.b as usize) != 0 {
        op.c
    } else {
        op.d
    };
    cx.set_float(op.a as usize, cx.float_at(chosen as usize));
    u64::from(pc) + 1
}

fn h_select_vec(op: &OpRecord, cx: &mut ExecCtx<'_>, pc: u32) -> u64 {
    let chosen = if cx.int_at(op.b as usize) != 0 {
        op.c
    } else {
        op.d
    } as usize;
    let vb = cx.vb;
    cx.vec.copy_within(chosen..chosen + vb, op.a as usize);
    u64::from(pc) + 1
}

fn h_int_to_float(op: &OpRecord, cx: &mut ExecCtx<'_>, pc: u32) -> u64 {
    let v = cx.int_at(op.b as usize);
    let (signed, double) = (op.d & 1 != 0, op.d & 2 != 0);
    let x = if signed { v as f64 } else { v as u64 as f64 };
    cx.set_float(op.a as usize, if double { x } else { f64::from(x as f32) });
    u64::from(pc) + 1
}

fn h_float_to_int(op: &OpRecord, cx: &mut ExecCtx<'_>, pc: u32) -> u64 {
    let v = cx.float_at(op.b as usize);
    cx.set_int(
        op.a as usize,
        normalize(wfrom(op.d), op.d & (1 << 2) != 0, v as i64),
    );
    u64::from(pc) + 1
}

fn h_float_cvt(op: &OpRecord, cx: &mut ExecCtx<'_>, pc: u32) -> u64 {
    let v = cx.float_at(op.b as usize);
    cx.set_float(
        op.a as usize,
        if op.d != 0 { v } else { f64::from(v as f32) },
    );
    u64::from(pc) + 1
}

fn h_int_resize(op: &OpRecord, cx: &mut ExecCtx<'_>, pc: u32) -> u64 {
    let v = cx.int_at(op.b as usize);
    cx.set_int(
        op.a as usize,
        normalize(wfrom(op.d), op.d & (1 << 2) != 0, v),
    );
    u64::from(pc) + 1
}

fn h_load_int(op: &OpRecord, cx: &mut ExecCtx<'_>, pc: u32) -> u64 {
    let addr = cx.int_at(op.b as usize).wrapping_add(op.imm);
    let (width, signed) = (wfrom(op.d), op.d & (1 << 2) != 0);
    let raw = tryh!(cx, pc, read_mem(cx.mem, addr, width.bytes()));
    cx.set_int(op.a as usize, normalize(width, signed, raw as i64));
    u64::from(pc) + 1
}

fn h_load_float(op: &OpRecord, cx: &mut ExecCtx<'_>, pc: u32) -> u64 {
    let addr = cx.int_at(op.b as usize).wrapping_add(op.imm);
    let width = wfrom(op.d);
    let raw = tryh!(cx, pc, read_mem(cx.mem, addr, width.bytes()));
    cx.set_float(
        op.a as usize,
        match width {
            Width::W32 => f64::from(f32::from_bits(raw as u32)),
            _ => f64::from_bits(raw),
        },
    );
    u64::from(pc) + 1
}

fn h_store_int(op: &OpRecord, cx: &mut ExecCtx<'_>, pc: u32) -> u64 {
    let addr = cx.int_at(op.b as usize).wrapping_add(op.imm);
    let width = wfrom(op.d);
    tryh!(
        cx,
        pc,
        write_mem(cx.mem, addr, width.bytes(), cx.int_at(op.a as usize) as u64)
    );
    u64::from(pc) + 1
}

fn h_store_float(op: &OpRecord, cx: &mut ExecCtx<'_>, pc: u32) -> u64 {
    let addr = cx.int_at(op.b as usize).wrapping_add(op.imm);
    let width = wfrom(op.d);
    let v = cx.float_at(op.a as usize);
    let raw = match width {
        Width::W32 => u64::from((v as f32).to_bits()),
        _ => v.to_bits(),
    };
    tryh!(cx, pc, write_mem(cx.mem, addr, width.bytes(), raw));
    u64::from(pc) + 1
}

fn h_vec_load(op: &OpRecord, cx: &mut ExecCtx<'_>, pc: u32) -> u64 {
    let addr = cx.int_at(op.b as usize).wrapping_add(op.imm);
    let vb = cx.vb;
    tryh!(cx, pc, check_range(cx.mem, addr, vb as u64));
    let d = op.a as usize;
    cx.vec[d..d + vb].copy_from_slice(&cx.mem[addr as usize..addr as usize + vb]);
    u64::from(pc) + 1
}

fn h_vec_store(op: &OpRecord, cx: &mut ExecCtx<'_>, pc: u32) -> u64 {
    let addr = cx.int_at(op.b as usize).wrapping_add(op.imm);
    let vb = cx.vb;
    tryh!(cx, pc, check_range(cx.mem, addr, vb as u64));
    let s = op.a as usize;
    cx.mem[addr as usize..addr as usize + vb].copy_from_slice(&cx.vec[s..s + vb]);
    u64::from(pc) + 1
}

fn h_vec_splat_int(op: &OpRecord, cx: &mut ExecCtx<'_>, pc: u32) -> u64 {
    let v = cx.int_at(op.b as usize);
    let (d, vb, elem) = (op.a as usize, cx.vb, wfrom(op.d));
    let reg = &mut cx.vec[d..d + vb];
    for lane in 0..op.e as usize {
        write_lane_int(reg, lane, elem, v);
    }
    u64::from(pc) + 1
}

fn h_vec_splat_float(op: &OpRecord, cx: &mut ExecCtx<'_>, pc: u32) -> u64 {
    let v = cx.float_at(op.b as usize);
    let (d, vb, elem) = (op.a as usize, cx.vb, wfrom(op.d));
    let reg = &mut cx.vec[d..d + vb];
    for lane in 0..op.e as usize {
        write_lane_float(reg, lane, elem, v);
    }
    u64::from(pc) + 1
}

fn h_vec_int_op(op: &OpRecord, cx: &mut ExecCtx<'_>, pc: u32) -> u64 {
    let (d, l, r, vb) = (op.a as usize, op.b as usize, op.c as usize, cx.vb);
    let (alu_op, elem, signed) = (alu_from(op.d), wfrom(op.d >> 4), op.d & (1 << 6) != 0);
    for lane in 0..op.e as usize {
        let x = read_lane_int(&cx.vec[l..l + vb], lane, elem, signed);
        let y = read_lane_int(&cx.vec[r..r + vb], lane, elem, signed);
        let v = tryh!(cx, pc, alu(alu_op, elem, signed, x, y));
        write_lane_int(&mut cx.vec[d..d + vb], lane, elem, v);
    }
    u64::from(pc) + 1
}

fn h_vec_float_op(op: &OpRecord, cx: &mut ExecCtx<'_>, pc: u32) -> u64 {
    let (d, l, r, vb) = (op.a as usize, op.b as usize, op.c as usize, cx.vb);
    let (fpu_op, elem, double) = (fpu_from(op.d), wfrom(op.d >> 3), op.d & (1 << 5) != 0);
    for lane in 0..op.e as usize {
        let x = read_lane_float(&cx.vec[l..l + vb], lane, elem);
        let y = read_lane_float(&cx.vec[r..r + vb], lane, elem);
        let v = fpu(fpu_op, double, x, y);
        write_lane_float(&mut cx.vec[d..d + vb], lane, elem, v);
    }
    u64::from(pc) + 1
}

fn h_vec_reduce_int(op: &OpRecord, cx: &mut ExecCtx<'_>, pc: u32) -> u64 {
    let (s, vb) = (op.b as usize, cx.vb);
    let (red, elem, signed) = (red_from(op.d), wfrom(op.d >> 2), op.d & (1 << 4) != 0);
    let reg = &cx.vec[s..s + vb];
    let mut acc = read_lane_int(reg, 0, elem, signed);
    for lane in 1..op.e as usize {
        let x = read_lane_int(reg, lane, elem, signed);
        acc = tryh!(
            cx,
            pc,
            match red {
                RedOp::Add => alu(AluOp::Add, elem, signed, acc, x),
                RedOp::Min => alu(AluOp::Min, elem, signed, acc, x),
                RedOp::Max => alu(AluOp::Max, elem, signed, acc, x),
            }
        );
    }
    cx.set_int(op.a as usize, acc);
    u64::from(pc) + 1
}

fn h_vec_reduce_float(op: &OpRecord, cx: &mut ExecCtx<'_>, pc: u32) -> u64 {
    let (s, vb) = (op.b as usize, cx.vb);
    let (red, elem) = (red_from(op.d), wfrom(op.d >> 2));
    let double = elem == Width::W64;
    let reg = &cx.vec[s..s + vb];
    let mut acc = read_lane_float(reg, 0, elem);
    for lane in 1..op.e as usize {
        let x = read_lane_float(reg, lane, elem);
        acc = match red {
            RedOp::Add => fpu(FpuOp::Add, double, acc, x),
            RedOp::Min => fpu(FpuOp::Min, double, acc, x),
            RedOp::Max => fpu(FpuOp::Max, double, acc, x),
        };
    }
    cx.set_float(op.a as usize, acc);
    u64::from(pc) + 1
}

fn h_spill_int(op: &OpRecord, cx: &mut ExecCtx<'_>, pc: u32) -> u64 {
    let value = SlotValue::Int(cx.int_at(op.a as usize));
    tryh!(cx, pc, spill_into(cx, op.e, value));
    u64::from(pc) + 1
}

fn h_spill_float(op: &OpRecord, cx: &mut ExecCtx<'_>, pc: u32) -> u64 {
    let value = SlotValue::Float(cx.float_at(op.a as usize));
    tryh!(cx, pc, spill_into(cx, op.e, value));
    u64::from(pc) + 1
}

fn h_spill_vec(op: &OpRecord, cx: &mut ExecCtx<'_>, pc: u32) -> u64 {
    let (s, vb) = (op.a as usize, cx.vb);
    let value = SlotValue::Vec(cx.vec[s..s + vb].to_vec());
    tryh!(cx, pc, spill_into(cx, op.e, value));
    u64::from(pc) + 1
}

#[cold]
#[inline(never)]
fn bad_spill_slot(slot: u32) -> SimError {
    SimError::Trap(format!("spill to invalid slot {slot}"))
}

fn spill_into(cx: &mut ExecCtx<'_>, slot: u32, value: SlotValue) -> Result<(), SimError> {
    match cx.slots.get_mut(slot as usize) {
        Some(s) => {
            *s = value;
            Ok(())
        }
        None => Err(bad_spill_slot(slot)),
    }
}

fn h_reload_int(op: &OpRecord, cx: &mut ExecCtx<'_>, pc: u32) -> u64 {
    match cx.slots.get(op.e as usize) {
        Some(SlotValue::Int(v)) => {
            let v = *v;
            cx.set_int(op.a as usize, v);
        }
        other => {
            let e = reload_error(other, op.e);
            return fail(cx, e, pc);
        }
    }
    u64::from(pc) + 1
}

fn h_reload_float(op: &OpRecord, cx: &mut ExecCtx<'_>, pc: u32) -> u64 {
    match cx.slots.get(op.e as usize) {
        Some(SlotValue::Float(v)) => {
            let v = *v;
            cx.set_float(op.a as usize, v);
        }
        other => {
            let e = reload_error(other, op.e);
            return fail(cx, e, pc);
        }
    }
    u64::from(pc) + 1
}

fn h_reload_vec(op: &OpRecord, cx: &mut ExecCtx<'_>, pc: u32) -> u64 {
    let (d, vb) = (op.a as usize, cx.vb);
    match cx.slots.get(op.e as usize) {
        Some(SlotValue::Vec(v)) => {
            // `slots` and `vec` are disjoint ExecCtx fields, so the borrows
            // split cleanly here.
            cx.vec[d..d + vb].copy_from_slice(v);
        }
        other => {
            let e = reload_error(other, op.e);
            return fail(cx, e, pc);
        }
    }
    u64::from(pc) + 1
}

#[cold]
#[inline(never)]
fn reload_error(value: Option<&SlotValue>, slot: u32) -> SimError {
    match value {
        None => SimError::Trap(format!("reload from invalid slot {slot}")),
        Some(SlotValue::Empty) => SimError::Trap(format!("reload of uninitialized slot {slot}")),
        Some(_) => SimError::Trap(format!("reload class mismatch for slot {slot}")),
    }
}

fn h_jump(op: &OpRecord, cx: &mut ExecCtx<'_>, _pc: u32) -> u64 {
    // Fully static: the jump's cycles and branch count ride the region
    // prepayment; only the next region's entry charge is dynamic.
    enter(cx, op.e)
}

fn h_branch_nz(op: &OpRecord, cx: &mut ExecCtx<'_>, _pc: u32) -> u64 {
    let taken = cx.int_at(op.a as usize) != 0;
    // imm packs the taken (low 32) and not-taken (high 32) cycle charges.
    let charges = op.imm as u64;
    let (target, cycles) = if taken {
        (op.e, charges & 0xffff_ffff)
    } else {
        (op.f, charges >> 32)
    };
    cx.stats.cycles += cycles;
    enter(cx, target)
}

fn h_call(op: &OpRecord, cx: &mut ExecCtx<'_>, pc: u32) -> u64 {
    let f = cx.f;
    let CallSite::Known {
        callee,
        args,
        ret,
        after,
    } = &f.calls[op.e as usize]
    else {
        unreachable!("call record must reference a known call site")
    };
    let mut argv = cx.pool.take_argv();
    for &(class, idx) in args.iter() {
        argv.push(match class {
            RegClass::Int => MachineValue::Int(cx.int_at(idx)),
            RegClass::Float => MachineValue::Float(cx.float_at(idx)),
            RegClass::Vec => {
                return fail(
                    cx,
                    SimError::Trap("vector call arguments are unsupported".into()),
                    pc,
                );
            }
        });
    }
    cx.stats.cycles += u64::from(op.f);
    // The threaded stream is only built under flat timing (region prepayment
    // sums static charges), so the nested call charges flat too.
    let out = tryh!(
        cx,
        pc,
        cx.prog.exec(
            *callee,
            &argv,
            cx.mem,
            cx.pool,
            cx.fuel,
            cx.depth + 1,
            cx.stats,
            &mut crate::timing::FlatCost,
        )
    );
    cx.pool.give_argv(argv);
    if let Some((class, idx)) = *ret {
        match (class, out) {
            (RegClass::Int, Some(MachineValue::Int(v))) => cx.set_int(idx, v),
            (RegClass::Float, Some(MachineValue::Float(v))) => cx.set_float(idx, v),
            _ => {
                let e = SimError::Trap(format!(
                    "call to {} did not produce the expected value",
                    cx.prog.functions[*callee].name
                ));
                return fail(cx, e, pc);
            }
        }
    }
    enter(cx, *after)
}

fn h_call_unknown(op: &OpRecord, cx: &mut ExecCtx<'_>, pc: u32) -> u64 {
    let f = cx.f;
    let CallSite::Unknown(name) = &f.calls[op.e as usize] else {
        unreachable!("unknown-call record must reference an unknown call site")
    };
    fail(cx, SimError::UnknownFunction(name.to_string()), pc)
}

fn h_ret_none(_op: &OpRecord, cx: &mut ExecCtx<'_>, _pc: u32) -> u64 {
    cx.ret = None;
    FLOW_RET
}

fn h_ret_int(op: &OpRecord, cx: &mut ExecCtx<'_>, _pc: u32) -> u64 {
    cx.ret = Some(MachineValue::Int(cx.int_at(op.a as usize)));
    FLOW_RET
}

fn h_ret_float(op: &OpRecord, cx: &mut ExecCtx<'_>, _pc: u32) -> u64 {
    cx.ret = Some(MachineValue::Float(cx.float_at(op.a as usize)));
    FLOW_RET
}

fn h_ret_vec(_op: &OpRecord, cx: &mut ExecCtx<'_>, pc: u32) -> u64 {
    // The legacy walk charges the move *before* noticing the bad class, so
    // the statically prepaid cycles stand (this record's fixup refunds
    // nothing for them).
    fail(
        cx,
        SimError::Trap("vector return values are unsupported".into()),
        pc,
    )
}

fn h_fell_off(op: &OpRecord, cx: &mut ExecCtx<'_>, pc: u32) -> u64 {
    // Fuel stays consumed but the failed fetch is not a retired instruction;
    // the fixup table (always 1 for this record) uncounts it.
    let e = SimError::Trap(format!(
        "fell off the end of block {} in {}",
        op.e, cx.f.name
    ));
    fail(cx, e, pc)
}

// --- fused macro-ops -------------------------------------------------------

fn h_cmp_branch_int(op: &OpRecord, cx: &mut ExecCtx<'_>, _pc: u32) -> u64 {
    let a = cx.int_at(op.b as usize);
    let b = cx.int_at(op.c as usize);
    let (pred, width, signed) = (pred_from(op.d), wfrom(op.d >> 3), op.d & (1 << 5) != 0);
    let t = int_compare(pred, width, signed, a, b);
    // The compare destination is still written: code on either branch path
    // (or a later block) may read it.
    cx.set_int(op.a as usize, t);
    let charges = op.imm as u64;
    let (target, cycles) = if t != 0 {
        (op.e, charges & 0xffff_ffff)
    } else {
        (op.f, charges >> 32)
    };
    cx.stats.cycles += cycles;
    enter(cx, target)
}

fn h_cmp_branch_float(op: &OpRecord, cx: &mut ExecCtx<'_>, _pc: u32) -> u64 {
    let a = cx.float_at(op.b as usize);
    let b = cx.float_at(op.c as usize);
    let (pred, double) = (pred_from(op.d), op.d & (1 << 3) != 0);
    let t = float_compare(pred, double, a, b);
    cx.set_int(op.a as usize, t);
    let charges = op.imm as u64;
    let (target, cycles) = if t != 0 {
        (op.e, charges & 0xffff_ffff)
    } else {
        (op.f, charges >> 32)
    };
    cx.stats.cycles += cycles;
    enter(cx, target)
}

fn h_load_int_op(op: &OpRecord, cx: &mut ExecCtx<'_>, pc: u32) -> u64 {
    // Constituent 1: the load (the only part that can trap).
    let addr = cx.int_at(op.b as usize).wrapping_add(op.imm);
    let flags = (op.e >> 16) as u16;
    let (lw, ls) = (wfrom(flags), flags & (1 << 2) != 0);
    let raw = tryh!(cx, pc, read_mem(cx.mem, addr, lw.bytes()));
    let loaded = normalize(lw, ls, raw as i64);
    cx.set_int(op.a as usize, loaded);
    // Constituent 2: the ALU op, reading its inputs *after* the load wrote
    // its destination (so `lhs`/`rhs` may be the loaded register).
    let (aop, aw, asg) = (
        alu_from(flags >> 3),
        wfrom(flags >> 7),
        flags & (1 << 9) != 0,
    );
    let x = cx.int_at(op.c as usize);
    let y = cx.int_at(op.d as usize);
    let v = tryh!(cx, pc, alu(aop, aw, asg, x, y));
    cx.set_int((op.e & 0xffff) as usize, v);
    u64::from(pc) + 1
}

fn h_load_float_op(op: &OpRecord, cx: &mut ExecCtx<'_>, pc: u32) -> u64 {
    let addr = cx.int_at(op.b as usize).wrapping_add(op.imm);
    let flags = (op.e >> 16) as u16;
    let lw = wfrom(flags);
    let raw = tryh!(cx, pc, read_mem(cx.mem, addr, lw.bytes()));
    cx.set_float(
        op.a as usize,
        match lw {
            Width::W32 => f64::from(f32::from_bits(raw as u32)),
            _ => f64::from_bits(raw),
        },
    );
    let (fop, double) = (fpu_from(flags >> 2), flags & (1 << 5) != 0);
    let x = cx.float_at(op.c as usize);
    let y = cx.float_at(op.d as usize);
    cx.set_float((op.e & 0xffff) as usize, fpu(fop, double, x, y));
    u64::from(pc) + 1
}

fn h_indvar3(op: &OpRecord, cx: &mut ExecCtx<'_>, pc: u32) -> u64 {
    let flags = op.imm as u16;
    let (aw, asg) = (wfrom(flags), flags & (1 << 2) != 0);
    let (pred, cw, csg) = (
        pred_from(flags >> 3),
        wfrom(flags >> 6),
        flags & (1 << 8) != 0,
    );
    // add i, i, s
    let iv = cx.int_at(op.a as usize);
    let sv = cx.int_at(op.b as usize);
    let stepped = tryh!(cx, pc, alu(AluOp::Add, aw, asg, iv, sv));
    cx.set_int(op.a as usize, stepped);
    // cmp t, i, n  (reads happen after the add retires, like the metered loop)
    let nv = cx.int_at(op.c as usize);
    let t = int_compare(pred, cw, csg, stepped, nv);
    cx.set_int(op.d as usize, t);
    // bnz t
    let cost = &cx.prog.cost;
    cx.stats.cycles += if t != 0 {
        cost.branch_taken
    } else {
        cost.branch_not_taken
    };
    enter(cx, if t != 0 { op.e } else { op.f })
}

fn h_indvar4(op: &OpRecord, cx: &mut ExecCtx<'_>, pc: u32) -> u64 {
    let flags = (op.imm >> 16) as u16;
    let (aw, asg) = (wfrom(flags), flags & (1 << 2) != 0);
    let (pred, cw, csg) = (
        pred_from(flags >> 3),
        wfrom(flags >> 6),
        flags & (1 << 8) != 0,
    );
    let t_reg = (op.imm & 0xffff) as usize;
    // add tmp, i, s
    let iv = cx.int_at(op.b as usize);
    let sv = cx.int_at(op.c as usize);
    let stepped = tryh!(cx, pc, alu(AluOp::Add, aw, asg, iv, sv));
    cx.set_int(op.a as usize, stepped);
    // mov i, tmp
    cx.set_int(op.b as usize, stepped);
    // cmp t, i, n  (n read after both writes, like the metered loop)
    let nv = cx.int_at(op.d as usize);
    let t = int_compare(pred, cw, csg, stepped, nv);
    cx.set_int(t_reg, t);
    // bnz t
    let cost = &cx.prog.cost;
    cx.stats.cycles += if t != 0 {
        cost.branch_taken
    } else {
        cost.branch_not_taken
    };
    enter(cx, if t != 0 { op.e } else { op.f })
}

// --- adjacent-record pairing -----------------------------------------------
//
// The catalogue above fuses *shapes* (a compare feeding a branch, a load
// feeding an ALU op). Register-starved lowerings — exactly what the split
// register allocator produces — are instead dominated by glue the catalogue
// never matches: `Imm`/`Reload`/`Spill`/`IntResize` traffic around every ALU
// op. The pairing sweep attacks the dispatch count directly: any two
// adjacent records of pairable kinds are welded by swapping the first one's
// handler for a combined handler that executes both records and tells the
// loop to advance past the pair. Because each constituent keeps its own
// record (the combined handler reads the partner at `op + 1`), there is no
// operand re-packing, any kind can pair with any kind, and a trap in either
// constituent resolves through that record's own fixup — so pairing is
// invisible to `SimStats`.

/// Pairable record kinds: indexes into [`base`] and the [`PAIRS`] table.
/// Kinds below [`NFIRST`] are straight-line (they fall through, so they can
/// *open* a pair); the control kinds after them can only *close* one — which
/// is exactly where the enclosing straight-line run ends.
const K_IMM: u8 = 0;
const K_MOV_INT: u8 = 1;
const K_INT_OP: u8 = 2;
const K_INT_RESIZE: u8 = 3;
const K_INT_CMP: u8 = 4;
const K_LOAD_INT: u8 = 5;
const K_STORE_INT: u8 = 6;
const K_SPILL_INT: u8 = 7;
const K_RELOAD_INT: u8 = 8;
const K_FIMM: u8 = 9;
const K_MOV_FLOAT: u8 = 10;
const K_FLOAT_OP: u8 = 11;
const K_LOAD_FLOAT: u8 = 12;
const K_STORE_FLOAT: u8 = 13;
const K_SPILL_FLOAT: u8 = 14;
const K_RELOAD_FLOAT: u8 = 15;
const K_CMP_BRANCH_INT: u8 = 16;
const K_CMP_BRANCH_FLOAT: u8 = 17;
const K_BRANCH_NZ: u8 = 18;
const K_JUMP: u8 = 19;
const K_RET_NONE: u8 = 20;
const K_RET_INT: u8 = 21;
const K_RET_FLOAT: u8 = 22;
/// Not pairable (calls, vector ops, rare shapes).
const K_NONE: u8 = u8::MAX;
/// Kinds `0..NFIRST` may open a pair.
const NFIRST: usize = 16;
/// Kinds `0..NSECOND` may close a pair.
const NSECOND: usize = 23;

/// The base handler for a pairable kind. `const` so the combined handlers
/// below resolve their constituents at compile time: inside `h_pair` the
/// inline-const call target is a literal fn pointer, which the optimizer
/// turns into a direct (and then inlined) call — pairing would be a
/// pessimization if the constituents stayed behind indirect calls.
const fn base(k: usize) -> Handler {
    match k {
        0 => h_imm,
        1 => h_mov_int,
        2 => h_int_op,
        3 => h_int_resize,
        4 => h_int_cmp,
        5 => h_load_int,
        6 => h_store_int,
        7 => h_spill_int,
        8 => h_reload_int,
        9 => h_fimm,
        10 => h_mov_float,
        11 => h_float_op,
        12 => h_load_float,
        13 => h_store_float,
        14 => h_spill_float,
        15 => h_reload_float,
        16 => h_cmp_branch_int,
        17 => h_cmp_branch_float,
        18 => h_branch_nz,
        19 => h_jump,
        20 => h_ret_none,
        21 => h_ret_int,
        _ => h_ret_float,
    }
}

/// The combined handler for a pair of kinds `A` then `B`: run the opener on
/// this record, then the closer on the partner record, with both constituent
/// bodies inlined into one function.
fn h_pair<const A: usize, const B: usize>(op: &OpRecord, cx: &mut ExecCtx<'_>, pc: u32) -> u64 {
    let r = (const { base(A) })(op, cx, pc);
    if r != u64::from(pc) + 1 {
        // The opener trapped (openers are straight-line kinds, so the only
        // other outcome is `FLOW_ERR` at the opener itself).
        return r;
    }
    // SAFETY: the pair sweep only rewrites a record whose immediate
    // successor is its partner in the same straight-line run, so `op` is
    // never the stream's last record. The partner runs under its own pc, so
    // any outcome it reports — fall-through, branch target, trap fixup —
    // is already absolute and flows straight back to the dispatch loop.
    let partner = unsafe { &*std::ptr::from_ref(op).add(1) };
    (const { base(B) })(partner, cx, pc + 1)
}

macro_rules! pair_row {
    ($a:expr) => {
        [
            h_pair::<$a, 0>,
            h_pair::<$a, 1>,
            h_pair::<$a, 2>,
            h_pair::<$a, 3>,
            h_pair::<$a, 4>,
            h_pair::<$a, 5>,
            h_pair::<$a, 6>,
            h_pair::<$a, 7>,
            h_pair::<$a, 8>,
            h_pair::<$a, 9>,
            h_pair::<$a, 10>,
            h_pair::<$a, 11>,
            h_pair::<$a, 12>,
            h_pair::<$a, 13>,
            h_pair::<$a, 14>,
            h_pair::<$a, 15>,
            h_pair::<$a, 16>,
            h_pair::<$a, 17>,
            h_pair::<$a, 18>,
            h_pair::<$a, 19>,
            h_pair::<$a, 20>,
            h_pair::<$a, 21>,
            h_pair::<$a, 22>,
        ]
    };
}

/// Every combined pair handler, indexed `[opener kind][closer kind]`.
static PAIRS: [[Handler; NSECOND]; NFIRST] = [
    pair_row!(0),
    pair_row!(1),
    pair_row!(2),
    pair_row!(3),
    pair_row!(4),
    pair_row!(5),
    pair_row!(6),
    pair_row!(7),
    pair_row!(8),
    pair_row!(9),
    pair_row!(10),
    pair_row!(11),
    pair_row!(12),
    pair_row!(13),
    pair_row!(14),
    pair_row!(15),
];

/// The combined handler for a triple of kinds `A`, `B`, then `C`, welding a
/// three-record stretch into one dispatch round-trip.
fn h_triple<const A: usize, const B: usize, const C: usize>(
    op: &OpRecord,
    cx: &mut ExecCtx<'_>,
    pc: u32,
) -> u64 {
    let r = (const { base(A) })(op, cx, pc);
    if r != u64::from(pc) + 1 {
        return r;
    }
    // SAFETY: the weld sweep only builds a triple whose two partner records
    // follow the opener inside the same straight-line run (see `h_pair`).
    let second = unsafe { &*std::ptr::from_ref(op).add(1) };
    let r = (const { base(B) })(second, cx, pc + 1);
    if r != u64::from(pc) + 2 {
        return r;
    }
    let third = unsafe { &*std::ptr::from_ref(op).add(2) };
    (const { base(C) })(third, cx, pc + 2)
}

// The triple combination table is restricted to the integer straight-line
// kinds (plus the two run closers that dominate integer loops) to keep the
// number of monomorphized combinations in check: 8 × 8 × 10. Stretches the
// table misses still weld as pairs.

macro_rules! triple_c {
    ($a:expr, $b:expr) => {
        [
            h_triple::<$a, $b, 0>,  // Imm
            h_triple::<$a, $b, 1>,  // MovInt
            h_triple::<$a, $b, 2>,  // IntOp
            h_triple::<$a, $b, 3>,  // IntResize
            h_triple::<$a, $b, 5>,  // LoadInt
            h_triple::<$a, $b, 6>,  // StoreInt
            h_triple::<$a, $b, 7>,  // SpillInt
            h_triple::<$a, $b, 8>,  // ReloadInt
            h_triple::<$a, $b, 16>, // CmpBranchInt
            h_triple::<$a, $b, 19>, // Jump
        ]
    };
}

macro_rules! triple_b {
    ($a:expr) => {
        [
            triple_c!($a, 0),
            triple_c!($a, 1),
            triple_c!($a, 2),
            triple_c!($a, 3),
            triple_c!($a, 5),
            triple_c!($a, 6),
            triple_c!($a, 7),
            triple_c!($a, 8),
        ]
    };
}

/// Every combined triple handler, indexed by the compact positions from
/// [`tri_open`] (first two) and [`tri_close`] (third).
static TRIPLES: [[[Handler; 10]; 8]; 8] = [
    triple_b!(0),
    triple_b!(1),
    triple_b!(2),
    triple_b!(3),
    triple_b!(5),
    triple_b!(6),
    triple_b!(7),
    triple_b!(8),
];

/// Compact [`TRIPLES`] position of a kind usable in a triple's first or
/// second slot.
fn tri_open(k: u8) -> Option<usize> {
    match k {
        K_IMM => Some(0),
        K_MOV_INT => Some(1),
        K_INT_OP => Some(2),
        K_INT_RESIZE => Some(3),
        K_LOAD_INT => Some(4),
        K_STORE_INT => Some(5),
        K_SPILL_INT => Some(6),
        K_RELOAD_INT => Some(7),
        _ => None,
    }
}

/// Compact [`TRIPLES`] position of a kind usable in a triple's third slot.
fn tri_close(k: u8) -> Option<usize> {
    match k {
        K_CMP_BRANCH_INT => Some(8),
        K_JUMP => Some(9),
        _ => tri_open(k),
    }
}

/// Pairable kind of one 1:1-lowered enum instruction ([`K_NONE`] when the
/// record cannot take part in a pair).
fn pair_kind(inst: &PInst) -> u8 {
    match inst {
        PInst::Imm { .. } => K_IMM,
        PInst::MovInt { .. } => K_MOV_INT,
        PInst::IntOp { .. } => K_INT_OP,
        PInst::IntResize { .. } => K_INT_RESIZE,
        PInst::IntCmp { .. } => K_INT_CMP,
        PInst::LoadInt { .. } => K_LOAD_INT,
        PInst::StoreInt { .. } => K_STORE_INT,
        PInst::SpillInt { .. } => K_SPILL_INT,
        PInst::Reload {
            class: RegClass::Int,
            ..
        } => K_RELOAD_INT,
        PInst::FImm { .. } => K_FIMM,
        PInst::MovFloat { .. } => K_MOV_FLOAT,
        PInst::FloatOp { .. } => K_FLOAT_OP,
        PInst::LoadFloat { .. } => K_LOAD_FLOAT,
        PInst::StoreFloat { .. } => K_STORE_FLOAT,
        PInst::SpillFloat { .. } => K_SPILL_FLOAT,
        PInst::Reload {
            class: RegClass::Float,
            ..
        } => K_RELOAD_FLOAT,
        PInst::BranchNz { .. } => K_BRANCH_NZ,
        PInst::Jump { .. } => K_JUMP,
        PInst::Ret { value: None } => K_RET_NONE,
        PInst::Ret {
            value: Some((RegClass::Int, _)),
        } => K_RET_INT,
        PInst::Ret {
            value: Some((RegClass::Float, _)),
        } => K_RET_FLOAT,
        _ => K_NONE,
    }
}

// ---------------------------------------------------------------------------
// Prepare-time lowering: enum stream -> threaded stream.
// ---------------------------------------------------------------------------

/// Straight-line role of one record, driving the region/fixup pass.
enum End {
    /// Falls through.
    Normal,
    /// Ends its region (branch, return, unknown call).
    Control,
    /// Ends its region and opens the after-call region at this target index.
    Call(u32),
    /// Ends its region; the failed fetch is not a retired instruction.
    FellOff,
}

fn c32(v: u64) -> u32 {
    debug_assert!(v <= u64::from(u32::MAX));
    v as u32
}

/// The statically-known `SimStats` contribution of one enum instruction,
/// mirroring the metered loop's charge table exactly. Conditional branches
/// contribute only their branch *count* (the taken/not-taken cycles depend
/// on the outcome), and calls contribute nothing (their cycles are charged
/// dynamically because the argv build can trap before the legacy walk
/// charges them). Fused records charge the sum of their constituents.
fn static_stats(inst: &PInst, cost: &CostModel) -> StaticStats {
    let mut s = StaticStats::default();
    match inst {
        PInst::Imm { .. }
        | PInst::FImm { .. }
        | PInst::MovInt { .. }
        | PInst::MovFloat { .. }
        | PInst::MovVec { .. }
        | PInst::SelectInt { .. }
        | PInst::SelectFloat { .. }
        | PInst::SelectVec { .. }
        | PInst::Ret { .. } => s.cycles = cost.mov,
        PInst::IntOp { cost: c, .. } | PInst::FloatOp { cost: c, .. } => s.cycles = *c,
        PInst::IntNeg { .. }
        | PInst::IntNot { .. }
        | PInst::IntCmp { .. }
        | PInst::IntResize { .. } => s.cycles = cost.int_op,
        PInst::FloatNeg { .. } | PInst::FloatCmp { .. } => s.cycles = cost.fp_add,
        PInst::IntToFloat { .. } | PInst::FloatToInt { .. } | PInst::FloatCvt { .. } => {
            s.cycles = cost.convert;
        }
        PInst::LoadInt { .. } | PInst::LoadFloat { .. } => {
            s.cycles = cost.load;
            s.loads = 1;
        }
        PInst::StoreInt { .. } | PInst::StoreFloat { .. } => {
            s.cycles = cost.store;
            s.stores = 1;
        }
        PInst::VecLoad { .. } => {
            s.cycles = cost.vec_load;
            s.loads = 1;
            s.vector_ops = 1;
        }
        PInst::VecStore { .. } => {
            s.cycles = cost.vec_store;
            s.stores = 1;
            s.vector_ops = 1;
        }
        PInst::VecSplatInt { .. }
        | PInst::VecSplatFloat { .. }
        | PInst::VecIntOp { .. }
        | PInst::VecFloatOp { .. } => {
            s.cycles = cost.vec_op;
            s.vector_ops = 1;
        }
        PInst::VecReduceInt { .. } | PInst::VecReduceFloat { .. } => {
            s.cycles = cost.vec_reduce;
            s.vector_ops = 1;
        }
        PInst::SpillInt { .. } | PInst::SpillFloat { .. } | PInst::SpillVec { .. } => {
            s.cycles = cost.spill_store;
            s.spill_stores = 1;
        }
        PInst::Reload { .. } => {
            s.cycles = cost.spill_load;
            s.spill_reloads = 1;
        }
        PInst::Jump { .. } => {
            s.cycles = cost.branch_taken;
            s.branches = 1;
        }
        PInst::BranchNz { .. } => s.branches = 1,
        PInst::Call(_) | PInst::CallUnknown { .. } | PInst::FellOff { .. } => {}
    }
    s
}

/// Pack the taken (low 32) / not-taken (high 32) cycle charges of a branch.
fn pack_branch_charges(taken: u64, not_taken: u64) -> i64 {
    ((u64::from(c32(not_taken)) << 32) | u64::from(c32(taken))) as i64
}

fn rec(handler: Handler) -> OpRecord {
    OpRecord {
        handler,
        imm: 0,
        a: 0,
        b: 0,
        c: 0,
        d: 0,
        e: 0,
        f: 0,
    }
}

/// Lower the prepared enum stream of `pf` to a threaded dispatch stream:
/// fuse macro-ops (when `fuse`), emit packed records, and resolve per-region
/// fuel/instruction charges and per-op trap fixups. Requires the prepare-time
/// packing guard ([`costs_fit_u32`] + vector file ≤ 64 KiB) to have passed.
#[allow(clippy::too_many_lines)]
pub(crate) fn build_threaded(
    pf: &mut PreparedFunction,
    cost: &CostModel,
    fuse: bool,
    fusion: &mut FusionStats,
) {
    let nblocks = pf.block_offsets.len();
    let code_len = pf.code.len() as u32;
    let mut targets: Vec<BlockTarget> = pf
        .block_offsets
        .iter()
        .map(|&o| BlockTarget {
            ops_pc: 0,
            enum_pc: o,
            charge: 0,
            stat: StaticStats::default(),
        })
        .collect();
    let mut calls: Vec<CallSite> = Vec::new();
    let mut ops: Vec<OpRecord> = Vec::new();
    let mut meta: Vec<OpMeta> = Vec::new();
    let mut ends: Vec<End> = Vec::new();
    // Per-record static stats, and the slice of them the legacy walk charges
    // *before* the record's own trap point (only `Ret`, whose move retires
    // before the vector-class check can trap).
    let mut stat: Vec<StaticStats> = Vec::new();
    let mut precharged: Vec<u64> = Vec::new();
    // Per-record pairable kind, consumed by the pairing sweep below.
    let mut kinds: Vec<u8> = Vec::new();

    {
        let code = &pf.code;
        let block_offsets = &pf.block_offsets;
        // Branch targets were resolved to block-start enum offsets during
        // preparation; map them back to dense block (= region) indexes.
        let bidx = |enum_off: u32| -> u32 {
            block_offsets
                .binary_search(&enum_off)
                .expect("branch target is a block start") as u32
        };

        for bi in 0..nblocks {
            let start = block_offsets[bi];
            let end = if bi + 1 < nblocks {
                block_offsets[bi + 1]
            } else {
                code_len
            };
            targets[bi].ops_pc = ops.len() as u32;
            let mut p = start;
            while p < end {
                let pi = p as usize;
                let avail = (end - p) as usize;
                let mut fused_len = 0u8;
                if fuse {
                    if let Some((record, len, kind, end_kind)) =
                        try_fuse(code, pi, avail, cost, &bidx)
                    {
                        match kind {
                            FuseKind::CmpBranchInt | FuseKind::CmpBranchFloat => {
                                fusion.cmp_branch += 1;
                            }
                            FuseKind::LoadIntOp | FuseKind::LoadFloatOp => fusion.load_op += 1,
                            FuseKind::IndVar3 | FuseKind::IndVar4 => fusion.indvar += 1,
                            FuseKind::None => unreachable!(),
                        }
                        ops.push(record);
                        meta.push(OpMeta {
                            enum_pc: p,
                            len,
                            fused: kind,
                            welded: 0,
                        });
                        ends.push(end_kind);
                        let mut fs = StaticStats::default();
                        for c in &code[pi..pi + len as usize] {
                            fs.add(&static_stats(c, cost));
                        }
                        stat.push(fs);
                        precharged.push(0);
                        kinds.push(match kind {
                            FuseKind::CmpBranchInt => K_CMP_BRANCH_INT,
                            FuseKind::CmpBranchFloat => K_CMP_BRANCH_FLOAT,
                            _ => K_NONE,
                        });
                        fused_len = len;
                    }
                }
                if fused_len > 0 {
                    p += u32::from(fused_len);
                    continue;
                }
                match &code[pi] {
                    PInst::Call(call) => {
                        let site = calls.len() as u32;
                        let after = targets.len() as u32;
                        calls.push(CallSite::Known {
                            callee: call.callee,
                            args: call.args.clone(),
                            ret: call.ret,
                            after,
                        });
                        let mut r = rec(h_call);
                        r.e = site;
                        r.f = c32(cost.call);
                        ops.push(r);
                        meta.push(OpMeta {
                            enum_pc: p,
                            len: 1,
                            fused: FuseKind::None,
                            welded: 0,
                        });
                        ends.push(End::Call(after));
                        stat.push(StaticStats::default());
                        precharged.push(0);
                        kinds.push(K_NONE);
                        targets.push(BlockTarget {
                            ops_pc: ops.len() as u32,
                            enum_pc: p + 1,
                            charge: 0,
                            stat: StaticStats::default(),
                        });
                    }
                    PInst::CallUnknown { name } => {
                        let site = calls.len() as u32;
                        calls.push(CallSite::Unknown(name.clone()));
                        let mut r = rec(h_call_unknown);
                        r.e = site;
                        ops.push(r);
                        meta.push(OpMeta {
                            enum_pc: p,
                            len: 1,
                            fused: FuseKind::None,
                            welded: 0,
                        });
                        ends.push(End::Control);
                        stat.push(StaticStats::default());
                        precharged.push(0);
                        kinds.push(K_NONE);
                    }
                    inst => {
                        let (record, end_kind) = lower_single(inst, cost, &bidx);
                        ops.push(record);
                        meta.push(OpMeta {
                            enum_pc: p,
                            len: 1,
                            fused: FuseKind::None,
                            welded: 0,
                        });
                        ends.push(end_kind);
                        stat.push(static_stats(inst, cost));
                        precharged.push(if matches!(inst, PInst::Ret { .. }) {
                            cost.mov
                        } else {
                            0
                        });
                        kinds.push(pair_kind(inst));
                    }
                }
                p += 1;
            }
        }
    }

    // Region pass: every straight-line run from a region entry through its
    // closing control op gets its source-instruction count and its static
    // counter sum as the entry's prepaid charge, and every record a
    // trap-path fixup for all of them.
    let mut fixup = vec![FixupRec::default(); ops.len()];
    for bi in 0..nblocks {
        let first = targets[bi].ops_pc as usize;
        let last = if bi + 1 < nblocks {
            targets[bi + 1].ops_pc as usize
        } else {
            ops.len()
        };
        let mut pending = Some(bi);
        let mut insts = 0u32;
        let mut sum = StaticStats::default();
        let mut run_start = first;
        for j in first..last {
            insts += u32::from(meta[j].len);
            sum.add(&stat[j]);
            if matches!(ends[j], End::Normal) {
                continue;
            }
            // Close the region: a record that traps has retired its first
            // source instruction (which the legacy walk counts) but none
            // after it — except FellOff, whose failed fetch is not retired —
            // and none of its own charge-after-success counters, except the
            // precharged slice (a vector `Ret` charges its move first).
            let mut before_insts = 0u32;
            let mut before = StaticStats::default();
            for k in run_start..=j {
                fixup[k] = FixupRec {
                    instructions: if matches!(ends[k], End::FellOff) {
                        insts - before_insts
                    } else {
                        insts - before_insts - 1
                    },
                    stat: StaticStats {
                        cycles: sum.cycles - before.cycles - precharged[k],
                        loads: sum.loads - before.loads,
                        stores: sum.stores - before.stores,
                        spill_stores: sum.spill_stores - before.spill_stores,
                        spill_reloads: sum.spill_reloads - before.spill_reloads,
                        vector_ops: sum.vector_ops - before.vector_ops,
                        branches: sum.branches - before.branches,
                    },
                };
                before_insts += u32::from(meta[k].len);
                before.add(&stat[k]);
            }
            if let Some(t) = pending {
                targets[t].charge = insts;
                targets[t].stat = sum;
            }
            // Welding sweep over the closed run: greedily weld a triple
            // when the combination table covers it, else a pair, else move
            // on. Only the opener's handler changes; jumps can't land inside
            // a run, so no entry point ever targets a consumed partner.
            if fuse {
                let mut k = run_start;
                while k < j {
                    let a = kinds[k] as usize;
                    if a >= NFIRST {
                        k += 1;
                        continue;
                    }
                    if k + 2 <= j {
                        if let (Some(x), Some(y), Some(z)) = (
                            tri_open(kinds[k]),
                            tri_open(kinds[k + 1]),
                            tri_close(kinds[k + 2]),
                        ) {
                            ops[k].handler = TRIPLES[x][y][z];
                            meta[k].welded = 3;
                            fusion.triple += 1;
                            k += 3;
                            continue;
                        }
                    }
                    let b = kinds[k + 1] as usize;
                    if b < NSECOND {
                        ops[k].handler = PAIRS[a][b];
                        meta[k].welded = 2;
                        fusion.pair += 1;
                        k += 2;
                    } else {
                        k += 1;
                    }
                }
            }
            pending = match ends[j] {
                End::Call(after) => Some(after as usize),
                _ => None,
            };
            insts = 0;
            sum = StaticStats::default();
            run_start = j + 1;
        }
    }

    pf.ops = ops;
    pf.fixup = fixup;
    pf.meta = meta;
    pf.targets = targets;
    pf.calls = calls;
}

/// Try to fuse a macro-op starting at `code[pi]`, entirely within the
/// current block (`avail` instructions remain). Greedy, longest shape first.
/// Only the *first* constituent of any fused shape may trap (loads;
/// `Div`/`Rem` are excluded from load+op), so the single per-record fixup is
/// always exact.
fn try_fuse(
    code: &[PInst],
    pi: usize,
    avail: usize,
    cost: &CostModel,
    bidx: &impl Fn(u32) -> u32,
) -> Option<(OpRecord, u8, FuseKind, End)> {
    // indvar4: add tmp,i,s ; mov i,tmp ; cmp t,i,n ; bnz t
    if avail >= 4 {
        if let (
            PInst::IntOp {
                op: AluOp::Add,
                width: aw,
                signed: asg,
                dst: tmp,
                lhs: i,
                rhs: s,
                ..
            },
            PInst::MovInt { dst: md, src: ms },
            PInst::IntCmp {
                pred,
                width: cw,
                signed: csg,
                dst: t,
                lhs: cl,
                rhs: n,
            },
            PInst::BranchNz {
                cond,
                then_target,
                else_target,
            },
        ) = (&code[pi], &code[pi + 1], &code[pi + 2], &code[pi + 3])
        {
            if ms == tmp && md == i && cl == i && cond == t {
                let flags = wbits(*aw)
                    | u16::from(*asg) << 2
                    | pred_bits(*pred) << 3
                    | wbits(*cw) << 6
                    | u16::from(*csg) << 8;
                let mut r = rec(h_indvar4);
                r.a = *tmp as u16;
                r.b = *i as u16;
                r.c = *s as u16;
                r.d = *n as u16;
                r.imm = i64::from(*t as u16) | i64::from(flags) << 16;
                r.e = bidx(*then_target);
                r.f = bidx(*else_target);
                return Some((r, 4, FuseKind::IndVar4, End::Control));
            }
        }
    }
    // indvar3: add i,i,s ; cmp t,i,n ; bnz t
    if avail >= 3 {
        if let (
            PInst::IntOp {
                op: AluOp::Add,
                width: aw,
                signed: asg,
                dst,
                lhs,
                rhs: s,
                ..
            },
            PInst::IntCmp {
                pred,
                width: cw,
                signed: csg,
                dst: t,
                lhs: cl,
                rhs: n,
            },
            PInst::BranchNz {
                cond,
                then_target,
                else_target,
            },
        ) = (&code[pi], &code[pi + 1], &code[pi + 2])
        {
            if dst == lhs && cl == dst && cond == t {
                let flags = wbits(*aw)
                    | u16::from(*asg) << 2
                    | pred_bits(*pred) << 3
                    | wbits(*cw) << 6
                    | u16::from(*csg) << 8;
                let mut r = rec(h_indvar3);
                r.a = *dst as u16;
                r.b = *s as u16;
                r.c = *n as u16;
                r.d = *t as u16;
                r.imm = i64::from(flags);
                r.e = bidx(*then_target);
                r.f = bidx(*else_target);
                return Some((r, 3, FuseKind::IndVar3, End::Control));
            }
        }
    }
    if avail >= 2 {
        // load+op (int): the ALU op consumes the loaded value.
        if let (
            PInst::LoadInt {
                width: lw,
                signed: ls,
                dst: ld,
                base,
                offset,
            },
            PInst::IntOp {
                op,
                width: aw,
                signed: asg,
                dst: ad,
                lhs,
                rhs,
                cost: ac,
            },
        ) = (&code[pi], &code[pi + 1])
        {
            if !matches!(op, AluOp::Div | AluOp::Rem) && (lhs == ld || rhs == ld) {
                let flags = wbits(*lw)
                    | u16::from(*ls) << 2
                    | alu_bits(*op) << 3
                    | wbits(*aw) << 7
                    | u16::from(*asg) << 9;
                let mut r = rec(h_load_int_op);
                r.a = *ld as u16;
                r.b = *base as u16;
                r.c = *lhs as u16;
                r.d = *rhs as u16;
                r.e = ad | u32::from(flags) << 16;
                r.f = c32(cost.load + ac);
                r.imm = *offset;
                return Some((r, 2, FuseKind::LoadIntOp, End::Normal));
            }
        }
        // load+op (float): fp ops never trap, so all of them fuse.
        if let (
            PInst::LoadFloat {
                width: lw,
                dst: ld,
                base,
                offset,
            },
            PInst::FloatOp {
                op,
                double,
                dst: ad,
                lhs,
                rhs,
                cost: ac,
            },
        ) = (&code[pi], &code[pi + 1])
        {
            if lhs == ld || rhs == ld {
                let flags = wbits(*lw) | fpu_bits(*op) << 2 | u16::from(*double) << 5;
                let mut r = rec(h_load_float_op);
                r.a = *ld as u16;
                r.b = *base as u16;
                r.c = *lhs as u16;
                r.d = *rhs as u16;
                r.e = ad | u32::from(flags) << 16;
                r.f = c32(cost.load + ac);
                r.imm = *offset;
                return Some((r, 2, FuseKind::LoadFloatOp, End::Normal));
            }
        }
        // cmp+branch (int).
        if let (
            PInst::IntCmp {
                pred,
                width,
                signed,
                dst,
                lhs,
                rhs,
            },
            PInst::BranchNz {
                cond,
                then_target,
                else_target,
            },
        ) = (&code[pi], &code[pi + 1])
        {
            if cond == dst {
                let mut r = rec(h_cmp_branch_int);
                r.a = *dst as u16;
                r.b = *lhs as u16;
                r.c = *rhs as u16;
                r.d = pred_bits(*pred) | wbits(*width) << 3 | u16::from(*signed) << 5;
                r.e = bidx(*then_target);
                r.f = bidx(*else_target);
                r.imm = pack_branch_charges(cost.branch_taken, cost.branch_not_taken);
                return Some((r, 2, FuseKind::CmpBranchInt, End::Control));
            }
        }
        // cmp+branch (float).
        if let (
            PInst::FloatCmp {
                pred,
                double,
                dst,
                lhs,
                rhs,
            },
            PInst::BranchNz {
                cond,
                then_target,
                else_target,
            },
        ) = (&code[pi], &code[pi + 1])
        {
            if cond == dst {
                let mut r = rec(h_cmp_branch_float);
                r.a = *dst as u16;
                r.b = *lhs as u16;
                r.c = *rhs as u16;
                r.d = pred_bits(*pred) | u16::from(*double) << 3;
                r.e = bidx(*then_target);
                r.f = bidx(*else_target);
                r.imm = pack_branch_charges(cost.branch_taken, cost.branch_not_taken);
                return Some((r, 2, FuseKind::CmpBranchFloat, End::Control));
            }
        }
    }
    None
}

/// Lower one (non-call) enum instruction to its packed record.
#[allow(clippy::too_many_lines)]
fn lower_single(inst: &PInst, cost: &CostModel, bidx: &impl Fn(u32) -> u32) -> (OpRecord, End) {
    let mut end = End::Normal;
    let mut r;
    match inst {
        PInst::Imm { dst, value } => {
            r = rec(h_imm);
            r.a = *dst as u16;
            r.imm = *value;
            r.e = c32(cost.mov);
        }
        PInst::FImm { dst, value } => {
            r = rec(h_fimm);
            r.a = *dst as u16;
            r.imm = value.to_bits() as i64;
            r.e = c32(cost.mov);
        }
        PInst::MovInt { dst, src } => {
            r = rec(h_mov_int);
            r.a = *dst as u16;
            r.b = *src as u16;
            r.e = c32(cost.mov);
        }
        PInst::MovFloat { dst, src } => {
            r = rec(h_mov_float);
            r.a = *dst as u16;
            r.b = *src as u16;
            r.e = c32(cost.mov);
        }
        PInst::MovVec { dst, src } => {
            r = rec(h_mov_vec);
            r.a = *dst as u16;
            r.b = *src as u16;
            r.e = c32(cost.mov);
        }
        PInst::IntOp {
            op,
            width,
            signed,
            dst,
            lhs,
            rhs,
            cost: c,
        } => {
            r = rec(h_int_op);
            r.a = *dst as u16;
            r.b = *lhs as u16;
            r.c = *rhs as u16;
            r.d = alu_bits(*op) | wbits(*width) << 4 | u16::from(*signed) << 6;
            r.e = c32(*c);
        }
        PInst::FloatOp {
            op,
            double,
            dst,
            lhs,
            rhs,
            cost: c,
        } => {
            r = rec(h_float_op);
            r.a = *dst as u16;
            r.b = *lhs as u16;
            r.c = *rhs as u16;
            r.d = fpu_bits(*op) | u16::from(*double) << 3;
            r.e = c32(*c);
        }
        PInst::IntNeg { width, dst, src } => {
            r = rec(h_int_neg);
            r.a = *dst as u16;
            r.b = *src as u16;
            r.d = wbits(*width);
            r.e = c32(cost.int_op);
        }
        PInst::IntNot { width, dst, src } => {
            r = rec(h_int_not);
            r.a = *dst as u16;
            r.b = *src as u16;
            r.d = wbits(*width);
            r.e = c32(cost.int_op);
        }
        PInst::FloatNeg { double, dst, src } => {
            r = rec(h_float_neg);
            r.a = *dst as u16;
            r.b = *src as u16;
            r.d = u16::from(*double);
            r.e = c32(cost.fp_add);
        }
        PInst::IntCmp {
            pred,
            width,
            signed,
            dst,
            lhs,
            rhs,
        } => {
            r = rec(h_int_cmp);
            r.a = *dst as u16;
            r.b = *lhs as u16;
            r.c = *rhs as u16;
            r.d = pred_bits(*pred) | wbits(*width) << 3 | u16::from(*signed) << 5;
            r.e = c32(cost.int_op);
        }
        PInst::FloatCmp {
            pred,
            double,
            dst,
            lhs,
            rhs,
        } => {
            r = rec(h_float_cmp);
            r.a = *dst as u16;
            r.b = *lhs as u16;
            r.c = *rhs as u16;
            r.d = pred_bits(*pred) | u16::from(*double) << 3;
            r.e = c32(cost.fp_add);
        }
        PInst::SelectInt {
            dst,
            cond,
            if_true,
            if_false,
        } => {
            r = rec(h_select_int);
            r.a = *dst as u16;
            r.b = *cond as u16;
            r.c = *if_true as u16;
            r.d = *if_false as u16;
            r.e = c32(cost.mov);
        }
        PInst::SelectFloat {
            dst,
            cond,
            if_true,
            if_false,
        } => {
            r = rec(h_select_float);
            r.a = *dst as u16;
            r.b = *cond as u16;
            r.c = *if_true as u16;
            r.d = *if_false as u16;
            r.e = c32(cost.mov);
        }
        PInst::SelectVec {
            dst,
            cond,
            if_true,
            if_false,
        } => {
            r = rec(h_select_vec);
            r.a = *dst as u16;
            r.b = *cond as u16;
            r.c = *if_true as u16;
            r.d = *if_false as u16;
            r.e = c32(cost.mov);
        }
        PInst::IntToFloat {
            signed,
            double,
            dst,
            src,
        } => {
            r = rec(h_int_to_float);
            r.a = *dst as u16;
            r.b = *src as u16;
            r.d = u16::from(*signed) | u16::from(*double) << 1;
            r.e = c32(cost.convert);
        }
        PInst::FloatToInt {
            width,
            signed,
            dst,
            src,
        } => {
            r = rec(h_float_to_int);
            r.a = *dst as u16;
            r.b = *src as u16;
            r.d = wbits(*width) | u16::from(*signed) << 2;
            r.e = c32(cost.convert);
        }
        PInst::FloatCvt {
            to_double,
            dst,
            src,
        } => {
            r = rec(h_float_cvt);
            r.a = *dst as u16;
            r.b = *src as u16;
            r.d = u16::from(*to_double);
            r.e = c32(cost.convert);
        }
        PInst::IntResize {
            width,
            signed,
            dst,
            src,
        } => {
            r = rec(h_int_resize);
            r.a = *dst as u16;
            r.b = *src as u16;
            r.d = wbits(*width) | u16::from(*signed) << 2;
            r.e = c32(cost.int_op);
        }
        PInst::LoadInt {
            width,
            signed,
            dst,
            base,
            offset,
        } => {
            r = rec(h_load_int);
            r.a = *dst as u16;
            r.b = *base as u16;
            r.d = wbits(*width) | u16::from(*signed) << 2;
            r.e = c32(cost.load);
            r.imm = *offset;
        }
        PInst::LoadFloat {
            width,
            dst,
            base,
            offset,
        } => {
            r = rec(h_load_float);
            r.a = *dst as u16;
            r.b = *base as u16;
            r.d = wbits(*width);
            r.e = c32(cost.load);
            r.imm = *offset;
        }
        PInst::StoreInt {
            width,
            base,
            offset,
            src,
        } => {
            r = rec(h_store_int);
            r.a = *src as u16;
            r.b = *base as u16;
            r.d = wbits(*width);
            r.e = c32(cost.store);
            r.imm = *offset;
        }
        PInst::StoreFloat {
            width,
            base,
            offset,
            src,
        } => {
            r = rec(h_store_float);
            r.a = *src as u16;
            r.b = *base as u16;
            r.d = wbits(*width);
            r.e = c32(cost.store);
            r.imm = *offset;
        }
        PInst::VecLoad { dst, base, offset } => {
            r = rec(h_vec_load);
            r.a = *dst as u16;
            r.b = *base as u16;
            r.e = c32(cost.vec_load);
            r.imm = *offset;
        }
        PInst::VecStore { base, offset, src } => {
            r = rec(h_vec_store);
            r.a = *src as u16;
            r.b = *base as u16;
            r.e = c32(cost.vec_store);
            r.imm = *offset;
        }
        PInst::VecSplatInt {
            elem,
            lanes,
            dst,
            src,
        } => {
            r = rec(h_vec_splat_int);
            r.a = *dst as u16;
            r.b = *src as u16;
            r.d = wbits(*elem);
            r.e = *lanes;
            r.f = c32(cost.vec_op);
        }
        PInst::VecSplatFloat {
            elem,
            lanes,
            dst,
            src,
        } => {
            r = rec(h_vec_splat_float);
            r.a = *dst as u16;
            r.b = *src as u16;
            r.d = wbits(*elem);
            r.e = *lanes;
            r.f = c32(cost.vec_op);
        }
        PInst::VecIntOp {
            op,
            elem,
            signed,
            lanes,
            dst,
            lhs,
            rhs,
        } => {
            r = rec(h_vec_int_op);
            r.a = *dst as u16;
            r.b = *lhs as u16;
            r.c = *rhs as u16;
            r.d = alu_bits(*op) | wbits(*elem) << 4 | u16::from(*signed) << 6;
            r.e = *lanes;
            r.f = c32(cost.vec_op);
        }
        PInst::VecFloatOp {
            op,
            elem,
            double,
            lanes,
            dst,
            lhs,
            rhs,
        } => {
            r = rec(h_vec_float_op);
            r.a = *dst as u16;
            r.b = *lhs as u16;
            r.c = *rhs as u16;
            r.d = fpu_bits(*op) | wbits(*elem) << 3 | u16::from(*double) << 5;
            r.e = *lanes;
            r.f = c32(cost.vec_op);
        }
        PInst::VecReduceInt {
            op,
            elem,
            signed,
            lanes,
            dst,
            src,
        } => {
            r = rec(h_vec_reduce_int);
            r.a = *dst as u16;
            r.b = *src as u16;
            r.d = red_bits(*op) | wbits(*elem) << 2 | u16::from(*signed) << 4;
            r.e = *lanes;
            r.f = c32(cost.vec_reduce);
        }
        PInst::VecReduceFloat {
            op,
            elem,
            lanes,
            dst,
            src,
        } => {
            r = rec(h_vec_reduce_float);
            r.a = *dst as u16;
            r.b = *src as u16;
            r.d = red_bits(*op) | wbits(*elem) << 2;
            r.e = *lanes;
            r.f = c32(cost.vec_reduce);
        }
        PInst::SpillInt { slot, src } => {
            r = rec(h_spill_int);
            r.a = *src as u16;
            r.e = *slot;
            r.f = c32(cost.spill_store);
        }
        PInst::SpillFloat { slot, src } => {
            r = rec(h_spill_float);
            r.a = *src as u16;
            r.e = *slot;
            r.f = c32(cost.spill_store);
        }
        PInst::SpillVec { slot, src } => {
            r = rec(h_spill_vec);
            r.a = *src as u16;
            r.e = *slot;
            r.f = c32(cost.spill_store);
        }
        PInst::Reload { slot, class, dst } => {
            r = rec(match class {
                RegClass::Int => h_reload_int,
                RegClass::Float => h_reload_float,
                RegClass::Vec => h_reload_vec,
            });
            r.a = *dst as u16;
            r.e = *slot;
            r.f = c32(cost.spill_load);
        }
        PInst::Jump { target } => {
            r = rec(h_jump);
            r.e = bidx(*target);
            r.f = c32(cost.branch_taken);
            end = End::Control;
        }
        PInst::BranchNz {
            cond,
            then_target,
            else_target,
        } => {
            r = rec(h_branch_nz);
            r.a = *cond as u16;
            r.e = bidx(*then_target);
            r.f = bidx(*else_target);
            r.imm = pack_branch_charges(cost.branch_taken, cost.branch_not_taken);
            end = End::Control;
        }
        PInst::Ret { value } => {
            r = match value {
                None => rec(h_ret_none),
                Some((RegClass::Int, idx)) => {
                    let mut r = rec(h_ret_int);
                    r.a = *idx as u16;
                    r
                }
                Some((RegClass::Float, idx)) => {
                    let mut r = rec(h_ret_float);
                    r.a = *idx as u16;
                    r
                }
                Some((RegClass::Vec, _)) => rec(h_ret_vec),
            };
            r.e = c32(cost.mov);
            end = End::Control;
        }
        PInst::FellOff { block } => {
            r = rec(h_fell_off);
            r.e = *block;
            end = End::FellOff;
        }
        PInst::Call(_) | PInst::CallUnknown { .. } => {
            unreachable!("calls are lowered by the emission loop")
        }
    }
    (r, end)
}
