//! Pluggable microarchitectural timing models.
//!
//! Historically every execution path charged cycles directly from the
//! target's [`CostModel`]: each retired instruction added its flat per-opcode
//! cost to [`SimStats::cycles`] and nothing else. That *flat-cost* accounting
//! is now one implementation of the [`TimingModel`] trait — still the default
//! and still the differential reference — and the same call sites can instead
//! drive an [`InOrderPipeline`]: a scoreboard-style in-order core with RAW
//! hazard stalls from per-op latencies (which makes load-use stalls emerge
//! naturally), structural drains on unpipelined divide units, and a 2-bit
//! branch-history-table predictor with a misprediction penalty derived from
//! the target's branch cost.
//!
//! The contract every model must honour: **timing never changes
//! architecture**. Models receive the resolved cycle charge and the operand
//! registers of each retiring instruction but cannot observe or influence
//! values, memory, traps or control flow — so results, memory images and all
//! architectural counters (`instructions`, `loads`, `stores`, spills,
//! `branches`, `vector_ops`) are bit-identical across models, and only the
//! timing-class counters (`cycles`, `stalls`, `mispredicts`, `predicted`)
//! may differ. [`FlatCost`] keeps the three timing-class extras at zero, so
//! whole-struct [`SimStats`] equality against pre-refactor behaviour still
//! holds under the default model.
//!
//! The model selector ([`TimingKind`]) lives on
//! [`TargetDesc`](crate::TargetDesc) and feeds its fingerprint, so engine
//! caches distinguish the same core with different timing tiers.

use crate::desc::CostModel;
use crate::simulator::SimStats;
use serde::{Deserialize, Serialize};

/// Sentinel operand meaning "no register tracked" (vector registers, stores,
/// immediates): the scoreboard treats it as always ready and never writes it.
pub(crate) const NO_REG: u32 = u32::MAX;

/// Number of 2-bit counters in the branch history table. Sites index it by
/// their low bits, so distinct static branches may alias — exactly like a
/// real direct-mapped BHT.
const BHT_SIZE: usize = 256;

/// Which timing model a [`TargetDesc`](crate::TargetDesc) simulates with.
///
/// This is a property of the *modeled core* (like its register file or cost
/// table), not of the JIT configuration: it lives on the target description,
/// feeds [`TargetDesc::fingerprint`](crate::TargetDesc::fingerprint) so
/// engine cache keys distinguish models, and is copied onto every
/// [`PreparedProgram`](crate::PreparedProgram) at prepare time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum TimingKind {
    /// Flat per-opcode costs ([`FlatCost`]): the historical accounting and
    /// the differential reference.
    #[default]
    Flat,
    /// Scoreboarded in-order pipeline with hazard stalls and a 2-bit branch
    /// predictor ([`InOrderPipeline`]).
    InOrder,
}

impl TimingKind {
    /// Stable one-byte discriminant mixed into the target fingerprint.
    pub(crate) fn tag(self) -> u8 {
        match self {
            TimingKind::Flat => 0,
            TimingKind::InOrder => 1,
        }
    }

    /// Human-readable name (CLI listings, disasm headers, bench rows).
    pub fn label(self) -> &'static str {
        match self {
            TimingKind::Flat => "flat",
            TimingKind::InOrder => "in-order",
        }
    }
}

/// Latency class of one retiring instruction: which functional unit it
/// occupies. The flat model ignores it; the pipeline uses it for structural
/// hazards (divides drain the pipe) and `disasm` prints it so cost
/// attribution under the pipelined model is inspectable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatClass {
    /// Simple integer ALU op (add/sub/logic/shift/compare/resize).
    Alu,
    /// Integer multiply.
    Mul,
    /// Integer divide / remainder (unpipelined).
    Div,
    /// FP add/sub/compare/min/max.
    FpAdd,
    /// FP multiply.
    FpMul,
    /// FP divide (unpipelined).
    FpDiv,
    /// Scalar load.
    Load,
    /// Scalar store.
    Store,
    /// Register move / immediate / select / return.
    Mov,
    /// Int<->float conversion.
    Convert,
    /// Whole-vector arithmetic.
    Vec,
    /// Vector load.
    VecLoad,
    /// Vector store.
    VecStore,
    /// Cross-lane reduction.
    VecReduce,
    /// Spill store to a stack slot.
    SpillStore,
    /// Reload from a stack slot.
    SpillReload,
}

impl LatClass {
    /// Short unit label used by `splitc disasm` under the pipelined model.
    pub fn label(self) -> &'static str {
        match self {
            LatClass::Alu => "alu",
            LatClass::Mul => "mul",
            LatClass::Div => "div",
            LatClass::FpAdd => "fadd",
            LatClass::FpMul => "fmul",
            LatClass::FpDiv => "fdiv",
            LatClass::Load => "load",
            LatClass::Store => "store",
            LatClass::Mov => "mov",
            LatClass::Convert => "cvt",
            LatClass::Vec => "vec",
            LatClass::VecLoad => "vload",
            LatClass::VecStore => "vstore",
            LatClass::VecReduce => "vred",
            LatClass::SpillStore => "spill",
            LatClass::SpillReload => "reload",
        }
    }
}

/// One timing model: the sink for every cycle charge an execution path makes.
///
/// The executors call exactly one method per retiring instruction, at the
/// same point they previously charged `stats.cycles` directly, passing the
/// cost already resolved from the target's [`CostModel`] (or baked into the
/// prepared stream). Register operands are passed as packed scoreboard keys —
/// `(index << 1) | float_bit`, or [`NO_REG`] for untracked operands — so the
/// flat model can ignore them at zero cost while the pipeline scoreboards
/// them.
///
/// Models mutate only the timing-class counters of [`SimStats`] (`cycles`,
/// `stalls`, `mispredicts`, `predicted`); all architectural counters stay
/// charged at the call sites.
pub trait TimingModel {
    /// A non-branch instruction retires: `class`/`cost` describe its unit and
    /// latency, `dst` its written register, `a`/`b` its read registers.
    fn op(&mut self, stats: &mut SimStats, class: LatClass, cost: u64, dst: u32, a: u32, b: u32);

    /// A conditional branch retires. `site` is a deterministic static id of
    /// the branch (stable within one execution path; predictor state is
    /// per-run, so ids need not agree *across* paths), `taken` the outcome,
    /// `cost` the already-resolved taken/not-taken charge and `cond` the
    /// condition register.
    fn branch(&mut self, stats: &mut SimStats, site: u32, taken: bool, cost: u64, cond: u32);

    /// An unconditional jump retires (statically-known target).
    fn jump(&mut self, stats: &mut SimStats, cost: u64);

    /// A call instruction retires (charged before the callee executes, like
    /// the flat accounting always did).
    fn call(&mut self, stats: &mut SimStats, cost: u64);

    /// The top-level run finished: flush any in-flight state (outstanding
    /// writebacks for the pipeline; a no-op for flat costs).
    fn finish(&mut self, stats: &mut SimStats);
}

/// The historical flat-cost accounting: every charge is `cycles += cost`,
/// nothing else. Zero-sized and fully inlined, so the monomorphized executors
/// compile to exactly the pre-refactor code — [`SimStats`] is bit-identical,
/// including `stalls == mispredicts == predicted == 0`.
#[derive(Debug, Clone, Copy, Default)]
pub struct FlatCost;

impl TimingModel for FlatCost {
    #[inline(always)]
    fn op(&mut self, stats: &mut SimStats, _class: LatClass, cost: u64, _d: u32, _a: u32, _b: u32) {
        stats.cycles += cost;
    }

    #[inline(always)]
    fn branch(&mut self, stats: &mut SimStats, _site: u32, _taken: bool, cost: u64, _cond: u32) {
        stats.cycles += cost;
    }

    #[inline(always)]
    fn jump(&mut self, stats: &mut SimStats, cost: u64) {
        stats.cycles += cost;
    }

    #[inline(always)]
    fn call(&mut self, stats: &mut SimStats, cost: u64) {
        stats.cycles += cost;
    }

    #[inline(always)]
    fn finish(&mut self, _stats: &mut SimStats) {}
}

/// A scoreboard-style in-order, single-issue pipeline.
///
/// Semantics (one instruction per call, program order):
///
/// * An instruction wants to issue the cycle after its predecessor
///   (`now + 1`) but must wait until every source register's writeback —
///   the wait is a RAW **hazard stall** (`stats.stalls`). Because a load's
///   result is ready `load` cycles after issue, a dependent consumer in the
///   next slot stalls `load - 1` cycles: the classic load-use stall.
/// * The destination register becomes ready `cost` cycles after issue
///   (`cost` doubles as the unit latency; single-cycle ops forward with no
///   stall).
/// * Divides ([`LatClass::Div`]/[`LatClass::FpDiv`]) occupy an unpipelined
///   unit: issue blocks for the full latency (a **structural** stall).
/// * Conditional branches consult a direct-mapped table of
///   2-bit saturating counters indexed by the branch's static site id
///   (predict taken when the counter is ≥ 2, then step the counter toward
///   the outcome). A correct prediction costs one cycle
///   (`stats.predicted`); a misprediction additionally pays a front-end
///   refill penalty of `2 + branch_taken` cycles (`stats.mispredicts`).
///   Unconditional jumps have statically-known targets and always predict.
/// * Calls drain the pipeline (wait for every outstanding writeback, then
///   pay the call overhead) and clear the scoreboard: caller and callee
///   frames reuse scoreboard keys, so in-flight state must not leak across
///   the boundary.
/// * [`TimingModel::finish`] drains outstanding writebacks at the end of the
///   run.
///
/// Every retiring instruction contributes at least one cycle, so
/// `cycles >= instructions` always holds, and exactly one of
/// `predicted`/`mispredicts` is counted per branch, so
/// `predicted + mispredicts == branches`.
///
/// Deliberate simplifications, documented rather than modeled: vector
/// registers are not scoreboarded (vector ops still occupy issue slots and
/// charge latency, but cross-register vector dependencies do not stall), and
/// memory is not disambiguated (no store-to-load forwarding stalls).
#[derive(Debug, Clone)]
pub struct InOrderPipeline {
    /// Cycle at which the most recent instruction issued.
    now: u64,
    /// Latest outstanding writeback (drained by calls and `finish`).
    horizon: u64,
    /// Earliest issue cycle at which each scoreboard key's value is ready;
    /// lazily grown, missing keys are ready immediately.
    ready: Vec<u64>,
    /// 2-bit saturating counters, initialized weakly-not-taken.
    bht: [u8; BHT_SIZE],
    /// Front-end refill cost of a mispredicted conditional branch.
    mispredict_penalty: u64,
}

impl InOrderPipeline {
    /// Build the pipeline for one run on a target with cost table `cost`.
    pub fn new(cost: &CostModel) -> Self {
        InOrderPipeline {
            now: 0,
            horizon: 0,
            ready: Vec::new(),
            bht: [1; BHT_SIZE],
            // Redirect-and-refill after a wrong guess: the 2-cycle resolve
            // bubble plus the same front-end refill a taken branch pays.
            mispredict_penalty: 2 + cost.branch_taken,
        }
    }

    fn ready_at(&self, r: u32) -> u64 {
        if r == NO_REG {
            0
        } else {
            self.ready.get(r as usize).copied().unwrap_or(0)
        }
    }

    fn set_ready(&mut self, r: u32, at: u64) {
        if r == NO_REG {
            return;
        }
        let i = r as usize;
        if i >= self.ready.len() {
            self.ready.resize(i + 1, 0);
        }
        self.ready[i] = at;
        if at > self.horizon {
            self.horizon = at;
        }
    }
}

impl TimingModel for InOrderPipeline {
    fn op(&mut self, stats: &mut SimStats, class: LatClass, cost: u64, dst: u32, a: u32, b: u32) {
        let seq = self.now + 1;
        let issue = seq.max(self.ready_at(a)).max(self.ready_at(b));
        let stall = issue - seq;
        stats.stalls += stall;
        stats.cycles += 1 + stall;
        self.now = issue;
        let lat = cost.max(1);
        self.set_ready(dst, issue + lat);
        if matches!(class, LatClass::Div | LatClass::FpDiv) {
            // Unpipelined unit: nothing can issue until the divide retires.
            let drain = lat - 1;
            stats.stalls += drain;
            stats.cycles += drain;
            self.now += drain;
        }
    }

    fn branch(&mut self, stats: &mut SimStats, site: u32, taken: bool, _cost: u64, cond: u32) {
        let seq = self.now + 1;
        let issue = seq.max(self.ready_at(cond));
        let stall = issue - seq;
        stats.stalls += stall;
        let ctr = &mut self.bht[site as usize & (BHT_SIZE - 1)];
        let penalty = if (*ctr >= 2) == taken {
            stats.predicted += 1;
            0
        } else {
            stats.mispredicts += 1;
            self.mispredict_penalty
        };
        if taken {
            *ctr = (*ctr + 1).min(3);
        } else {
            *ctr = ctr.saturating_sub(1);
        }
        stats.cycles += 1 + stall + penalty;
        self.now = issue + penalty;
    }

    fn jump(&mut self, stats: &mut SimStats, _cost: u64) {
        // Statically-known target: the front end follows it for free.
        stats.predicted += 1;
        stats.cycles += 1;
        self.now += 1;
    }

    fn call(&mut self, stats: &mut SimStats, cost: u64) {
        let seq = self.now + 1;
        // Drain: wait for every outstanding writeback before transferring.
        let issue = seq.max(self.horizon);
        let stall = issue - seq;
        stats.stalls += stall;
        let lat = cost.max(1);
        stats.cycles += lat + stall;
        self.now = issue + lat - 1;
        // Caller and callee frames share scoreboard keys; start the callee
        // (and, on return, the caller's continuation) with a clean board.
        self.ready.clear();
        self.horizon = self.now;
    }

    fn finish(&mut self, stats: &mut SimStats) {
        let drain = self.horizon.saturating_sub(self.now);
        stats.stalls += drain;
        stats.cycles += drain;
        self.now = self.horizon;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> SimStats {
        SimStats::default()
    }

    #[test]
    fn flat_cost_is_a_plain_accumulator() {
        let mut s = stats();
        let mut tm = FlatCost;
        tm.op(&mut s, LatClass::Load, 3, 0, 2, NO_REG);
        tm.branch(&mut s, 7, true, 2, 0);
        tm.jump(&mut s, 2);
        tm.call(&mut s, 10);
        tm.finish(&mut s);
        assert_eq!(s.cycles, 17);
        assert_eq!((s.stalls, s.mispredicts, s.predicted), (0, 0, 0));
    }

    #[test]
    fn pipeline_charges_load_use_stalls() {
        let cost = CostModel::default();
        let mut s = stats();
        let mut tm = InOrderPipeline::new(&cost);
        // load r0 (latency 3) immediately consumed by an ALU op.
        tm.op(&mut s, LatClass::Load, cost.load, 0, 2, NO_REG);
        tm.op(&mut s, LatClass::Alu, cost.int_op, 4, 0, NO_REG);
        // issue slots: load at 1, consumer wants 2 but r0 ready at 1+3=4.
        assert_eq!(s.stalls, 2, "load-use must stall latency-1 cycles");
        assert_eq!(s.cycles, 1 + 1 + 2);

        // An independent op in the shadow of a load does not stall.
        let mut s2 = stats();
        let mut tm2 = InOrderPipeline::new(&cost);
        tm2.op(&mut s2, LatClass::Load, cost.load, 0, 2, NO_REG);
        tm2.op(&mut s2, LatClass::Alu, cost.int_op, 5, 6, NO_REG);
        assert_eq!(s2.stalls, 0);
    }

    #[test]
    fn divides_drain_the_unpipelined_unit() {
        let cost = CostModel::default();
        let mut s = stats();
        let mut tm = InOrderPipeline::new(&cost);
        tm.op(&mut s, LatClass::Div, cost.int_div, 0, 2, 4);
        // One issue cycle plus (latency - 1) structural stall cycles.
        assert_eq!(s.cycles, cost.int_div);
        assert_eq!(s.stalls, cost.int_div - 1);
    }

    #[test]
    fn bht_learns_a_biased_branch() {
        let cost = CostModel::default();
        let mut s = stats();
        let mut tm = InOrderPipeline::new(&cost);
        for _ in 0..50 {
            tm.branch(&mut s, 9, true, cost.branch_taken, NO_REG);
        }
        // Initialized weakly-not-taken: one miss, then the counter saturates.
        assert_eq!(s.mispredicts, 1);
        assert_eq!(s.predicted, 49);
        assert_eq!(s.mispredicts + s.predicted, 50);

        // An alternating branch at a different site keeps missing.
        let mut s2 = stats();
        let mut tm2 = InOrderPipeline::new(&cost);
        for i in 0..50 {
            tm2.branch(&mut s2, 10, i % 2 == 0, cost.branch_taken, NO_REG);
        }
        assert!(s2.mispredicts > s2.predicted);
    }

    #[test]
    fn calls_drain_and_finish_flushes() {
        let cost = CostModel::default();
        let mut s = stats();
        let mut tm = InOrderPipeline::new(&cost);
        tm.op(&mut s, LatClass::Load, cost.load, 0, NO_REG, NO_REG);
        let before = s.cycles;
        tm.call(&mut s, cost.call);
        // The call waits for the load's writeback (issue 1, ready 4): the
        // natural slot is 2, so it stalls 2 cycles, then pays the overhead.
        assert_eq!(s.cycles, before + 2 + cost.call);
        let drained = s.cycles;
        tm.finish(&mut s);
        assert_eq!(s.cycles, drained, "post-call board is clean");
        // finish() after an in-flight load pays the outstanding writeback.
        let mut s3 = stats();
        let mut tm3 = InOrderPipeline::new(&cost);
        tm3.op(&mut s3, LatClass::Load, cost.load, 0, NO_REG, NO_REG);
        tm3.finish(&mut s3);
        assert_eq!(s3.cycles, 1 + cost.load);
    }

    #[test]
    fn every_instruction_costs_at_least_one_cycle() {
        let cost = CostModel::default();
        let mut s = stats();
        let mut tm = InOrderPipeline::new(&cost);
        let mut retired = 0u64;
        for i in 0..200u32 {
            tm.op(&mut s, LatClass::Alu, 1, i % 8, (i + 1) % 8, NO_REG);
            retired += 1;
            if i % 7 == 0 {
                tm.branch(&mut s, i, i % 3 == 0, 2, i % 8);
                retired += 1;
            }
        }
        tm.finish(&mut s);
        assert!(s.cycles >= retired);
    }
}
