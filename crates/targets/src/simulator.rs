//! Cycle-cost simulator for the virtual ISA.
//!
//! The simulator stands in for the real x86/UltraSparc/PowerPC/ARM/Cell
//! hardware of the paper: it executes machine code produced by the online
//! compiler against a flat byte memory and charges each instruction the cost
//! given by the target's [`CostModel`](crate::CostModel). Functional results
//! must match the bytecode reference interpreter (this is checked by the
//! cross-crate differential tests); cycle counts are what the experiments
//! report.

use crate::desc::TargetDesc;
use crate::mcode::{
    AluOp, CmpPred, FpuOp, MFunction, MInst, MProgram, PReg, RedOp, RegClass, Width,
};
use crate::timing::{FlatCost, InOrderPipeline, LatClass, TimingKind, TimingModel, NO_REG};
use std::error::Error;
use std::fmt;

/// Default instruction budget before a run is aborted as runaway.
pub const DEFAULT_SIM_FUEL: u64 = 1_000_000_000;

/// Maximum call depth.
pub const MAX_CALL_DEPTH: usize = 256;

/// A scalar value passed to or returned from a simulated function.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MachineValue {
    /// Integer (or pointer) value.
    Int(i64),
    /// Floating-point value.
    Float(f64),
}

impl MachineValue {
    /// The integer payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is a float.
    pub fn as_int(self) -> i64 {
        match self {
            MachineValue::Int(v) => v,
            MachineValue::Float(v) => panic!("expected integer, found float {v}"),
        }
    }

    /// The floating-point payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is an integer.
    pub fn as_float(self) -> f64 {
        match self {
            MachineValue::Float(v) => v,
            MachineValue::Int(v) => panic!("expected float, found integer {v}"),
        }
    }
}

/// An error raised during simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The entry function does not exist.
    UnknownFunction(String),
    /// Wrong number of arguments for the entry function.
    BadArgumentCount {
        /// Expected parameter count.
        expected: usize,
        /// Supplied argument count.
        found: usize,
    },
    /// A register index exceeds the target's register file.
    BadRegister {
        /// The offending register.
        reg: String,
        /// The function being executed.
        function: String,
    },
    /// A vector instruction was executed on a target without a SIMD unit.
    NoVectorUnit {
        /// The function being executed.
        function: String,
    },
    /// Runtime fault (out-of-bounds access, division by zero, bad slot, ...).
    Trap(String),
    /// The instruction budget was exhausted.
    OutOfFuel,
    /// Execution was cancelled cooperatively: the caller armed a
    /// cancellation token on the run's `FramePool` and flipped it (the
    /// serving tier does this when a request's deadline passes). Unlike a
    /// trap this says nothing about the program — the same run without
    /// cancellation may have completed normally.
    Cancelled,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownFunction(n) => write!(f, "unknown function {n}"),
            SimError::BadArgumentCount { expected, found } => {
                write!(f, "expected {expected} arguments, found {found}")
            }
            SimError::BadRegister { reg, function } => {
                write!(f, "register {reg} out of range in {function}")
            }
            SimError::NoVectorUnit { function } => {
                write!(
                    f,
                    "vector instruction on a scalar-only target in {function}"
                )
            }
            SimError::Trap(msg) => write!(f, "trap: {msg}"),
            SimError::OutOfFuel => write!(f, "instruction budget exhausted"),
            SimError::Cancelled => write!(f, "execution cancelled"),
        }
    }
}

impl Error for SimError {}

/// Execution statistics of one simulated run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Total cost-model cycles.
    pub cycles: u64,
    /// Machine instructions executed.
    pub instructions: u64,
    /// Scalar and vector loads executed.
    pub loads: u64,
    /// Scalar and vector stores executed.
    pub stores: u64,
    /// Spill stores executed.
    pub spill_stores: u64,
    /// Spill reloads executed.
    pub spill_reloads: u64,
    /// Branches executed (conditional and unconditional).
    pub branches: u64,
    /// Vector instructions executed.
    pub vector_ops: u64,
    /// Pipeline hazard stall cycles (RAW + structural). Timing-class: always
    /// zero under the flat model, so whole-struct equality against flat
    /// references still pins the historical accounting.
    pub stalls: u64,
    /// Mispredicted conditional branches (timing-class; zero under flat).
    pub mispredicts: u64,
    /// Correctly predicted branches, including statically-predicted
    /// unconditional jumps (timing-class; zero under flat). Under the
    /// in-order model `predicted + mispredicts == branches`.
    pub predicted: u64,
}

/// Scoreboard key of a register for the timing model: `(index << 1) | float`.
/// Vector registers are not scoreboarded (see
/// [`InOrderPipeline`](crate::timing::InOrderPipeline)).
fn tkey(r: PReg) -> u32 {
    match r.class {
        RegClass::Int => u32::from(r.index) << 1,
        RegClass::Float => (u32::from(r.index) << 1) | 1,
        RegClass::Vec => NO_REG,
    }
}

#[derive(Debug, Clone, PartialEq)]
enum SlotValue {
    Empty,
    Int(i64),
    Float(f64),
    Vec(Vec<u8>),
}

struct Frame {
    int: Vec<i64>,
    float: Vec<f64>,
    vec: Vec<Vec<u8>>,
    slots: Vec<SlotValue>,
}

pub(crate) fn normalize(width: Width, signed: bool, v: i64) -> i64 {
    match (width, signed) {
        (Width::W8, true) => v as i8 as i64,
        (Width::W8, false) => i64::from(v as u8),
        (Width::W16, true) => v as i16 as i64,
        (Width::W16, false) => i64::from(v as u16),
        (Width::W32, true) => v as i32 as i64,
        (Width::W32, false) => i64::from(v as u32),
        (Width::W64, _) => v,
    }
}

/// Cold, out of line: keeps the `String` construction out of every ALU
/// handler's frame.
#[cold]
#[inline(never)]
fn zero_denominator(what: &str) -> SimError {
    SimError::Trap(format!("integer {what} by zero"))
}

pub(crate) fn alu(op: AluOp, width: Width, signed: bool, a: i64, b: i64) -> Result<i64, SimError> {
    let r = match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Div => {
            if b == 0 {
                return Err(zero_denominator("division"));
            }
            if signed {
                a.wrapping_div(b)
            } else {
                ((a as u64) / (b as u64)) as i64
            }
        }
        AluOp::Rem => {
            if b == 0 {
                return Err(zero_denominator("remainder"));
            }
            if signed {
                a.wrapping_rem(b)
            } else {
                ((a as u64) % (b as u64)) as i64
            }
        }
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        // Counts mask modulo 64 — `b as u32` then `wrapping_shl`'s `& 63` —
        // mirroring the bytecode interpreter's `eval_bin` exactly (negative
        // and >= 64 counts reduce to `b & 63`, results then normalize to the
        // instruction width below).
        AluOp::Shl => a.wrapping_shl(b as u32),
        AluOp::Shr => {
            if signed {
                a.wrapping_shr(b as u32)
            } else {
                ((a as u64).wrapping_shr(b as u32)) as i64
            }
        }
        AluOp::Min => {
            if signed {
                a.min(b)
            } else {
                ((a as u64).min(b as u64)) as i64
            }
        }
        AluOp::Max => {
            if signed {
                a.max(b)
            } else {
                ((a as u64).max(b as u64)) as i64
            }
        }
    };
    Ok(normalize(width, signed, r))
}

pub(crate) fn fpu(op: FpuOp, double: bool, a: f64, b: f64) -> f64 {
    let r = match op {
        FpuOp::Add => a + b,
        FpuOp::Sub => a - b,
        FpuOp::Mul => a * b,
        FpuOp::Div => a / b,
        FpuOp::Min => a.min(b),
        FpuOp::Max => a.max(b),
    };
    if double {
        r
    } else {
        f64::from(r as f32)
    }
}

pub(crate) fn compare<T: PartialOrd>(pred: CmpPred, a: T, b: T) -> i64 {
    let r = match pred {
        CmpPred::Eq => a == b,
        CmpPred::Ne => a != b,
        CmpPred::Lt => a < b,
        CmpPred::Le => a <= b,
        CmpPred::Gt => a > b,
        CmpPred::Ge => a >= b,
    };
    i64::from(r)
}

/// The cycle-cost simulator for one target.
///
/// Since the pre-decoded execution representation landed
/// ([`PreparedProgram`](crate::PreparedProgram)), this type is a thin wrapper
/// that prepares the program on the fly — once, on the first
/// [`Simulator::run`] — and then drives the flat program-counter loop. The
/// original block-walking interpreter survives as
/// [`Simulator::run_legacy`]: it is the semantic reference the differential
/// tests compare the prepared path against, and the "cold" side of the
/// simulator microbenchmark.
///
/// # Examples
///
/// ```
/// use splitc_targets::{
///     MachineValue, MBlock, MFunction, MInst, MProgram, PReg, Simulator, TargetDesc, Width,
///     AluOp,
/// };
///
/// // fn add1(r0) { r1 = 1; r0 = r0 + r1; return r0 }
/// let f = MFunction {
///     name: "add1".into(),
///     params: vec![PReg::int(0)],
///     blocks: vec![MBlock {
///         insts: vec![
///             MInst::Imm { dst: PReg::int(1), value: 1 },
///             MInst::IntOp {
///                 op: AluOp::Add, width: Width::W32, signed: true,
///                 dst: PReg::int(0), lhs: PReg::int(0), rhs: PReg::int(1),
///             },
///             MInst::Ret { value: Some(PReg::int(0)) },
///         ],
///     }],
///     num_slots: 0,
/// };
/// let program = MProgram { name: "demo".into(), functions: vec![f] };
/// let target = TargetDesc::x86_sse();
/// let mut sim = Simulator::new(&program, &target);
/// let mut mem = vec![0u8; 64];
/// let out = sim.run("add1", &[MachineValue::Int(41)], &mut mem).unwrap();
/// assert_eq!(out, Some(MachineValue::Int(42)));
/// assert!(sim.stats().cycles > 0);
/// ```
#[derive(Debug)]
pub struct Simulator<'p> {
    program: &'p MProgram,
    target: &'p TargetDesc,
    fuel: u64,
    stats: SimStats,
    /// Pre-decoded form, built lazily by the first [`Simulator::run`].
    prepared: Option<crate::exec::PreparedProgram>,
    pool: crate::exec::FramePool,
}

impl<'p> Simulator<'p> {
    /// Create a simulator for `program` on `target`.
    pub fn new(program: &'p MProgram, target: &'p TargetDesc) -> Self {
        Simulator {
            program,
            target,
            fuel: DEFAULT_SIM_FUEL,
            stats: SimStats::default(),
            prepared: None,
            pool: crate::exec::FramePool::new(),
        }
    }

    /// Override the instruction budget.
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }

    /// Statistics from the most recent [`Simulator::run`] /
    /// [`Simulator::run_legacy`].
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Execute `func` with `args` against `mem`.
    ///
    /// Prepares the program for the target on the first call (see
    /// [`PreparedProgram`](crate::PreparedProgram)) and then drives the flat
    /// pre-decoded loop; subsequent runs reuse both the prepared code and the
    /// frame pool. Results, traps and statistics are bit-identical to
    /// [`Simulator::run_legacy`].
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] on unknown functions, register-file violations,
    /// vector use on scalar-only targets, runtime traps or fuel exhaustion.
    pub fn run(
        &mut self,
        func: &str,
        args: &[MachineValue],
        mem: &mut [u8],
    ) -> Result<Option<MachineValue>, SimError> {
        if self.prepared.is_none() {
            self.prepared = Some(crate::exec::PreparedProgram::prepare(
                self.program,
                self.target,
            )?);
        }
        let prepared = self.prepared.as_ref().expect("prepared above");
        prepared.run(func, args, mem, &mut self.pool, self.fuel, &mut self.stats)
    }

    /// Execute `func` with `args` against `mem` using the original
    /// block-walking interpreter (no preparation, per-instruction decode).
    ///
    /// This is the semantic reference: the differential suites assert the
    /// prepared path agrees with it bit-for-bit, and the simulator
    /// microbenchmark uses it as the "cold" baseline.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::run`].
    pub fn run_legacy(
        &mut self,
        func: &str,
        args: &[MachineValue],
        mem: &mut [u8],
    ) -> Result<Option<MachineValue>, SimError> {
        self.stats = SimStats::default();
        let mut fuel = self.fuel;
        match self.target.timing {
            TimingKind::Flat => {
                let mut tm = FlatCost;
                let r = self.call(func, args, mem, &mut fuel, 0, &mut tm);
                tm.finish(&mut self.stats);
                r
            }
            TimingKind::InOrder => {
                let mut tm = InOrderPipeline::new(&self.target.cost);
                let r = self.call(func, args, mem, &mut fuel, 0, &mut tm);
                tm.finish(&mut self.stats);
                r
            }
        }
    }

    fn lanes(&self, elem: Width) -> usize {
        (self.target.vector_bytes() / elem.bytes()) as usize
    }

    fn new_frame(&self, f: &MFunction) -> Frame {
        Frame {
            int: vec![0; usize::from(self.target.int_regs)],
            float: vec![0.0; usize::from(self.target.float_regs)],
            // Scalar-only targets get an explicitly empty register file — no
            // per-call vector bookkeeping at all. (The prepared path goes
            // further and pools one flat buffer; see `exec::FramePool`.)
            vec: match self.target.vector {
                Some(v) => {
                    vec![vec![0u8; self.target.vector_bytes() as usize]; usize::from(v.regs)]
                }
                None => Vec::new(),
            },
            slots: vec![SlotValue::Empty; f.num_slots as usize],
        }
    }

    fn check_reg(&self, frame: &Frame, r: PReg, fname: &str) -> Result<(), SimError> {
        let ok = match r.class {
            RegClass::Int => usize::from(r.index) < frame.int.len(),
            RegClass::Float => usize::from(r.index) < frame.float.len(),
            RegClass::Vec => usize::from(r.index) < frame.vec.len(),
        };
        if ok {
            Ok(())
        } else {
            Err(SimError::BadRegister {
                reg: r.to_string(),
                function: fname.to_owned(),
            })
        }
    }

    #[allow(clippy::too_many_lines)]
    fn call<T: TimingModel>(
        &mut self,
        name: &str,
        args: &[MachineValue],
        mem: &mut [u8],
        fuel: &mut u64,
        depth: usize,
        tm: &mut T,
    ) -> Result<Option<MachineValue>, SimError> {
        if depth > MAX_CALL_DEPTH {
            return Err(SimError::Trap("call depth exceeded".into()));
        }
        let f = self
            .program
            .function(name)
            .ok_or_else(|| SimError::UnknownFunction(name.to_owned()))?;
        if f.params.len() != args.len() {
            return Err(SimError::BadArgumentCount {
                expected: f.params.len(),
                found: args.len(),
            });
        }
        let mut frame = self.new_frame(f);
        for (preg, value) in f.params.iter().zip(args) {
            self.check_reg(&frame, *preg, &f.name)?;
            match (preg.class, value) {
                (RegClass::Int, MachineValue::Int(v)) => frame.int[usize::from(preg.index)] = *v,
                (RegClass::Float, MachineValue::Float(v)) => {
                    frame.float[usize::from(preg.index)] = *v;
                }
                (RegClass::Int, MachineValue::Float(v)) => {
                    frame.int[usize::from(preg.index)] = *v as i64;
                }
                (RegClass::Float, MachineValue::Int(v)) => {
                    frame.float[usize::from(preg.index)] = *v as f64;
                }
                (RegClass::Vec, _) => {
                    return Err(SimError::Trap(
                        "vector registers cannot be parameters".into(),
                    ));
                }
            }
        }

        let cost = &self.target.cost;
        let mut block = 0usize;
        let mut index = 0usize;
        loop {
            if *fuel == 0 {
                return Err(SimError::OutOfFuel);
            }
            *fuel -= 1;
            let inst = f
                .blocks
                .get(block)
                .and_then(|b| b.insts.get(index))
                .ok_or_else(|| {
                    SimError::Trap(format!("fell off the end of block {block} in {name}"))
                })?
                .clone();
            index += 1;
            self.stats.instructions += 1;

            macro_rules! geti {
                ($r:expr) => {{
                    self.check_reg(&frame, $r, &f.name)?;
                    frame.int[usize::from($r.index)]
                }};
            }
            macro_rules! getf {
                ($r:expr) => {{
                    self.check_reg(&frame, $r, &f.name)?;
                    frame.float[usize::from($r.index)]
                }};
            }

            match inst {
                MInst::Imm { dst, value } => {
                    self.check_reg(&frame, dst, &f.name)?;
                    frame.int[usize::from(dst.index)] = value;
                    tm.op(
                        &mut self.stats,
                        LatClass::Mov,
                        cost.mov,
                        tkey(dst),
                        NO_REG,
                        NO_REG,
                    );
                }
                MInst::FImm { dst, value } => {
                    self.check_reg(&frame, dst, &f.name)?;
                    frame.float[usize::from(dst.index)] = value;
                    tm.op(
                        &mut self.stats,
                        LatClass::Mov,
                        cost.mov,
                        tkey(dst),
                        NO_REG,
                        NO_REG,
                    );
                }
                MInst::Mov { dst, src } => {
                    self.check_reg(&frame, dst, &f.name)?;
                    self.check_reg(&frame, src, &f.name)?;
                    match dst.class {
                        RegClass::Int => {
                            frame.int[usize::from(dst.index)] = frame.int[usize::from(src.index)]
                        }
                        RegClass::Float => {
                            frame.float[usize::from(dst.index)] =
                                frame.float[usize::from(src.index)];
                        }
                        RegClass::Vec => {
                            let v = frame.vec[usize::from(src.index)].clone();
                            frame.vec[usize::from(dst.index)] = v;
                        }
                    }
                    tm.op(
                        &mut self.stats,
                        LatClass::Mov,
                        cost.mov,
                        tkey(dst),
                        tkey(src),
                        NO_REG,
                    );
                }
                MInst::IntOp {
                    op,
                    width,
                    signed,
                    dst,
                    lhs,
                    rhs,
                } => {
                    let a = geti!(lhs);
                    let b = geti!(rhs);
                    self.check_reg(&frame, dst, &f.name)?;
                    frame.int[usize::from(dst.index)] = alu(op, width, signed, a, b)?;
                    let (class, c) = match op {
                        AluOp::Mul => (LatClass::Mul, cost.int_mul),
                        AluOp::Div | AluOp::Rem => (LatClass::Div, cost.int_div),
                        _ => (LatClass::Alu, cost.int_op),
                    };
                    tm.op(&mut self.stats, class, c, tkey(dst), tkey(lhs), tkey(rhs));
                }
                MInst::FloatOp {
                    op,
                    double,
                    dst,
                    lhs,
                    rhs,
                } => {
                    let a = getf!(lhs);
                    let b = getf!(rhs);
                    self.check_reg(&frame, dst, &f.name)?;
                    frame.float[usize::from(dst.index)] = fpu(op, double, a, b);
                    let (class, c) = match op {
                        FpuOp::Mul => (LatClass::FpMul, cost.fp_mul),
                        FpuOp::Div => (LatClass::FpDiv, cost.fp_div),
                        _ => (LatClass::FpAdd, cost.fp_add),
                    };
                    tm.op(&mut self.stats, class, c, tkey(dst), tkey(lhs), tkey(rhs));
                }
                MInst::IntNeg { width, dst, src } => {
                    let v = geti!(src);
                    self.check_reg(&frame, dst, &f.name)?;
                    frame.int[usize::from(dst.index)] = normalize(width, true, v.wrapping_neg());
                    tm.op(
                        &mut self.stats,
                        LatClass::Alu,
                        cost.int_op,
                        tkey(dst),
                        tkey(src),
                        NO_REG,
                    );
                }
                MInst::IntNot { width, dst, src } => {
                    let v = geti!(src);
                    self.check_reg(&frame, dst, &f.name)?;
                    frame.int[usize::from(dst.index)] = normalize(width, false, !v);
                    tm.op(
                        &mut self.stats,
                        LatClass::Alu,
                        cost.int_op,
                        tkey(dst),
                        tkey(src),
                        NO_REG,
                    );
                }
                MInst::FloatNeg { double, dst, src } => {
                    let v = getf!(src);
                    self.check_reg(&frame, dst, &f.name)?;
                    frame.float[usize::from(dst.index)] =
                        if double { -v } else { f64::from(-(v as f32)) };
                    tm.op(
                        &mut self.stats,
                        LatClass::FpAdd,
                        cost.fp_add,
                        tkey(dst),
                        tkey(src),
                        NO_REG,
                    );
                }
                MInst::IntCmp {
                    pred,
                    width,
                    signed,
                    dst,
                    lhs,
                    rhs,
                } => {
                    let a = normalize(width, signed, geti!(lhs));
                    let b = normalize(width, signed, geti!(rhs));
                    self.check_reg(&frame, dst, &f.name)?;
                    frame.int[usize::from(dst.index)] = if signed {
                        compare(pred, a, b)
                    } else {
                        compare(pred, a as u64, b as u64)
                    };
                    tm.op(
                        &mut self.stats,
                        LatClass::Alu,
                        cost.int_op,
                        tkey(dst),
                        tkey(lhs),
                        tkey(rhs),
                    );
                }
                MInst::FloatCmp {
                    pred,
                    double,
                    dst,
                    lhs,
                    rhs,
                } => {
                    let a = getf!(lhs);
                    let b = getf!(rhs);
                    let (a, b) = if double {
                        (a, b)
                    } else {
                        (f64::from(a as f32), f64::from(b as f32))
                    };
                    self.check_reg(&frame, dst, &f.name)?;
                    frame.int[usize::from(dst.index)] = if a.partial_cmp(&b).is_none() {
                        i64::from(pred == CmpPred::Ne)
                    } else {
                        compare(pred, a, b)
                    };
                    tm.op(
                        &mut self.stats,
                        LatClass::FpAdd,
                        cost.fp_add,
                        tkey(dst),
                        tkey(lhs),
                        tkey(rhs),
                    );
                }
                MInst::Select {
                    dst,
                    cond,
                    if_true,
                    if_false,
                } => {
                    let c = geti!(cond) != 0;
                    self.check_reg(&frame, dst, &f.name)?;
                    self.check_reg(&frame, if_true, &f.name)?;
                    self.check_reg(&frame, if_false, &f.name)?;
                    let chosen = if c { if_true } else { if_false };
                    match dst.class {
                        RegClass::Int => {
                            frame.int[usize::from(dst.index)] =
                                frame.int[usize::from(chosen.index)];
                        }
                        RegClass::Float => {
                            frame.float[usize::from(dst.index)] =
                                frame.float[usize::from(chosen.index)];
                        }
                        RegClass::Vec => {
                            let v = frame.vec[usize::from(chosen.index)].clone();
                            frame.vec[usize::from(dst.index)] = v;
                        }
                    }
                    tm.op(
                        &mut self.stats,
                        LatClass::Mov,
                        cost.mov,
                        tkey(dst),
                        tkey(cond),
                        tkey(chosen),
                    );
                }
                MInst::IntToFloat {
                    signed,
                    double,
                    dst,
                    src,
                } => {
                    let v = geti!(src);
                    self.check_reg(&frame, dst, &f.name)?;
                    let x = if signed { v as f64 } else { v as u64 as f64 };
                    frame.float[usize::from(dst.index)] =
                        if double { x } else { f64::from(x as f32) };
                    tm.op(
                        &mut self.stats,
                        LatClass::Convert,
                        cost.convert,
                        tkey(dst),
                        tkey(src),
                        NO_REG,
                    );
                }
                MInst::FloatToInt {
                    width,
                    signed,
                    dst,
                    src,
                } => {
                    let v = getf!(src);
                    self.check_reg(&frame, dst, &f.name)?;
                    frame.int[usize::from(dst.index)] = normalize(width, signed, v as i64);
                    tm.op(
                        &mut self.stats,
                        LatClass::Convert,
                        cost.convert,
                        tkey(dst),
                        tkey(src),
                        NO_REG,
                    );
                }
                MInst::FloatCvt {
                    to_double,
                    dst,
                    src,
                } => {
                    let v = getf!(src);
                    self.check_reg(&frame, dst, &f.name)?;
                    frame.float[usize::from(dst.index)] =
                        if to_double { v } else { f64::from(v as f32) };
                    tm.op(
                        &mut self.stats,
                        LatClass::Convert,
                        cost.convert,
                        tkey(dst),
                        tkey(src),
                        NO_REG,
                    );
                }
                MInst::IntResize {
                    width,
                    signed,
                    dst,
                    src,
                } => {
                    let v = geti!(src);
                    self.check_reg(&frame, dst, &f.name)?;
                    frame.int[usize::from(dst.index)] = normalize(width, signed, v);
                    tm.op(
                        &mut self.stats,
                        LatClass::Alu,
                        cost.int_op,
                        tkey(dst),
                        tkey(src),
                        NO_REG,
                    );
                }
                MInst::Load {
                    width,
                    float,
                    signed,
                    dst,
                    base,
                    offset,
                } => {
                    let addr = geti!(base).wrapping_add(offset);
                    let raw = read_mem(mem, addr, width.bytes())?;
                    self.check_reg(&frame, dst, &f.name)?;
                    if float {
                        let x = match width {
                            Width::W32 => f64::from(f32::from_bits(raw as u32)),
                            _ => f64::from_bits(raw),
                        };
                        frame.float[usize::from(dst.index)] = x;
                    } else {
                        frame.int[usize::from(dst.index)] = normalize(width, signed, raw as i64);
                    }
                    tm.op(
                        &mut self.stats,
                        LatClass::Load,
                        cost.load,
                        tkey(dst),
                        tkey(base),
                        NO_REG,
                    );
                    self.stats.loads += 1;
                }
                MInst::Store {
                    width,
                    float,
                    base,
                    offset,
                    src,
                } => {
                    let addr = geti!(base).wrapping_add(offset);
                    let raw = if float {
                        let v = getf!(src);
                        match width {
                            Width::W32 => u64::from((v as f32).to_bits()),
                            _ => v.to_bits(),
                        }
                    } else {
                        geti!(src) as u64
                    };
                    write_mem(mem, addr, width.bytes(), raw)?;
                    tm.op(
                        &mut self.stats,
                        LatClass::Store,
                        cost.store,
                        NO_REG,
                        tkey(base),
                        tkey(src),
                    );
                    self.stats.stores += 1;
                }
                MInst::VecLoad { dst, base, offset } => {
                    self.require_simd(&f.name)?;
                    let addr = geti!(base).wrapping_add(offset);
                    let width = self.target.vector_bytes();
                    check_range(mem, addr, width)?;
                    self.check_reg(&frame, dst, &f.name)?;
                    frame.vec[usize::from(dst.index)]
                        .copy_from_slice(&mem[addr as usize..(addr as usize + width as usize)]);
                    tm.op(
                        &mut self.stats,
                        LatClass::VecLoad,
                        cost.vec_load,
                        tkey(dst),
                        tkey(base),
                        NO_REG,
                    );
                    self.stats.loads += 1;
                    self.stats.vector_ops += 1;
                }
                MInst::VecStore { base, offset, src } => {
                    self.require_simd(&f.name)?;
                    let addr = geti!(base).wrapping_add(offset);
                    let width = self.target.vector_bytes();
                    check_range(mem, addr, width)?;
                    self.check_reg(&frame, src, &f.name)?;
                    let data = frame.vec[usize::from(src.index)].clone();
                    mem[addr as usize..(addr as usize + width as usize)].copy_from_slice(&data);
                    tm.op(
                        &mut self.stats,
                        LatClass::VecStore,
                        cost.vec_store,
                        NO_REG,
                        tkey(base),
                        tkey(src),
                    );
                    self.stats.stores += 1;
                    self.stats.vector_ops += 1;
                }
                MInst::VecSplatInt { elem, dst, src } => {
                    self.require_simd(&f.name)?;
                    let v = geti!(src);
                    self.check_reg(&frame, dst, &f.name)?;
                    let lanes = self.lanes(elem);
                    let reg = &mut frame.vec[usize::from(dst.index)];
                    for lane in 0..lanes {
                        write_lane_int(reg, lane, elem, v);
                    }
                    tm.op(
                        &mut self.stats,
                        LatClass::Vec,
                        cost.vec_op,
                        tkey(dst),
                        tkey(src),
                        NO_REG,
                    );
                    self.stats.vector_ops += 1;
                }
                MInst::VecSplatFloat { elem, dst, src } => {
                    self.require_simd(&f.name)?;
                    let v = getf!(src);
                    self.check_reg(&frame, dst, &f.name)?;
                    let lanes = self.lanes(elem);
                    let reg = &mut frame.vec[usize::from(dst.index)];
                    for lane in 0..lanes {
                        write_lane_float(reg, lane, elem, v);
                    }
                    tm.op(
                        &mut self.stats,
                        LatClass::Vec,
                        cost.vec_op,
                        tkey(dst),
                        tkey(src),
                        NO_REG,
                    );
                    self.stats.vector_ops += 1;
                }
                MInst::VecIntOp {
                    op,
                    elem,
                    signed,
                    dst,
                    lhs,
                    rhs,
                } => {
                    self.require_simd(&f.name)?;
                    self.check_reg(&frame, dst, &f.name)?;
                    self.check_reg(&frame, lhs, &f.name)?;
                    self.check_reg(&frame, rhs, &f.name)?;
                    let lanes = self.lanes(elem);
                    let a = frame.vec[usize::from(lhs.index)].clone();
                    let b = frame.vec[usize::from(rhs.index)].clone();
                    let out = &mut frame.vec[usize::from(dst.index)];
                    for lane in 0..lanes {
                        let x = read_lane_int(&a, lane, elem, signed);
                        let y = read_lane_int(&b, lane, elem, signed);
                        write_lane_int(out, lane, elem, alu(op, elem, signed, x, y)?);
                    }
                    tm.op(
                        &mut self.stats,
                        LatClass::Vec,
                        cost.vec_op,
                        tkey(dst),
                        tkey(lhs),
                        tkey(rhs),
                    );
                    self.stats.vector_ops += 1;
                }
                MInst::VecFloatOp {
                    op,
                    elem,
                    dst,
                    lhs,
                    rhs,
                } => {
                    self.require_simd(&f.name)?;
                    self.check_reg(&frame, dst, &f.name)?;
                    self.check_reg(&frame, lhs, &f.name)?;
                    self.check_reg(&frame, rhs, &f.name)?;
                    let lanes = self.lanes(elem);
                    let a = frame.vec[usize::from(lhs.index)].clone();
                    let b = frame.vec[usize::from(rhs.index)].clone();
                    let out = &mut frame.vec[usize::from(dst.index)];
                    for lane in 0..lanes {
                        let x = read_lane_float(&a, lane, elem);
                        let y = read_lane_float(&b, lane, elem);
                        write_lane_float(out, lane, elem, fpu(op, elem == Width::W64, x, y));
                    }
                    tm.op(
                        &mut self.stats,
                        LatClass::Vec,
                        cost.vec_op,
                        tkey(dst),
                        tkey(lhs),
                        tkey(rhs),
                    );
                    self.stats.vector_ops += 1;
                }
                MInst::VecReduceInt {
                    op,
                    elem,
                    signed,
                    dst,
                    src,
                } => {
                    self.require_simd(&f.name)?;
                    self.check_reg(&frame, dst, &f.name)?;
                    self.check_reg(&frame, src, &f.name)?;
                    let lanes = self.lanes(elem);
                    let reg = frame.vec[usize::from(src.index)].clone();
                    let mut acc = read_lane_int(&reg, 0, elem, signed);
                    for lane in 1..lanes {
                        let x = read_lane_int(&reg, lane, elem, signed);
                        acc = match op {
                            RedOp::Add => alu(AluOp::Add, elem, signed, acc, x)?,
                            RedOp::Min => alu(AluOp::Min, elem, signed, acc, x)?,
                            RedOp::Max => alu(AluOp::Max, elem, signed, acc, x)?,
                        };
                    }
                    frame.int[usize::from(dst.index)] = acc;
                    tm.op(
                        &mut self.stats,
                        LatClass::VecReduce,
                        cost.vec_reduce,
                        tkey(dst),
                        tkey(src),
                        NO_REG,
                    );
                    self.stats.vector_ops += 1;
                }
                MInst::VecReduceFloat { op, elem, dst, src } => {
                    self.require_simd(&f.name)?;
                    self.check_reg(&frame, dst, &f.name)?;
                    self.check_reg(&frame, src, &f.name)?;
                    let lanes = self.lanes(elem);
                    let reg = frame.vec[usize::from(src.index)].clone();
                    let mut acc = read_lane_float(&reg, 0, elem);
                    for lane in 1..lanes {
                        let x = read_lane_float(&reg, lane, elem);
                        acc = match op {
                            RedOp::Add => fpu(FpuOp::Add, elem == Width::W64, acc, x),
                            RedOp::Min => fpu(FpuOp::Min, elem == Width::W64, acc, x),
                            RedOp::Max => fpu(FpuOp::Max, elem == Width::W64, acc, x),
                        };
                    }
                    frame.float[usize::from(dst.index)] = acc;
                    tm.op(
                        &mut self.stats,
                        LatClass::VecReduce,
                        cost.vec_reduce,
                        tkey(dst),
                        tkey(src),
                        NO_REG,
                    );
                    self.stats.vector_ops += 1;
                }
                MInst::Spill { slot, src } => {
                    self.check_reg(&frame, src, &f.name)?;
                    let value = match src.class {
                        RegClass::Int => SlotValue::Int(frame.int[usize::from(src.index)]),
                        RegClass::Float => SlotValue::Float(frame.float[usize::from(src.index)]),
                        RegClass::Vec => SlotValue::Vec(frame.vec[usize::from(src.index)].clone()),
                    };
                    *frame
                        .slots
                        .get_mut(slot as usize)
                        .ok_or_else(|| SimError::Trap(format!("spill to invalid slot {slot}")))? =
                        value;
                    tm.op(
                        &mut self.stats,
                        LatClass::SpillStore,
                        cost.spill_store,
                        NO_REG,
                        tkey(src),
                        NO_REG,
                    );
                    self.stats.spill_stores += 1;
                }
                MInst::Reload { slot, dst } => {
                    self.check_reg(&frame, dst, &f.name)?;
                    let value = frame.slots.get(slot as usize).cloned().ok_or_else(|| {
                        SimError::Trap(format!("reload from invalid slot {slot}"))
                    })?;
                    match (dst.class, value) {
                        (RegClass::Int, SlotValue::Int(v)) => frame.int[usize::from(dst.index)] = v,
                        (RegClass::Float, SlotValue::Float(v)) => {
                            frame.float[usize::from(dst.index)] = v
                        }
                        (RegClass::Vec, SlotValue::Vec(v)) => frame.vec[usize::from(dst.index)] = v,
                        (_, SlotValue::Empty) => {
                            return Err(SimError::Trap(format!(
                                "reload of uninitialized slot {slot}"
                            )));
                        }
                        _ => {
                            return Err(SimError::Trap(format!(
                                "reload class mismatch for slot {slot}"
                            )));
                        }
                    }
                    tm.op(
                        &mut self.stats,
                        LatClass::SpillReload,
                        cost.spill_load,
                        tkey(dst),
                        NO_REG,
                        NO_REG,
                    );
                    self.stats.spill_reloads += 1;
                }
                MInst::Jump { target } => {
                    block = target as usize;
                    index = 0;
                    tm.jump(&mut self.stats, cost.branch_taken);
                    self.stats.branches += 1;
                }
                MInst::BranchNz {
                    cond,
                    then_target,
                    else_target,
                } => {
                    let taken = geti!(cond) != 0;
                    // Predictor site id: the branch's own (block, offset),
                    // captured before the redirect below. Stable within the
                    // legacy walk; predictor state never crosses paths.
                    let site = ((block as u32 & 0xffff) << 16) | ((index as u32 - 1) & 0xffff);
                    block = if taken {
                        then_target as usize
                    } else {
                        else_target as usize
                    };
                    index = 0;
                    let c = if taken {
                        cost.branch_taken
                    } else {
                        cost.branch_not_taken
                    };
                    tm.branch(&mut self.stats, site, taken, c, tkey(cond));
                    self.stats.branches += 1;
                }
                MInst::Call { callee, args, ret } => {
                    let mut argv = Vec::with_capacity(args.len());
                    for a in &args {
                        self.check_reg(&frame, *a, &f.name)?;
                        argv.push(match a.class {
                            RegClass::Int => MachineValue::Int(frame.int[usize::from(a.index)]),
                            RegClass::Float => {
                                MachineValue::Float(frame.float[usize::from(a.index)])
                            }
                            RegClass::Vec => {
                                return Err(SimError::Trap(
                                    "vector call arguments are unsupported".into(),
                                ));
                            }
                        });
                    }
                    tm.call(&mut self.stats, cost.call);
                    let out = self.call(&callee, &argv, mem, fuel, depth + 1, tm)?;
                    if let Some(r) = ret {
                        self.check_reg(&frame, r, &f.name)?;
                        match (r.class, out) {
                            (RegClass::Int, Some(MachineValue::Int(v))) => {
                                frame.int[usize::from(r.index)] = v;
                            }
                            (RegClass::Float, Some(MachineValue::Float(v))) => {
                                frame.float[usize::from(r.index)] = v;
                            }
                            _ => {
                                return Err(SimError::Trap(format!(
                                    "call to {callee} did not produce the expected value"
                                )));
                            }
                        }
                    }
                }
                MInst::Ret { value } => {
                    let src = value.map_or(NO_REG, tkey);
                    tm.op(
                        &mut self.stats,
                        LatClass::Mov,
                        cost.mov,
                        NO_REG,
                        src,
                        NO_REG,
                    );
                    return Ok(match value {
                        Some(r) => {
                            self.check_reg(&frame, r, &f.name)?;
                            Some(match r.class {
                                RegClass::Int => MachineValue::Int(frame.int[usize::from(r.index)]),
                                RegClass::Float => {
                                    MachineValue::Float(frame.float[usize::from(r.index)])
                                }
                                RegClass::Vec => {
                                    return Err(SimError::Trap(
                                        "vector return values are unsupported".into(),
                                    ));
                                }
                            })
                        }
                        None => None,
                    });
                }
            }
        }
    }

    fn require_simd(&self, fname: &str) -> Result<(), SimError> {
        if self.target.has_simd() {
            Ok(())
        } else {
            Err(SimError::NoVectorUnit {
                function: fname.to_owned(),
            })
        }
    }
}

/// Build the trap for a null/negative or out-of-range access. Out of line and
/// cold: the `format!` machinery would otherwise be inlined into every load
/// and store handler, bloating their frames.
#[cold]
#[inline(never)]
pub(crate) fn range_error(mem_len: usize, addr: i64, len: u64) -> SimError {
    if addr <= 0 {
        SimError::Trap(format!("null or negative address {addr}"))
    } else {
        SimError::Trap(format!(
            "out-of-bounds access at {addr}+{len} (memory size {mem_len})"
        ))
    }
}

pub(crate) fn check_range(mem: &[u8], addr: i64, len: u64) -> Result<(), SimError> {
    if addr > 0 && addr as u64 + len <= mem.len() as u64 {
        Ok(())
    } else {
        Err(range_error(mem.len(), addr, len))
    }
}

pub(crate) fn read_mem(mem: &[u8], addr: i64, len: u64) -> Result<u64, SimError> {
    check_range(mem, addr, len)?;
    // SAFETY: `check_range` proved `addr > 0` and `addr + len <= mem.len()`.
    // Reading a fixed width beats the variable-length `copy_from_slice`
    // (a memcpy call) this compiled to before.
    let p = unsafe { mem.as_ptr().add(addr as usize) };
    Ok(unsafe {
        match len {
            1 => u64::from(*p),
            2 => u64::from(u16::from_le_bytes(*p.cast::<[u8; 2]>())),
            4 => u64::from(u32::from_le_bytes(*p.cast::<[u8; 4]>())),
            _ => u64::from_le_bytes(*p.cast::<[u8; 8]>()),
        }
    })
}

pub(crate) fn write_mem(mem: &mut [u8], addr: i64, len: u64, value: u64) -> Result<(), SimError> {
    check_range(mem, addr, len)?;
    let bytes = value.to_le_bytes();
    // SAFETY: as in `read_mem`; widths are 1, 2, 4 or 8 bytes.
    let p = unsafe { mem.as_mut_ptr().add(addr as usize) };
    unsafe {
        match len {
            1 => *p = bytes[0],
            2 => *p.cast::<[u8; 2]>() = [bytes[0], bytes[1]],
            4 => *p.cast::<[u8; 4]>() = [bytes[0], bytes[1], bytes[2], bytes[3]],
            _ => *p.cast::<[u8; 8]>() = bytes,
        }
    }
    Ok(())
}

pub(crate) fn read_lane_int(reg: &[u8], lane: usize, elem: Width, signed: bool) -> i64 {
    let size = elem.bytes() as usize;
    let mut buf = [0u8; 8];
    buf[..size].copy_from_slice(&reg[lane * size..lane * size + size]);
    normalize(elem, signed, u64::from_le_bytes(buf) as i64)
}

pub(crate) fn write_lane_int(reg: &mut [u8], lane: usize, elem: Width, value: i64) {
    let size = elem.bytes() as usize;
    let bytes = (value as u64).to_le_bytes();
    reg[lane * size..lane * size + size].copy_from_slice(&bytes[..size]);
}

pub(crate) fn read_lane_float(reg: &[u8], lane: usize, elem: Width) -> f64 {
    let size = elem.bytes() as usize;
    let mut buf = [0u8; 8];
    buf[..size].copy_from_slice(&reg[lane * size..lane * size + size]);
    match elem {
        Width::W32 => f64::from(f32::from_bits(u64::from_le_bytes(buf) as u32)),
        _ => f64::from_bits(u64::from_le_bytes(buf)),
    }
}

pub(crate) fn write_lane_float(reg: &mut [u8], lane: usize, elem: Width, value: f64) {
    let size = elem.bytes() as usize;
    let raw = match elem {
        Width::W32 => u64::from((value as f32).to_bits()),
        _ => value.to_bits(),
    };
    let bytes = raw.to_le_bytes();
    reg[lane * size..lane * size + size].copy_from_slice(&bytes[..size]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mcode::{MBlock, MFunction};

    fn program(f: MFunction) -> MProgram {
        MProgram {
            name: "test".into(),
            functions: vec![f],
        }
    }

    fn straight(insts: Vec<MInst>, params: Vec<PReg>) -> MProgram {
        program(MFunction {
            name: "f".into(),
            params,
            blocks: vec![MBlock { insts }],
            num_slots: 4,
        })
    }

    #[test]
    fn integer_alu_semantics_match_wrapping_and_signedness() {
        assert_eq!(alu(AluOp::Add, Width::W8, false, 200, 100).unwrap(), 44);
        assert_eq!(alu(AluOp::Div, Width::W32, true, -7, 2).unwrap(), -3);
        assert_eq!(
            alu(AluOp::Div, Width::W32, false, -1i32 as i64 & 0xffff_ffff, 2).unwrap(),
            0x7fff_ffff
        );
        assert_eq!(alu(AluOp::Max, Width::W8, false, 0xf0, 0x10).unwrap(), 0xf0);
        assert_eq!(alu(AluOp::Max, Width::W8, true, -16, 16).unwrap(), 16);
        assert!(alu(AluOp::Div, Width::W32, true, 1, 0).is_err());
    }

    #[test]
    fn float_ops_round_through_f32_when_single_precision() {
        let a = 1.000_000_1_f64;
        let single = fpu(FpuOp::Add, false, a, a);
        let double = fpu(FpuOp::Add, true, a, a);
        assert_ne!(single, double);
        assert_eq!(single, f64::from((a as f32) + (a as f32)));
    }

    #[test]
    fn loads_stores_and_loop_execute_with_costs() {
        // r0 = base pointer, r1 = n; sum *u8 elements into r2 (wrapping at 8 bits).
        let f = MFunction {
            name: "sum".into(),
            params: vec![PReg::int(0), PReg::int(1)],
            blocks: vec![
                MBlock {
                    insts: vec![
                        MInst::Imm {
                            dst: PReg::int(2),
                            value: 0,
                        },
                        MInst::Imm {
                            dst: PReg::int(3),
                            value: 0,
                        },
                        MInst::Jump { target: 1 },
                    ],
                },
                MBlock {
                    insts: vec![
                        MInst::IntCmp {
                            pred: CmpPred::Lt,
                            width: Width::W32,
                            signed: true,
                            dst: PReg::int(4),
                            lhs: PReg::int(3),
                            rhs: PReg::int(1),
                        },
                        MInst::BranchNz {
                            cond: PReg::int(4),
                            then_target: 2,
                            else_target: 3,
                        },
                    ],
                },
                MBlock {
                    insts: vec![
                        MInst::IntOp {
                            op: AluOp::Add,
                            width: Width::W64,
                            signed: true,
                            dst: PReg::int(5),
                            lhs: PReg::int(0),
                            rhs: PReg::int(3),
                        },
                        MInst::Load {
                            width: Width::W8,
                            float: false,
                            signed: false,
                            dst: PReg::int(5),
                            base: PReg::int(5),
                            offset: 0,
                        },
                        MInst::IntOp {
                            op: AluOp::Add,
                            width: Width::W8,
                            signed: false,
                            dst: PReg::int(2),
                            lhs: PReg::int(2),
                            rhs: PReg::int(5),
                        },
                        MInst::Imm {
                            dst: PReg::int(5),
                            value: 1,
                        },
                        MInst::IntOp {
                            op: AluOp::Add,
                            width: Width::W32,
                            signed: true,
                            dst: PReg::int(3),
                            lhs: PReg::int(3),
                            rhs: PReg::int(5),
                        },
                        MInst::Jump { target: 1 },
                    ],
                },
                MBlock {
                    insts: vec![MInst::Ret {
                        value: Some(PReg::int(2)),
                    }],
                },
            ],
            num_slots: 0,
        };
        let p = program(f);
        let target = TargetDesc::x86_sse();
        let mut sim = Simulator::new(&p, &target);
        let mut mem = vec![0u8; 256];
        for i in 0..100u8 {
            mem[16 + i as usize] = i;
        }
        let out = sim
            .run(
                "sum",
                &[MachineValue::Int(16), MachineValue::Int(100)],
                &mut mem,
            )
            .unwrap();
        assert_eq!(
            out,
            Some(MachineValue::Int(i64::from((0..100u32).sum::<u32>() as u8)))
        );
        let stats = sim.stats();
        assert_eq!(stats.loads, 100);
        assert!(stats.cycles > stats.instructions);
        assert!(stats.branches >= 101);
    }

    #[test]
    fn vector_ops_work_on_simd_targets_and_trap_on_scalar_targets() {
        let insts = vec![
            MInst::VecLoad {
                dst: PReg::vec(0),
                base: PReg::int(0),
                offset: 0,
            },
            MInst::VecIntOp {
                op: AluOp::Add,
                elem: Width::W8,
                signed: false,
                dst: PReg::vec(0),
                lhs: PReg::vec(0),
                rhs: PReg::vec(0),
            },
            MInst::VecReduceInt {
                op: RedOp::Max,
                elem: Width::W8,
                signed: false,
                dst: PReg::int(1),
                src: PReg::vec(0),
            },
            MInst::Ret {
                value: Some(PReg::int(1)),
            },
        ];
        let p = straight(insts, vec![PReg::int(0)]);
        let x86 = TargetDesc::x86_sse();
        let mut sim = Simulator::new(&p, &x86);
        let mut mem = vec![0u8; 64];
        for i in 0..16 {
            mem[16 + i] = i as u8 * 3;
        }
        let out = sim.run("f", &[MachineValue::Int(16)], &mut mem).unwrap();
        assert_eq!(out, Some(MachineValue::Int(90))); // max lane 15*3 doubled = 90
        assert_eq!(sim.stats().vector_ops, 3);

        let sparc = TargetDesc::ultrasparc();
        let mut sim = Simulator::new(&p, &sparc);
        let err = sim
            .run("f", &[MachineValue::Int(16)], &mut mem)
            .unwrap_err();
        assert!(matches!(err, SimError::NoVectorUnit { .. }));
    }

    #[test]
    fn spills_and_reloads_round_trip_and_are_counted() {
        let insts = vec![
            MInst::Imm {
                dst: PReg::int(0),
                value: 77,
            },
            MInst::Spill {
                slot: 2,
                src: PReg::int(0),
            },
            MInst::Imm {
                dst: PReg::int(0),
                value: 0,
            },
            MInst::Reload {
                slot: 2,
                dst: PReg::int(0),
            },
            MInst::Ret {
                value: Some(PReg::int(0)),
            },
        ];
        let p = straight(insts, vec![]);
        let target = TargetDesc::powerpc();
        let mut sim = Simulator::new(&p, &target);
        let mut mem = vec![0u8; 32];
        assert_eq!(
            sim.run("f", &[], &mut mem).unwrap(),
            Some(MachineValue::Int(77))
        );
        assert_eq!(sim.stats().spill_stores, 1);
        assert_eq!(sim.stats().spill_reloads, 1);
    }

    #[test]
    fn register_file_limits_are_enforced() {
        let insts = vec![
            MInst::Imm {
                dst: PReg::int(40),
                value: 1,
            },
            MInst::Ret { value: None },
        ];
        let p = straight(insts, vec![]);
        let target = TargetDesc::x86_sse(); // only 6 integer registers
        let mut sim = Simulator::new(&p, &target);
        let mut mem = vec![0u8; 32];
        assert!(matches!(
            sim.run("f", &[], &mut mem).unwrap_err(),
            SimError::BadRegister { .. }
        ));
    }

    #[test]
    fn out_of_bounds_and_unknown_functions_trap() {
        let insts = vec![
            MInst::Load {
                width: Width::W64,
                float: false,
                signed: true,
                dst: PReg::int(0),
                base: PReg::int(0),
                offset: 0,
            },
            MInst::Ret { value: None },
        ];
        let p = straight(insts, vec![PReg::int(0)]);
        let target = TargetDesc::arm_neon();
        let mut sim = Simulator::new(&p, &target);
        let mut mem = vec![0u8; 16];
        assert!(matches!(
            sim.run("f", &[MachineValue::Int(12)], &mut mem)
                .unwrap_err(),
            SimError::Trap(_)
        ));
        assert!(matches!(
            sim.run("nope", &[], &mut mem).unwrap_err(),
            SimError::UnknownFunction(_)
        ));
        assert!(matches!(
            sim.run("f", &[], &mut mem).unwrap_err(),
            SimError::BadArgumentCount { .. }
        ));
    }

    #[test]
    fn infinite_loop_runs_out_of_fuel() {
        let f = MFunction {
            name: "spin".into(),
            params: vec![],
            blocks: vec![MBlock {
                insts: vec![MInst::Jump { target: 0 }],
            }],
            num_slots: 0,
        };
        let p = program(f);
        let target = TargetDesc::x86_sse();
        let mut sim = Simulator::new(&p, &target).with_fuel(10_000);
        let mut mem = vec![0u8; 16];
        assert_eq!(
            sim.run("spin", &[], &mut mem).unwrap_err(),
            SimError::OutOfFuel
        );
    }

    #[test]
    fn prepared_and_legacy_walks_agree_on_results_and_stats() {
        // The sum-loop program from `loads_stores_and_loop_execute_with_costs`,
        // run through both execution paths of the same simulator.
        let f = MFunction {
            name: "sum".into(),
            params: vec![PReg::int(0), PReg::int(1)],
            blocks: vec![
                MBlock {
                    insts: vec![
                        MInst::Imm {
                            dst: PReg::int(2),
                            value: 0,
                        },
                        MInst::Imm {
                            dst: PReg::int(3),
                            value: 0,
                        },
                        MInst::Jump { target: 1 },
                    ],
                },
                MBlock {
                    insts: vec![
                        MInst::IntCmp {
                            pred: CmpPred::Lt,
                            width: Width::W32,
                            signed: true,
                            dst: PReg::int(4),
                            lhs: PReg::int(3),
                            rhs: PReg::int(1),
                        },
                        MInst::BranchNz {
                            cond: PReg::int(4),
                            then_target: 2,
                            else_target: 3,
                        },
                    ],
                },
                MBlock {
                    insts: vec![
                        MInst::IntOp {
                            op: AluOp::Add,
                            width: Width::W64,
                            signed: true,
                            dst: PReg::int(5),
                            lhs: PReg::int(0),
                            rhs: PReg::int(3),
                        },
                        MInst::Load {
                            width: Width::W8,
                            float: false,
                            signed: false,
                            dst: PReg::int(5),
                            base: PReg::int(5),
                            offset: 0,
                        },
                        MInst::IntOp {
                            op: AluOp::Add,
                            width: Width::W8,
                            signed: false,
                            dst: PReg::int(2),
                            lhs: PReg::int(2),
                            rhs: PReg::int(5),
                        },
                        MInst::Imm {
                            dst: PReg::int(5),
                            value: 1,
                        },
                        MInst::IntOp {
                            op: AluOp::Add,
                            width: Width::W32,
                            signed: true,
                            dst: PReg::int(3),
                            lhs: PReg::int(3),
                            rhs: PReg::int(5),
                        },
                        MInst::Jump { target: 1 },
                    ],
                },
                MBlock {
                    insts: vec![MInst::Ret {
                        value: Some(PReg::int(2)),
                    }],
                },
            ],
            num_slots: 0,
        };
        let p = program(f);
        let args = [MachineValue::Int(16), MachineValue::Int(100)];
        for target in TargetDesc::presets() {
            let mut mem = vec![0u8; 256];
            for i in 0..100u8 {
                mem[16 + i as usize] = i;
            }
            let mut legacy_mem = mem.clone();
            let mut sim = Simulator::new(&p, &target);
            let out = sim.run("sum", &args, &mut mem).unwrap();
            let prepared_stats = sim.stats();
            let legacy_out = sim.run_legacy("sum", &args, &mut legacy_mem).unwrap();
            assert_eq!(out, legacy_out, "{}", target.name);
            assert_eq!(prepared_stats, sim.stats(), "{}", target.name);
            assert_eq!(mem, legacy_mem, "{}", target.name);
        }
    }

    #[test]
    fn calls_copy_arguments_and_return_values() {
        let callee = MFunction {
            name: "sq".into(),
            params: vec![PReg::float(0)],
            blocks: vec![MBlock {
                insts: vec![
                    MInst::FloatOp {
                        op: FpuOp::Mul,
                        double: false,
                        dst: PReg::float(0),
                        lhs: PReg::float(0),
                        rhs: PReg::float(0),
                    },
                    MInst::Ret {
                        value: Some(PReg::float(0)),
                    },
                ],
            }],
            num_slots: 0,
        };
        let caller = MFunction {
            name: "main".into(),
            params: vec![PReg::float(0)],
            blocks: vec![MBlock {
                insts: vec![
                    MInst::Call {
                        callee: "sq".into(),
                        args: vec![PReg::float(0)],
                        ret: Some(PReg::float(1)),
                    },
                    MInst::Ret {
                        value: Some(PReg::float(1)),
                    },
                ],
            }],
            num_slots: 0,
        };
        let p = MProgram {
            name: "m".into(),
            functions: vec![callee, caller],
        };
        let target = TargetDesc::x86_sse();
        let mut sim = Simulator::new(&p, &target);
        let mut mem = vec![0u8; 16];
        let out = sim
            .run("main", &[MachineValue::Float(3.0)], &mut mem)
            .unwrap();
        assert_eq!(out, Some(MachineValue::Float(9.0)));
    }
}
