//! # splitc-targets — virtual ISAs, cost models and cycle simulators
//!
//! This crate stands in for the hardware of the DAC 2010 paper's evaluation.
//! The paper measured real x86 (SSE), UltraSparc and PowerPC machines plus the
//! heterogeneous platforms of Section 3 (ARM+Neon phones, Cell PPE/SPU, DSPs);
//! none of that hardware is available to this reproduction, so each machine is
//! modeled as a [`TargetDesc`] — register files, an optional SIMD unit and a
//! per-operation [`CostModel`] — together with a [`Simulator`] that executes
//! the virtual machine code ([`MProgram`]) emitted by the online compiler and
//! reports deterministic cycle counts ([`SimStats`]).
//!
//! Absolute cycle numbers are synthetic; the experiments only rely on the
//! *relative* behaviour (scalar vs. vectorized code, one target vs. another),
//! which is what the paper's Table 1 reports as speedups.
//!
//! # Example
//!
//! ```
//! use splitc_targets::{
//!     AluOp, MBlock, MFunction, MInst, MProgram, MachineValue, PReg, Simulator, TargetDesc,
//!     Width,
//! };
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A one-block function: return 2 * argument.
//! let f = MFunction {
//!     name: "double".into(),
//!     params: vec![PReg::int(0)],
//!     blocks: vec![MBlock {
//!         insts: vec![
//!             MInst::Imm { dst: PReg::int(1), value: 2 },
//!             MInst::IntOp {
//!                 op: AluOp::Mul, width: Width::W32, signed: true,
//!                 dst: PReg::int(0), lhs: PReg::int(0), rhs: PReg::int(1),
//!             },
//!             MInst::Ret { value: Some(PReg::int(0)) },
//!         ],
//!     }],
//!     num_slots: 0,
//! };
//! let program = MProgram { name: "demo".into(), functions: vec![f] };
//!
//! // The same code costs different cycles on different machines.
//! let mut mem = vec![0u8; 32];
//! let mut cycles = Vec::new();
//! for target in [TargetDesc::x86_sse(), TargetDesc::ultrasparc()] {
//!     let mut sim = Simulator::new(&program, &target);
//!     let out = sim.run("double", &[MachineValue::Int(21)], &mut mem)?;
//!     assert_eq!(out, Some(MachineValue::Int(42)));
//!     cycles.push(sim.stats().cycles);
//! }
//! assert_ne!(cycles[0], cycles[1]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod desc;
mod dispatch;
mod exec;
mod hash;
mod mcode;
mod simulator;
mod timing;

pub use desc::{CostModel, TargetDesc, VectorUnit, GPU_DIVERGENCE_PENALTY};
pub use exec::{FramePool, FusionStats, PreparedProgram, PreparedSimulator};
pub use hash::Fnv1a;
pub use mcode::{
    AluOp, CmpPred, FpuOp, MBlock, MFunction, MInst, MProgram, PReg, RedOp, RegClass, Width,
};
pub use simulator::{
    MachineValue, SimError, SimStats, Simulator, DEFAULT_SIM_FUEL, MAX_CALL_DEPTH,
};
pub use timing::{FlatCost, InOrderPipeline, LatClass, TimingKind, TimingModel};
