//! A tiny reproducible hasher shared across the workspace.
//!
//! Several layers need a *stable* 64-bit digest — target fingerprints
//! (code-cache keys), module fingerprints (serving-layer deployment dedup),
//! result checksums (differential suites) — and none of them can use the
//! std hasher, whose values are randomized per process. They all speak
//! FNV-1a through this one implementation so the constants and the
//! byte-order discipline cannot silently diverge between copies.

/// Incremental 64-bit FNV-1a.
///
/// # Example
///
/// ```
/// use splitc_targets::Fnv1a;
///
/// let mut h = Fnv1a::new();
/// h.write(b"abc");
/// assert_eq!(h.finish(), Fnv1a::hash(b"abc"));
/// assert_ne!(Fnv1a::hash(b"abc"), Fnv1a::hash(b"abd"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// The FNV-1a offset basis.
    pub const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    /// The FNV-1a 64-bit prime.
    pub const PRIME: u64 = 0x100_0000_01b3;

    /// A fresh hasher at the offset basis.
    pub fn new() -> Self {
        Fnv1a(Self::OFFSET_BASIS)
    }

    /// Absorb `bytes`.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// The digest of everything written so far.
    pub fn finish(&self) -> u64 {
        self.0
    }

    /// One-shot convenience: the digest of `bytes`.
    pub fn hash(bytes: &[u8]) -> u64 {
        let mut h = Fnv1a::new();
        h.write(bytes);
        h.finish()
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_published_fnv1a_vectors() {
        // Reference values for the 64-bit FNV-1a parameters.
        assert_eq!(Fnv1a::hash(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(Fnv1a::hash(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(Fnv1a::hash(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn incremental_writes_equal_one_shot() {
        let mut h = Fnv1a::new();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), Fnv1a::hash(b"foobar"));
        assert_eq!(Fnv1a::default().finish(), Fnv1a::new().finish());
    }
}
