//! # splitc-workloads — benchmark kernels and input data
//!
//! The workload side of the DAC 2010 reproduction: the six kernels of the
//! paper's Table 1 plus the additional kernels needed by the split register
//! allocation, heterogeneity and Kahn-network experiments, together with
//! seeded input-data generators.
//!
//! # Example
//!
//! ```
//! use splitc_workloads::{table1_kernels, module_for, DataGen};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let kernels = table1_kernels();
//! assert_eq!(kernels.len(), 6);
//! let module = module_for(&kernels, "table1")?;
//! assert!(module.function("saxpy_f32").is_some());
//!
//! let mut gen = DataGen::new(7);
//! let xs = gen.f32s(1024, 100.0);
//! assert_eq!(xs.len(), 1024);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod data;
mod kernels;

pub use data::{DataGen, DEFAULT_N};
pub use kernels::{
    all_kernels, full_module, kernel, module_for, pipeline_kernels, pressure_kernels,
    table1_kernels, Kernel, KernelKind, BRIGHTEN_U8, COPY_U8, DOT_F32, DSCAL_F32, FIR4_F32,
    HISTOGRAM_U8, HORNER_F32, HOTCOLD_F32, HOTCOLD_I32, MAX_U8, MIN_I16, PREFIX_SUM_I32, SAXPY_F32,
    SUM_U16, SUM_U8, THRESHOLD_U8, VECADD_F32,
};
