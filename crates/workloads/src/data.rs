//! Deterministic, seeded input-data generators for the experiments.
//!
//! The paper's evaluation ran on fixed input arrays; here every generator is
//! seeded so that repeated benchmark runs (and the differential tests between
//! the interpreter and the simulated targets) see exactly the same data.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Default element count used by the Table 1 reproduction.
pub const DEFAULT_N: usize = 4096;

/// A seeded generator of kernel input arrays.
#[derive(Debug)]
pub struct DataGen {
    rng: StdRng,
}

impl DataGen {
    /// Create a generator with the given seed.
    pub fn new(seed: u64) -> Self {
        DataGen {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// `n` single-precision values in `[-range, range)`.
    pub fn f32s(&mut self, n: usize, range: f32) -> Vec<f32> {
        (0..n).map(|_| self.rng.gen_range(-range..range)).collect()
    }

    /// `n` double-precision values in `[-range, range)`.
    pub fn f64s(&mut self, n: usize, range: f64) -> Vec<f64> {
        (0..n).map(|_| self.rng.gen_range(-range..range)).collect()
    }

    /// `n` bytes spanning the full `u8` range.
    pub fn u8s(&mut self, n: usize) -> Vec<u8> {
        (0..n).map(|_| self.rng.gen()).collect()
    }

    /// `n` unsigned 16-bit values spanning the full range.
    pub fn u16s(&mut self, n: usize) -> Vec<u16> {
        (0..n).map(|_| self.rng.gen()).collect()
    }

    /// `n` signed 16-bit values spanning the full range.
    pub fn i16s(&mut self, n: usize) -> Vec<i16> {
        (0..n).map(|_| self.rng.gen()).collect()
    }

    /// `n` signed 32-bit values in `[-bound, bound)`.
    pub fn i32s(&mut self, n: usize, bound: i32) -> Vec<i32> {
        (0..n).map(|_| self.rng.gen_range(-bound..bound)).collect()
    }
}

impl Default for DataGen {
    fn default() -> Self {
        DataGen::new(0x5011c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_data() {
        let mut a = DataGen::new(42);
        let mut b = DataGen::new(42);
        assert_eq!(a.f32s(100, 10.0), b.f32s(100, 10.0));
        assert_eq!(a.u8s(100), b.u8s(100));
        assert_eq!(a.u16s(16), b.u16s(16));
        assert_eq!(a.i16s(16), b.i16s(16));
        assert_eq!(a.i32s(16, 1000), b.i32s(16, 1000));
        assert_eq!(a.f64s(8, 1.0), b.f64s(8, 1.0));
    }

    #[test]
    fn different_seeds_differ_and_ranges_hold() {
        let mut a = DataGen::new(1);
        let mut b = DataGen::new(2);
        assert_ne!(a.u8s(64), b.u8s(64));
        let xs = a.f32s(1000, 2.0);
        assert!(xs.iter().all(|x| (-2.0..2.0).contains(x)));
        let ys = a.i32s(1000, 50);
        assert!(ys.iter().all(|y| (-50..50).contains(y)));
    }

    #[test]
    fn default_generator_is_usable() {
        let mut g = DataGen::default();
        assert_eq!(g.u8s(DEFAULT_N).len(), DEFAULT_N);
    }
}
