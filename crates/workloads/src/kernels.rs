//! The benchmark kernels.
//!
//! The six kernels of the paper's Table 1 (`vecadd fp`, `saxpy fp`, `dscal fp`,
//! `max u8`, `sum u8`, `sum u16`) plus the extra kernels used by the other
//! experiments: register-pressure workloads for split register allocation,
//! pipeline stages for the Kahn-network experiment, and a few non-vectorizable
//! kernels that exercise the negative paths of the offline vectorizer.
//!
//! Note on the reduction kernels: the accumulators use the element's own width
//! (wrapping arithmetic), which keeps the vectorized and scalar versions
//! bit-identical; the paper does not specify the accumulation width.

use splitc_minic::{compile_source, CompileError};
use splitc_vbc::{Module, ScalarType};

/// How a kernel participates in the experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// One of the six Table 1 kernels.
    Table1,
    /// Additional data-parallel kernel.
    DataParallel,
    /// Register-pressure workload for the split register allocation experiment.
    RegisterPressure,
    /// Pipeline stage used by the Kahn-network experiment.
    PipelineStage,
    /// Deliberately non-vectorizable kernel (negative test for the vectorizer).
    Scalar,
}

/// A named benchmark kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Kernel {
    /// Kernel (and bytecode function) name.
    pub name: &'static str,
    /// mini-C source text.
    pub source: &'static str,
    /// Element type the kernel processes.
    pub elem: ScalarType,
    /// Role in the experiments.
    pub kind: KernelKind,
    /// `true` if the offline vectorizer is expected to vectorize its hot loop.
    pub vectorizable: bool,
}

/// `vecadd fp` — element-wise single-precision addition (Table 1, row 1).
pub const VECADD_F32: &str = r#"
fn vecadd_f32(n: i32, x: *f32, y: *f32, z: *f32) {
    for (let i: i32 = 0; i < n; i = i + 1) {
        z[i] = x[i] + y[i];
    }
}
"#;

/// `saxpy fp` — single-precision a*x plus y (Table 1, row 2).
pub const SAXPY_F32: &str = r#"
fn saxpy_f32(n: i32, a: f32, x: *f32, y: *f32) {
    for (let i: i32 = 0; i < n; i = i + 1) {
        y[i] = a * x[i] + y[i];
    }
}
"#;

/// `dscal fp` — scale a vector in place (Table 1, row 3).
pub const DSCAL_F32: &str = r#"
fn dscal_f32(n: i32, a: f32, x: *f32) {
    for (let i: i32 = 0; i < n; i = i + 1) {
        x[i] = a * x[i];
    }
}
"#;

/// `max u8` — maximum of an unsigned byte array (Table 1, row 4).
pub const MAX_U8: &str = r#"
fn max_u8(n: i32, x: *u8) -> u8 {
    let m: u8 = 0;
    for (let i: i32 = 0; i < n; i = i + 1) {
        m = max(m, x[i]);
    }
    return m;
}
"#;

/// `sum u8` — wrapping sum of an unsigned byte array (Table 1, row 5).
pub const SUM_U8: &str = r#"
fn sum_u8(n: i32, x: *u8) -> u8 {
    let s: u8 = 0;
    for (let i: i32 = 0; i < n; i = i + 1) {
        s = s + x[i];
    }
    return s;
}
"#;

/// `sum u16` — wrapping sum of an unsigned 16-bit array (Table 1, row 6).
pub const SUM_U16: &str = r#"
fn sum_u16(n: i32, x: *u16) -> u16 {
    let s: u16 = 0;
    for (let i: i32 = 0; i < n; i = i + 1) {
        s = s + x[i];
    }
    return s;
}
"#;

/// Dot product of two single-precision vectors (extra data-parallel kernel).
pub const DOT_F32: &str = r#"
fn dot_f32(n: i32, x: *f32, y: *f32) -> f32 {
    let s: f32 = 0.0;
    for (let i: i32 = 0; i < n; i = i + 1) {
        s = s + x[i] * y[i];
    }
    return s;
}
"#;

/// Minimum of a signed 16-bit array (extra data-parallel kernel).
pub const MIN_I16: &str = r#"
fn min_i16(n: i32, x: *i16) -> i16 {
    let m: i16 = 32767;
    for (let i: i32 = 0; i < n; i = i + 1) {
        m = min(m, x[i]);
    }
    return m;
}
"#;

/// Saturating-free brightness adjustment of a byte image (pipeline stage).
pub const BRIGHTEN_U8: &str = r#"
fn brighten_u8(n: i32, x: *u8, y: *u8) {
    for (let i: i32 = 0; i < n; i = i + 1) {
        y[i] = x[i] + 16;
    }
}
"#;

/// Box blur of radius 0 (copy) — used as a cheap pipeline stage.
pub const COPY_U8: &str = r#"
fn copy_u8(n: i32, x: *u8, y: *u8) {
    for (let i: i32 = 0; i < n; i = i + 1) {
        y[i] = x[i];
    }
}
"#;

/// Threshold a byte image against a constant (pipeline stage; vectorizable
/// because `min`/`max` keep it branch-free).
pub const THRESHOLD_U8: &str = r#"
fn threshold_u8(n: i32, x: *u8, y: *u8) {
    for (let i: i32 = 0; i < n; i = i + 1) {
        y[i] = min(max(x[i], 64), 192);
    }
}
"#;

/// Histogram of a byte array — indirect stores make it non-vectorizable.
pub const HISTOGRAM_U8: &str = r#"
fn histogram_u8(n: i32, x: *u8, counts: *i32) {
    for (let i: i32 = 0; i < n; i = i + 1) {
        let bucket: i32 = x[i] as i32;
        counts[bucket] = counts[bucket] + 1;
    }
}
"#;

/// Prefix sum — the loop-carried dependence makes it non-vectorizable.
pub const PREFIX_SUM_I32: &str = r#"
fn prefix_sum_i32(n: i32, x: *i32, y: *i32) {
    let acc: i32 = 0;
    for (let i: i32 = 0; i < n; i = i + 1) {
        acc = acc + x[i];
        y[i] = acc;
    }
}
"#;

/// Degree-7 polynomial evaluation (Horner) — a float register-pressure kernel.
pub const HORNER_F32: &str = r#"
fn horner_f32(n: i32, x: *f32, y: *f32) {
    let c0: f32 = 1.5; let c1: f32 = 2.5; let c2: f32 = 3.5; let c3: f32 = 4.5;
    let c4: f32 = 5.5; let c5: f32 = 6.5; let c6: f32 = 7.5; let c7: f32 = 8.5;
    for (let i: i32 = 0; i < n; i = i + 1) {
        let v: f32 = x[i];
        y[i] = ((((((v * c7 + c6) * v + c5) * v + c4) * v + c3) * v + c2) * v + c1) * v + c0;
    }
}
"#;

/// Nested-loop kernel whose *cold* values are defined first and whose *hot*
/// values are used in the inner loop — the case where a first-come-first-served
/// online register allocator picks badly and the offline spill order pays off.
pub const HOTCOLD_F32: &str = r#"
fn hotcold_f32(n: i32, m: i32, x: *f32, y: *f32) -> f32 {
    let cold0: f32 = 0.125; let cold1: f32 = 0.25; let cold2: f32 = 0.375;
    let cold3: f32 = 0.5;   let cold4: f32 = 0.625; let cold5: f32 = 0.75;
    let hot0: f32 = 1.5; let hot1: f32 = 2.5; let hot2: f32 = 3.5; let hot3: f32 = 4.5;
    let acc: f32 = 0.0;
    for (let i: i32 = 0; i < n; i = i + 1) {
        let base: f32 = y[i];
        for (let j: i32 = 0; j < m; j = j + 1) {
            let v: f32 = x[j];
            acc = acc + (v * hot0 + hot1) * (v * hot2 + hot3);
        }
        acc = acc + base * cold0 + cold1 * cold2 + cold3 * cold4 + cold5;
    }
    return acc;
}
"#;

/// Integer variant of the hot/cold register-pressure workload.
pub const HOTCOLD_I32: &str = r#"
fn hotcold_i32(n: i32, m: i32, x: *i32, y: *i32) -> i32 {
    let cold0: i32 = 11; let cold1: i32 = 13; let cold2: i32 = 17;
    let cold3: i32 = 19; let cold4: i32 = 23; let cold5: i32 = 29;
    let hot0: i32 = 3; let hot1: i32 = 5; let hot2: i32 = 7; let hot3: i32 = 9;
    let acc: i32 = 0;
    for (let i: i32 = 0; i < n; i = i + 1) {
        let base: i32 = y[i];
        for (let j: i32 = 0; j < m; j = j + 1) {
            let v: i32 = x[j];
            acc = acc + (v * hot0 + hot1) * (v * hot2 + hot3);
        }
        acc = acc + base * cold0 + cold1 * cold2 + cold3 * cold4 + cold5;
    }
    return acc;
}
"#;

/// FIR filter with a 4-tap constant kernel (extra data-parallel workload with
/// neighbouring loads; not vectorized by the current offline pass, which only
/// handles unit-stride `p[i]` accesses — it still runs everywhere).
pub const FIR4_F32: &str = r#"
fn fir4_f32(n: i32, x: *f32, y: *f32) {
    for (let i: i32 = 0; i < n; i = i + 1) {
        let j: i32 = i + 1; let k: i32 = i + 2; let l: i32 = i + 3;
        y[i] = 0.25 * x[i] + 0.3 * x[j] + 0.3 * x[k] + 0.15 * x[l];
    }
}
"#;

/// The complete kernel catalogue.
pub fn all_kernels() -> Vec<Kernel> {
    vec![
        Kernel {
            name: "vecadd_f32",
            source: VECADD_F32,
            elem: ScalarType::F32,
            kind: KernelKind::Table1,
            vectorizable: true,
        },
        Kernel {
            name: "saxpy_f32",
            source: SAXPY_F32,
            elem: ScalarType::F32,
            kind: KernelKind::Table1,
            vectorizable: true,
        },
        Kernel {
            name: "dscal_f32",
            source: DSCAL_F32,
            elem: ScalarType::F32,
            kind: KernelKind::Table1,
            vectorizable: true,
        },
        Kernel {
            name: "max_u8",
            source: MAX_U8,
            elem: ScalarType::U8,
            kind: KernelKind::Table1,
            vectorizable: true,
        },
        Kernel {
            name: "sum_u8",
            source: SUM_U8,
            elem: ScalarType::U8,
            kind: KernelKind::Table1,
            vectorizable: true,
        },
        Kernel {
            name: "sum_u16",
            source: SUM_U16,
            elem: ScalarType::U16,
            kind: KernelKind::Table1,
            vectorizable: true,
        },
        Kernel {
            name: "dot_f32",
            source: DOT_F32,
            elem: ScalarType::F32,
            kind: KernelKind::DataParallel,
            vectorizable: true,
        },
        Kernel {
            name: "min_i16",
            source: MIN_I16,
            elem: ScalarType::I16,
            kind: KernelKind::DataParallel,
            vectorizable: true,
        },
        Kernel {
            name: "brighten_u8",
            source: BRIGHTEN_U8,
            elem: ScalarType::U8,
            kind: KernelKind::PipelineStage,
            vectorizable: true,
        },
        Kernel {
            name: "copy_u8",
            source: COPY_U8,
            elem: ScalarType::U8,
            kind: KernelKind::PipelineStage,
            vectorizable: true,
        },
        Kernel {
            name: "threshold_u8",
            source: THRESHOLD_U8,
            elem: ScalarType::U8,
            kind: KernelKind::PipelineStage,
            vectorizable: true,
        },
        Kernel {
            name: "histogram_u8",
            source: HISTOGRAM_U8,
            elem: ScalarType::U8,
            kind: KernelKind::Scalar,
            vectorizable: false,
        },
        Kernel {
            name: "prefix_sum_i32",
            source: PREFIX_SUM_I32,
            elem: ScalarType::I32,
            kind: KernelKind::Scalar,
            vectorizable: false,
        },
        Kernel {
            name: "fir4_f32",
            source: FIR4_F32,
            elem: ScalarType::F32,
            kind: KernelKind::Scalar,
            vectorizable: false,
        },
        Kernel {
            name: "horner_f32",
            source: HORNER_F32,
            elem: ScalarType::F32,
            kind: KernelKind::RegisterPressure,
            vectorizable: true,
        },
        Kernel {
            name: "hotcold_f32",
            source: HOTCOLD_F32,
            elem: ScalarType::F32,
            kind: KernelKind::RegisterPressure,
            vectorizable: true,
        },
        Kernel {
            name: "hotcold_i32",
            source: HOTCOLD_I32,
            elem: ScalarType::I32,
            kind: KernelKind::RegisterPressure,
            vectorizable: true,
        },
    ]
}

/// The six kernels of Table 1, in the paper's row order.
pub fn table1_kernels() -> Vec<Kernel> {
    all_kernels()
        .into_iter()
        .filter(|k| k.kind == KernelKind::Table1)
        .collect()
}

/// Kernels used by the split-register-allocation experiment.
pub fn pressure_kernels() -> Vec<Kernel> {
    all_kernels()
        .into_iter()
        .filter(|k| k.kind == KernelKind::RegisterPressure)
        .collect()
}

/// Kernels usable as pipeline stages in the Kahn-network experiment.
pub fn pipeline_kernels() -> Vec<Kernel> {
    all_kernels()
        .into_iter()
        .filter(|k| k.kind == KernelKind::PipelineStage)
        .collect()
}

/// Look up a kernel by name.
pub fn kernel(name: &str) -> Option<Kernel> {
    all_kernels().into_iter().find(|k| k.name == name)
}

/// Compile a set of kernels into a single (unoptimized) bytecode module.
///
/// # Errors
///
/// Returns the front-end error if any kernel fails to compile (which would be
/// a bug in this crate's sources).
pub fn module_for(kernels: &[Kernel], module_name: &str) -> Result<Module, CompileError> {
    let source: String = kernels
        .iter()
        .map(|k| k.source)
        .collect::<Vec<_>>()
        .join("\n");
    compile_source(&source, module_name)
}

/// Compile every kernel of the catalogue into one module.
///
/// # Errors
///
/// See [`module_for`].
pub fn full_module(module_name: &str) -> Result<Module, CompileError> {
    module_for(&all_kernels(), module_name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kernel_compiles_and_names_match() {
        for k in all_kernels() {
            let m = module_for(std::slice::from_ref(&k), "t")
                .unwrap_or_else(|e| panic!("{}: {e}", k.name));
            assert!(
                m.function(k.name).is_some(),
                "kernel source of {} must define a function of the same name",
                k.name
            );
        }
    }

    #[test]
    fn table1_has_exactly_the_six_paper_kernels() {
        let names: Vec<_> = table1_kernels().iter().map(|k| k.name).collect();
        assert_eq!(
            names,
            vec![
                "vecadd_f32",
                "saxpy_f32",
                "dscal_f32",
                "max_u8",
                "sum_u8",
                "sum_u16"
            ]
        );
    }

    #[test]
    fn catalogue_partitions_are_consistent() {
        assert!(pressure_kernels().len() >= 2);
        assert!(pipeline_kernels().len() >= 3);
        assert!(kernel("saxpy_f32").is_some());
        assert!(kernel("nope").is_none());
        let m = full_module("all").unwrap();
        assert_eq!(m.functions().len(), all_kernels().len());
    }

    #[test]
    fn vectorizable_flags_match_the_offline_vectorizer() {
        use splitc_opt::{optimize_module, OptOptions};
        for k in all_kernels() {
            let mut m = module_for(std::slice::from_ref(&k), "t").unwrap();
            let report = optimize_module(&mut m, &OptOptions::full());
            let vectorized = report.vectorized_loops.contains_key(k.name);
            assert_eq!(
                vectorized, k.vectorizable,
                "{}: expected vectorizable={} (rejections: {:?})",
                k.name, k.vectorizable, report.rejections
            );
        }
    }
}
