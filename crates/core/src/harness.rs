//! Per-kernel input setup for the experiment drivers.
//!
//! Every benchmark kernel has its own signature; this module knows how to
//! allocate and fill its inputs in a [`Workspace`] and how to summarize its
//! outputs into a checksum so that different compilation strategies can be
//! checked against each other.

use crate::session::Workspace;
use splitc_targets::{Fnv1a, MachineValue};
use splitc_workloads::DataGen;

/// A kernel invocation prepared in a workspace.
#[derive(Debug, Clone)]
pub struct PreparedKernel {
    /// Kernel (function) name.
    pub name: String,
    /// Argument values, in signature order.
    pub args: Vec<MachineValue>,
    /// Address and byte length of the kernel's output region (used both for
    /// checksums and for offload-transfer accounting). May be empty for
    /// kernels that only return a scalar.
    pub output: Option<(u64, u64)>,
    /// Total bytes of input the kernel reads (for offload-transfer accounting).
    pub input_bytes: u64,
}

/// Prepare inputs for `kernel` processing `n` elements, using `seed` for data.
///
/// # Panics
///
/// Panics if the kernel name is not part of the workload catalogue understood
/// by this harness.
pub fn prepare(kernel: &str, n: usize, seed: u64, ws: &mut Workspace) -> PreparedKernel {
    let mut gen = DataGen::new(seed);
    let ni = n as i64;
    match kernel {
        "vecadd_f32" => {
            let x = ws.alloc(4 * n as u64);
            let y = ws.alloc(4 * n as u64);
            let z = ws.alloc(4 * n as u64);
            ws.write_f32s(x, &gen.f32s(n, 100.0));
            ws.write_f32s(y, &gen.f32s(n, 100.0));
            PreparedKernel {
                name: kernel.into(),
                args: vec![
                    MachineValue::Int(ni),
                    MachineValue::Int(x as i64),
                    MachineValue::Int(y as i64),
                    MachineValue::Int(z as i64),
                ],
                output: Some((z, 4 * n as u64)),
                input_bytes: 8 * n as u64,
            }
        }
        "saxpy_f32" => {
            let x = ws.alloc(4 * n as u64);
            let y = ws.alloc(4 * n as u64);
            ws.write_f32s(x, &gen.f32s(n, 100.0));
            ws.write_f32s(y, &gen.f32s(n, 100.0));
            PreparedKernel {
                name: kernel.into(),
                args: vec![
                    MachineValue::Int(ni),
                    MachineValue::Float(1.75),
                    MachineValue::Int(x as i64),
                    MachineValue::Int(y as i64),
                ],
                output: Some((y, 4 * n as u64)),
                input_bytes: 8 * n as u64,
            }
        }
        "dscal_f32" => {
            let x = ws.alloc(4 * n as u64);
            ws.write_f32s(x, &gen.f32s(n, 100.0));
            PreparedKernel {
                name: kernel.into(),
                args: vec![
                    MachineValue::Int(ni),
                    MachineValue::Float(0.5),
                    MachineValue::Int(x as i64),
                ],
                output: Some((x, 4 * n as u64)),
                input_bytes: 4 * n as u64,
            }
        }
        "max_u8" | "sum_u8" => {
            let x = ws.alloc(n as u64);
            ws.write_u8s(x, &gen.u8s(n));
            PreparedKernel {
                name: kernel.into(),
                args: vec![MachineValue::Int(ni), MachineValue::Int(x as i64)],
                output: None,
                input_bytes: n as u64,
            }
        }
        "sum_u16" => {
            let x = ws.alloc(2 * n as u64);
            ws.write_u16s(x, &gen.u16s(n));
            PreparedKernel {
                name: kernel.into(),
                args: vec![MachineValue::Int(ni), MachineValue::Int(x as i64)],
                output: None,
                input_bytes: 2 * n as u64,
            }
        }
        "min_i16" => {
            let x = ws.alloc(2 * n as u64);
            ws.write_i16s(x, &gen.i16s(n));
            PreparedKernel {
                name: kernel.into(),
                args: vec![MachineValue::Int(ni), MachineValue::Int(x as i64)],
                output: None,
                input_bytes: 2 * n as u64,
            }
        }
        "dot_f32" => {
            let x = ws.alloc(4 * n as u64);
            let y = ws.alloc(4 * n as u64);
            ws.write_f32s(x, &gen.f32s(n, 10.0));
            ws.write_f32s(y, &gen.f32s(n, 10.0));
            PreparedKernel {
                name: kernel.into(),
                args: vec![
                    MachineValue::Int(ni),
                    MachineValue::Int(x as i64),
                    MachineValue::Int(y as i64),
                ],
                output: None,
                input_bytes: 8 * n as u64,
            }
        }
        "brighten_u8" | "copy_u8" | "threshold_u8" => {
            let x = ws.alloc(n as u64);
            let y = ws.alloc(n as u64);
            ws.write_u8s(x, &gen.u8s(n));
            PreparedKernel {
                name: kernel.into(),
                args: vec![
                    MachineValue::Int(ni),
                    MachineValue::Int(x as i64),
                    MachineValue::Int(y as i64),
                ],
                output: Some((y, n as u64)),
                input_bytes: n as u64,
            }
        }
        "histogram_u8" => {
            let x = ws.alloc(n as u64);
            let counts = ws.alloc(4 * 256);
            ws.write_u8s(x, &gen.u8s(n));
            PreparedKernel {
                name: kernel.into(),
                args: vec![
                    MachineValue::Int(ni),
                    MachineValue::Int(x as i64),
                    MachineValue::Int(counts as i64),
                ],
                output: Some((counts, 4 * 256)),
                input_bytes: n as u64,
            }
        }
        "prefix_sum_i32" => {
            let x = ws.alloc(4 * n as u64);
            let y = ws.alloc(4 * n as u64);
            ws.write_i32s(x, &gen.i32s(n, 1000));
            PreparedKernel {
                name: kernel.into(),
                args: vec![
                    MachineValue::Int(ni),
                    MachineValue::Int(x as i64),
                    MachineValue::Int(y as i64),
                ],
                output: Some((y, 4 * n as u64)),
                input_bytes: 4 * n as u64,
            }
        }
        "fir4_f32" => {
            // The filter reads up to x[i+3]: allocate three extra taps.
            let x = ws.alloc(4 * (n as u64 + 4));
            let y = ws.alloc(4 * n as u64);
            ws.write_f32s(x, &gen.f32s(n + 4, 10.0));
            PreparedKernel {
                name: kernel.into(),
                args: vec![
                    MachineValue::Int(ni),
                    MachineValue::Int(x as i64),
                    MachineValue::Int(y as i64),
                ],
                output: Some((y, 4 * n as u64)),
                input_bytes: 4 * (n as u64 + 4),
            }
        }
        "horner_f32" => {
            let x = ws.alloc(4 * n as u64);
            let y = ws.alloc(4 * n as u64);
            ws.write_f32s(x, &gen.f32s(n, 1.0));
            PreparedKernel {
                name: kernel.into(),
                args: vec![
                    MachineValue::Int(ni),
                    MachineValue::Int(x as i64),
                    MachineValue::Int(y as i64),
                ],
                output: Some((y, 4 * n as u64)),
                input_bytes: 4 * n as u64,
            }
        }
        "hotcold_f32" => {
            let m = 32usize;
            let x = ws.alloc(4 * m as u64);
            let y = ws.alloc(4 * n as u64);
            ws.write_f32s(x, &gen.f32s(m, 1.0));
            ws.write_f32s(y, &gen.f32s(n, 1.0));
            PreparedKernel {
                name: kernel.into(),
                args: vec![
                    MachineValue::Int(ni),
                    MachineValue::Int(m as i64),
                    MachineValue::Int(x as i64),
                    MachineValue::Int(y as i64),
                ],
                output: None,
                input_bytes: 4 * (n + m) as u64,
            }
        }
        "hotcold_i32" => {
            let m = 32usize;
            let x = ws.alloc(4 * m as u64);
            let y = ws.alloc(4 * n as u64);
            ws.write_i32s(x, &gen.i32s(m, 100));
            ws.write_i32s(y, &gen.i32s(n, 100));
            PreparedKernel {
                name: kernel.into(),
                args: vec![
                    MachineValue::Int(ni),
                    MachineValue::Int(m as i64),
                    MachineValue::Int(x as i64),
                    MachineValue::Int(y as i64),
                ],
                output: None,
                input_bytes: 4 * (n + m) as u64,
            }
        }
        other => panic!("the experiment harness does not know kernel `{other}`"),
    }
}

/// Summarize a finished run (return value plus output region) into a checksum
/// that must agree across compilation strategies and targets.
///
/// Checksums are only ever compared *within* one build of this crate. Note
/// for anyone diffing historical `BENCH_sweep.json` files: the hash moved to
/// the shared [`Fnv1a`] with the `splitc-bench-sweep/2` schema bump — the
/// old hand-rolled loop multiplied by a typo'd FNV prime (`0x1000_0000_01b3`
/// instead of `0x100_0000_01b3`) — so every checksum value changed at that
/// point while cycles stayed comparable.
pub fn checksum(result: Option<MachineValue>, prepared: &PreparedKernel, ws: &Workspace) -> u64 {
    checksum_bytes(result, prepared, ws.bytes())
}

/// [`checksum`] over a raw memory image instead of a [`Workspace`].
///
/// The serving layer hands kernel memory back as a plain byte buffer
/// ([`splitc_runtime::serve::Response::mem`]); this computes the identical
/// checksum from it, so served results are bit-comparable to sweep cells.
pub fn checksum_bytes(result: Option<MachineValue>, prepared: &PreparedKernel, mem: &[u8]) -> u64 {
    let mut acc = Fnv1a::new();
    match result {
        Some(MachineValue::Int(v)) => acc.write(&v.to_le_bytes()),
        Some(MachineValue::Float(v)) => {
            // Round to a tolerant precision so that reassociated float
            // reductions (vectorized sums) still agree with the scalar result.
            let rounded = (v * 1e3).round() as i64;
            acc.write(&rounded.to_le_bytes());
        }
        None => {}
    }
    if let Some((addr, len)) = prepared.output {
        acc.write(&mem[addr as usize..addr as usize + len as usize]);
    }
    acc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitc_workloads::all_kernels;

    #[test]
    fn every_catalogue_kernel_is_supported_by_the_harness() {
        for k in all_kernels() {
            let mut ws = Workspace::new(1 << 16);
            let prepared = prepare(k.name, 128, 1, &mut ws);
            assert_eq!(prepared.name, k.name);
            assert!(!prepared.args.is_empty());
            assert!(prepared.input_bytes > 0);
        }
    }

    #[test]
    fn preparation_is_deterministic_for_a_seed() {
        let mut a = Workspace::new(1 << 16);
        let mut b = Workspace::new(1 << 16);
        let pa = prepare("saxpy_f32", 64, 9, &mut a);
        let pb = prepare("saxpy_f32", 64, 9, &mut b);
        assert_eq!(pa.args, pb.args);
        assert_eq!(a.bytes(), b.bytes());
        assert_eq!(checksum(None, &pa, &a), checksum(None, &pb, &b));
    }

    #[test]
    #[should_panic(expected = "does not know kernel")]
    fn unknown_kernels_are_rejected() {
        let mut ws = Workspace::new(1024);
        let _ = prepare("mystery", 16, 0, &mut ws);
    }

    #[test]
    fn checksum_bytes_matches_the_workspace_checksum() {
        let mut ws = Workspace::new(1 << 12);
        let p = prepare("vecadd_f32", 16, 5, &mut ws);
        assert_eq!(
            checksum(Some(MachineValue::Int(7)), &p, &ws),
            checksum_bytes(Some(MachineValue::Int(7)), &p, ws.bytes())
        );
        assert_eq!(
            checksum(None, &p, &ws),
            checksum_bytes(None, &p, ws.bytes())
        );
    }

    #[test]
    fn checksums_react_to_output_changes() {
        let mut ws = Workspace::new(1 << 12);
        let p = prepare("dscal_f32", 16, 3, &mut ws);
        let before = checksum(None, &p, &ws);
        let (addr, _) = p.output.unwrap();
        ws.write_f32s(addr, &[123.0]);
        assert_ne!(before, checksum(None, &p, &ws));
    }
}
