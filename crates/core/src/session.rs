//! High-level pipeline API: offline compile, deploy, run, measure.

use splitc_jit::JitOptions;
use splitc_opt::{optimize_module, OptOptions, OptReport};
use splitc_runtime::{EngineError, Execution, ExecutionEngine};
use splitc_targets::{MachineValue, TargetDesc};
use splitc_vbc::Module;

/// Any error that can occur along the offline/online pipeline.
///
/// Alias of the unified [`EngineError`] from the runtime layer: the offline
/// pipeline, the execution engine and the heterogeneous runtime all report
/// failures through one type (with `From` bridges from every layer's error).
pub type PipelineError = EngineError;

/// The offline step: parse, type-check, lower and optimize mini-C source.
///
/// # Errors
///
/// Returns a [`PipelineError::Frontend`] on any source error.
pub fn offline_compile(
    source: &str,
    module_name: &str,
    opts: &OptOptions,
) -> Result<(Module, OptReport), PipelineError> {
    let mut module = splitc_minic::compile_source(source, module_name)?;
    let report = optimize_module(&mut module, opts);
    Ok((module, report))
}

/// Run the offline optimizer over an already-lowered module.
pub fn offline_optimize(module: &mut Module, opts: &OptOptions) -> OptReport {
    optimize_module(module, opts)
}

/// Measurement of one kernel execution on one simulated target.
///
/// Alias of the unified [`Execution`] result produced by the
/// [`ExecutionEngine`] (which also carries the clock-scaled cycle count the
/// heterogeneous runtime compares cores with).
pub type RunMeasurement = Execution;

/// The online step plus execution, as a one-shot convenience: JIT-compile
/// `module` for `target`, run `kernel` with `args` against `mem`, and return
/// the measurements.
///
/// Every call compiles the module afresh (via
/// [`ExecutionEngine::run_once`]). Code that runs more than one kernel,
/// target or repetition should hold an [`ExecutionEngine`] (or a
/// [`splitc_runtime::Executor`]) instead, so each distinct (target, options)
/// pair is compiled exactly once and shared.
///
/// # Errors
///
/// Returns a [`PipelineError`] if online compilation or execution fails.
pub fn run_on_target(
    module: &Module,
    target: &TargetDesc,
    jit_options: &JitOptions,
    kernel: &str,
    args: &[MachineValue],
    mem: &mut [u8],
) -> Result<RunMeasurement, PipelineError> {
    ExecutionEngine::run_once(module, target, jit_options, kernel, args, mem)
}

/// A linear scratch memory for setting up kernel inputs and reading outputs.
///
/// Thin wrapper around a byte vector with a bump allocator, matching the flat
/// address space of both the reference interpreter and the target simulators.
///
/// # Examples
///
/// ```
/// use splitc::Workspace;
///
/// let mut ws = Workspace::new(1 << 12);
/// let a = ws.alloc(16);
/// ws.write_f32s(a, &[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(ws.read_f32s(a, 4), vec![1.0, 2.0, 3.0, 4.0]);
/// ```
#[derive(Debug, Clone)]
pub struct Workspace {
    bytes: Vec<u8>,
    next: u64,
}

impl Workspace {
    /// Create a workspace of `size` bytes.
    pub fn new(size: usize) -> Self {
        Workspace {
            bytes: vec![0; size],
            next: 64,
        }
    }

    /// Create a workspace sized for a catalogue-kernel invocation over `n`
    /// elements: room for a few 4-byte arrays of length `n` plus headroom,
    /// never smaller than 16 KiB. The experiment drivers, the sweep layer
    /// and the stress tests all share this one sizing rule.
    pub fn sized_for(n: usize) -> Self {
        Workspace::new((16 * n + (1 << 12)).max(1 << 14))
    }

    /// Bump-allocate `size` bytes, 16-byte aligned.
    ///
    /// # Panics
    ///
    /// Panics if the workspace is exhausted. All arithmetic is checked, so a
    /// hostile `size` (e.g. `u64::MAX`) reports exhaustion instead of
    /// overflowing the offset computation.
    pub fn alloc(&mut self, size: u64) -> u64 {
        let base = self.next;
        let capacity = self.bytes.len() as u64;
        let end = size
            .checked_next_multiple_of(16)
            .and_then(|aligned| base.checked_add(aligned));
        match end {
            Some(end) if end <= capacity => {
                self.next = end;
                base
            }
            _ => panic!(
                "workspace exhausted: requested {size} bytes at offset {base} (capacity {capacity} bytes)"
            ),
        }
    }

    /// Reset the workspace to its freshly-constructed state: every byte
    /// zeroed, the bump pointer rewound.
    ///
    /// Sweep workers reuse one workspace allocation across many kernel
    /// invocations; a reset workspace is indistinguishable from
    /// `Workspace::new(size)`, so reuse never changes results.
    pub fn reset(&mut self) {
        self.bytes.fill(0);
        self.next = 64;
    }

    /// The raw bytes (to pass to a simulator).
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.bytes
    }

    /// The raw bytes, read-only.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consume the workspace, yielding its backing buffer without a copy
    /// (for handing prepared memory to an owning consumer).
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Write a slice of `f32` values at `addr`.
    pub fn write_f32s(&mut self, addr: u64, data: &[f32]) {
        for (i, v) in data.iter().enumerate() {
            let at = addr as usize + 4 * i;
            self.bytes[at..at + 4].copy_from_slice(&v.to_le_bytes());
        }
    }

    /// Read `n` `f32` values from `addr`.
    pub fn read_f32s(&self, addr: u64, n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| {
                let at = addr as usize + 4 * i;
                let mut b = [0u8; 4];
                b.copy_from_slice(&self.bytes[at..at + 4]);
                f32::from_le_bytes(b)
            })
            .collect()
    }

    /// Write a slice of bytes at `addr`.
    pub fn write_u8s(&mut self, addr: u64, data: &[u8]) {
        self.bytes[addr as usize..addr as usize + data.len()].copy_from_slice(data);
    }

    /// Read `n` bytes from `addr`.
    pub fn read_u8s(&self, addr: u64, n: usize) -> Vec<u8> {
        self.bytes[addr as usize..addr as usize + n].to_vec()
    }

    /// Write a slice of `u16` values at `addr`.
    pub fn write_u16s(&mut self, addr: u64, data: &[u16]) {
        for (i, v) in data.iter().enumerate() {
            let at = addr as usize + 2 * i;
            self.bytes[at..at + 2].copy_from_slice(&v.to_le_bytes());
        }
    }

    /// Read `n` `u16` values from `addr`.
    pub fn read_u16s(&self, addr: u64, n: usize) -> Vec<u16> {
        (0..n)
            .map(|i| {
                let at = addr as usize + 2 * i;
                u16::from_le_bytes([self.bytes[at], self.bytes[at + 1]])
            })
            .collect()
    }

    /// Write a slice of `i16` values at `addr`.
    pub fn write_i16s(&mut self, addr: u64, data: &[i16]) {
        for (i, v) in data.iter().enumerate() {
            let at = addr as usize + 2 * i;
            self.bytes[at..at + 2].copy_from_slice(&v.to_le_bytes());
        }
    }

    /// Write a slice of `i32` values at `addr`.
    pub fn write_i32s(&mut self, addr: u64, data: &[i32]) {
        for (i, v) in data.iter().enumerate() {
            let at = addr as usize + 4 * i;
            self.bytes[at..at + 4].copy_from_slice(&v.to_le_bytes());
        }
    }

    /// Read `n` `i32` values from `addr`.
    pub fn read_i32s(&self, addr: u64, n: usize) -> Vec<i32> {
        (0..n)
            .map(|i| {
                let at = addr as usize + 4 * i;
                let mut b = [0u8; 4];
                b.copy_from_slice(&self.bytes[at..at + 4]);
                i32::from_le_bytes(b)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitc_workloads::SAXPY_F32;

    #[test]
    fn offline_then_online_round_trip() {
        let (module, report) =
            offline_compile(SAXPY_F32, "k", &OptOptions::full()).expect("offline compiles");
        assert_eq!(report.total_vectorized(), 1);

        let mut ws = Workspace::new(1 << 14);
        let n = 40usize;
        let x = ws.alloc(4 * n as u64);
        let y = ws.alloc(4 * n as u64);
        ws.write_f32s(x, &vec![1.0; n]);
        ws.write_f32s(y, &vec![2.0; n]);
        let target = TargetDesc::x86_sse();
        let run = run_on_target(
            &module,
            &target,
            &JitOptions::split(),
            "saxpy_f32",
            &[
                MachineValue::Int(n as i64),
                MachineValue::Float(3.0),
                MachineValue::Int(x as i64),
                MachineValue::Int(y as i64),
            ],
            ws.bytes_mut(),
        )
        .expect("runs");
        assert!(run.stats.cycles > 0);
        assert!(run.jit.used_simd);
        assert_eq!(ws.read_f32s(y, n), vec![5.0f32; n]);
    }

    #[test]
    fn workspace_round_trips_each_type() {
        let mut ws = Workspace::new(1024);
        let a = ws.alloc(32);
        let b = ws.alloc(32);
        assert_ne!(a, b);
        ws.write_u8s(a, &[1, 2, 3]);
        assert_eq!(ws.read_u8s(a, 3), vec![1, 2, 3]);
        ws.write_u16s(a, &[500, 60_000]);
        assert_eq!(ws.read_u16s(a, 2), vec![500, 60_000]);
        ws.write_i32s(b, &[-5, 7]);
        assert_eq!(ws.read_i32s(b, 2), vec![-5, 7]);
        ws.write_i16s(b, &[-3]);
        assert_eq!(ws.bytes()[b as usize], 253);
    }

    #[test]
    #[should_panic(expected = "workspace exhausted")]
    fn workspace_overflow_panics() {
        let mut ws = Workspace::new(128);
        let _ = ws.alloc(1024);
    }

    #[test]
    fn workspace_exhaustion_reports_the_capacity() {
        let mut ws = Workspace::new(128);
        let err = std::panic::catch_unwind(move || ws.alloc(1024)).unwrap_err();
        let msg = err
            .downcast_ref::<String>()
            .expect("panic carries a message");
        assert!(msg.contains("capacity 128 bytes"), "got: {msg}");
    }

    #[test]
    #[should_panic(expected = "workspace exhausted")]
    fn workspace_alloc_rejects_hostile_sizes_without_overflowing() {
        // base + aligned(u64::MAX) would wrap; checked arithmetic must turn
        // this into the ordinary exhaustion panic instead.
        let mut ws = Workspace::new(1 << 12);
        let _ = ws.alloc(u64::MAX - 8);
    }

    #[test]
    fn pipeline_errors_are_reported() {
        let err = offline_compile("fn broken(", "k", &OptOptions::none()).unwrap_err();
        assert!(matches!(err, PipelineError::Frontend(_)));
        assert!(err.to_string().contains("front-end"));
    }
}
