//! `splitc` — command-line driver for the split-compilation toolchain.
//!
//! ```text
//! splitc build <kernels.mc> -o <module.svbc> [--no-vectorize] [--strip]
//! splitc dis <module.svbc>
//! splitc targets
//! splitc run <module.svbc|kernels.mc> --kernel <fn> --target <name> [--arg i:<int>|f:<float>]...
//! splitc disasm <catalogue-kernel|module.svbc|kernels.mc> [--target <name>] [--timing flat|in-order] [--no-fuse]
//! splitc bench <catalogue-kernel> [--n <elems>] [--target <name>] [--jobs <N>] [--repeats <R>]
//! splitc serve-bench [--n <elems>] [--requests <R>] [--workers <N>] [--queue <Q>] [--cache-cap <C>] [--max-batch <B>] [--seed <S>] [--soak | --chaos | --store <dir> [--no-store]]
//! ```
//!
//! * `build` runs the offline step (front end + optimizer) and writes the
//!   compact deployment format.
//! * `dis` prints the textual listing of a deployed module, including its
//!   annotations.
//! * `run` performs the online step for one target and executes a kernel whose
//!   parameters are all scalars (integers or floats).
//! * `disasm` runs the whole pipeline up to (but not including) execution and
//!   prints the deploy-time artifact the executor actually dispatches: the
//!   prepared instruction stream with resolved block offsets, per-instruction
//!   cycle costs, per-region fuel-and-prepaid-cycle charges, and — unless
//!   `--no-fuse` is given — the fused macro-ops with their constituent spans.
//!   `--timing in-order` prepares under the pipelined timing tier instead:
//!   the stream drops to the metered loop (region prepayment is flat-only)
//!   and every op is annotated with its latency class, so stall attribution
//!   is inspectable. This is the debugging surface for fusion and cost
//!   decisions.
//! * `bench` prepares one of the workload-catalogue kernels (which take
//!   pointer arguments) with generated data and reports simulated cycles on
//!   the chosen target, or on all Table 1 targets when none is given. The
//!   target × repeat matrix runs on the parallel sweep layer: `--jobs N`
//!   fans it over N worker threads (`--jobs 0` = one per host core) that
//!   share one engine, and `--repeats R` re-runs every cell R times to show
//!   the compile-once-run-many amortization.
//! * `serve-bench` drives mixed-module request traffic (every Table 1
//!   kernel as its own deployment, rotating over the full target catalogue)
//!   through the serving tier: sharded bounded intake (`--queue` is the
//!   global bound) drained by `--workers` threads (0 = one per host core)
//!   with continuous batching up to `--max-batch` requests per pull, over
//!   shared, fingerprint-deduplicated engines, optionally LRU-bounded with
//!   `--cache-cap`. Prints requests/s, queue-wait and execute p50/p99/p999,
//!   the batch-size distribution, and the server's queue, engine and cache
//!   counters. `--soak` switches to the streaming soak driver: requests are
//!   generated from per-(kernel × target) templates through a bounded
//!   in-flight window (so 10⁵+ requests don't need 10⁵ pre-built buffers)
//!   and every response is verified against its template's single-threaded
//!   reference checksum. `--seed <S>` reseeds the whole run — request
//!   inputs, retry-backoff jitter and (with `--chaos`) every fault-plan
//!   decision derive from it, so two runs with one seed are replays of each
//!   other. `--chaos` switches to the chaos soak: the soak's streamed,
//!   verified traffic under a deterministic seeded fault plan (injected
//!   panics, transient failures, latency spikes, a persistent poisoning
//!   that drives one circuit breaker open and back closed, deadlines on a
//!   slice of the requests). The run asserts exactly-once answering, exact
//!   books (`accepted == completed + expired`, response tallies equal the
//!   server counters) and bit-identity of every successful response against
//!   its single-threaded reference — and fails loudly if the breaker never
//!   opened or never recovered. `--store <dir>` switches to the persistent
//!   artifact-store benchmark: the same load runs twice against the store
//!   directory — once cold (store cleared, every key compiled and
//!   published) and once warm in a fresh server (zero compilations, every
//!   key loaded from disk) — and prints the cold-vs-warm time-to-first-
//!   response delta, asserting bit-identity between the passes.
//!   `--no-store` cancels a `--store` flag (handy when a wrapper script
//!   always passes one).

use splitc::serve::{
    default_chaos_plan, run_chaos, run_load, run_soak, run_store_bench, LoadConfig,
};
use splitc::splitc_jit::JitOptions;
use splitc::splitc_opt::OptOptions;
use splitc::splitc_targets::{MachineValue, TargetDesc, TimingKind};
use splitc::splitc_vbc::{decode_module, encode_module, Module};
use splitc::sweep::{sweep_kernels, SweepConfig};
use splitc::{fmt_cache_line, offline_compile, run_on_target, Workspace};
use std::process::ExitCode;

fn usage() -> &'static str {
    "usage:\n  splitc build <kernels.mc> -o <module.svbc> [--no-vectorize] [--strip]\n  splitc dis <module.svbc>\n  splitc targets\n  splitc run <module.svbc|kernels.mc> --kernel <fn> --target <name> [--arg i:<int>|f:<float>]...\n  splitc disasm <catalogue-kernel|module.svbc|kernels.mc> [--target <name>] [--timing flat|in-order] [--no-fuse]\n  splitc bench <kernel> [--n <elems>] [--target <name>] [--jobs <N>] [--repeats <R>]\n  splitc serve-bench [--n <elems>] [--requests <R>] [--workers <N>] [--queue <Q>] [--cache-cap <C>] [--max-batch <B>] [--seed <S>] [--soak | --chaos | --store <dir> [--no-store]]"
}

/// Parse one `--arg` value of the form `i:<integer>` or `f:<float>`.
fn parse_arg(text: &str) -> Result<MachineValue, String> {
    match text.split_once(':') {
        Some(("i", v)) => v
            .parse::<i64>()
            .map(MachineValue::Int)
            .map_err(|e| format!("bad integer argument `{v}`: {e}")),
        Some(("f", v)) => v
            .parse::<f64>()
            .map(MachineValue::Float)
            .map_err(|e| format!("bad float argument `{v}`: {e}")),
        _ => Err(format!(
            "argument `{text}` must look like i:<int> or f:<float>"
        )),
    }
}

/// Parse a `--timing` value into a timing tier.
fn parse_timing(text: &str) -> Result<TimingKind, String> {
    match text {
        "flat" => Ok(TimingKind::Flat),
        "in-order" | "inorder" | "pipelined" => Ok(TimingKind::InOrder),
        other => Err(format!(
            "unknown timing model `{other}` (expected flat or in-order)"
        )),
    }
}

/// Extract the value following `flag`, removing both from `args`.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    if pos + 1 >= args.len() {
        return None;
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    Some(value)
}

/// Remove a boolean switch from `args`, reporting whether it was present.
fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        args.remove(pos);
        true
    } else {
        false
    }
}

/// Load a module from either a compact `.svbc` file or mini-C source.
fn load_module(path: &str) -> Result<Module, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if bytes.starts_with(splitc::splitc_vbc::MAGIC) {
        decode_module(&bytes).map_err(|e| format!("cannot decode {path}: {e}"))
    } else {
        let source = String::from_utf8(bytes).map_err(|_| format!("{path} is not UTF-8 source"))?;
        let (module, _) = offline_compile(&source, path, &OptOptions::full())
            .map_err(|e| format!("cannot compile {path}: {e}"))?;
        Ok(module)
    }
}

fn cmd_build(mut args: Vec<String>) -> Result<(), String> {
    let output = take_flag(&mut args, "-o").ok_or("build requires -o <module.svbc>")?;
    let no_vectorize = take_switch(&mut args, "--no-vectorize");
    let strip = take_switch(&mut args, "--strip");
    let input = args.first().ok_or("build requires an input file")?;
    let source = std::fs::read_to_string(input).map_err(|e| format!("cannot read {input}: {e}"))?;
    let opts = if no_vectorize {
        OptOptions {
            vectorize: false,
            ..OptOptions::full()
        }
    } else {
        OptOptions::full()
    };
    let (mut module, report) =
        offline_compile(&source, input, &opts).map_err(|e| format!("offline step failed: {e}"))?;
    if strip {
        module.strip_annotations();
    }
    let wire = encode_module(&module);
    std::fs::write(&output, &wire).map_err(|e| format!("cannot write {output}: {e}"))?;
    println!(
        "{}: {} functions, {} vectorized loops, {} bytes -> {}",
        input,
        module.functions().len(),
        report.total_vectorized(),
        wire.len(),
        output
    );
    Ok(())
}

fn cmd_dis(args: Vec<String>) -> Result<(), String> {
    let input = args.first().ok_or("dis requires an input file")?;
    let module = load_module(input)?;
    print!("{module}");
    Ok(())
}

fn cmd_targets() {
    for t in TargetDesc::presets() {
        println!("{t}");
    }
}

fn cmd_run(mut args: Vec<String>) -> Result<(), String> {
    let kernel = take_flag(&mut args, "--kernel").ok_or("run requires --kernel <fn>")?;
    let target_name = take_flag(&mut args, "--target").unwrap_or_else(|| "x86-sse".to_owned());
    let target = TargetDesc::preset(&target_name)
        .ok_or_else(|| format!("unknown target `{target_name}` (see `splitc targets`)"))?;
    let mut call_args = Vec::new();
    while let Some(a) = take_flag(&mut args, "--arg") {
        call_args.push(parse_arg(&a)?);
    }
    let input = args.first().ok_or("run requires an input file")?;
    let module = load_module(input)?;
    let mut ws = Workspace::new(1 << 20);
    let run = run_on_target(
        &module,
        &target,
        &JitOptions::split(),
        &kernel,
        &call_args,
        ws.bytes_mut(),
    )
    .map_err(|e| format!("execution failed: {e}"))?;
    match run.result {
        Some(MachineValue::Int(v)) => println!("result: {v}"),
        Some(MachineValue::Float(v)) => println!("result: {v}"),
        None => println!("result: (void)"),
    }
    println!(
        "cycles: {}  instructions: {}  spill ops: {}  online work: {}",
        run.stats.cycles,
        run.stats.instructions,
        run.spill_ops(),
        run.jit.total_work()
    );
    Ok(())
}

fn cmd_disasm(mut args: Vec<String>) -> Result<(), String> {
    let target_name = take_flag(&mut args, "--target").unwrap_or_else(|| "x86-sse".to_owned());
    let timing = take_flag(&mut args, "--timing")
        .map(|s| parse_timing(&s))
        .transpose()?
        .unwrap_or_default();
    let target = TargetDesc::preset(&target_name)
        .ok_or_else(|| format!("unknown target `{target_name}` (see `splitc targets`)"))?
        .with_timing(timing);
    let fuse = !take_switch(&mut args, "--no-fuse");
    let input = args
        .first()
        .ok_or("disasm requires a catalogue kernel name or an input file")?;
    // A bare catalogue name wins over a file of the same name: the catalogue
    // is the common case and its names never collide with real paths.
    let module = match splitc::splitc_workloads::kernel(input) {
        Some(k) => {
            let (module, _) = offline_compile(k.source, k.name, &OptOptions::full())
                .map_err(|e| format!("cannot compile catalogue kernel {}: {e}", k.name))?;
            module
        }
        None => load_module(input)?,
    };
    let options = JitOptions {
        fuse,
        ..JitOptions::split()
    };
    let (program, _) = splitc::splitc_jit::compile_module(&module, &target, &options)
        .map_err(|e| format!("online compilation failed: {e}"))?;
    let prepared = splitc::splitc_targets::PreparedProgram::prepare_with(&program, &target, fuse)
        .map_err(|e| format!("deploy-time preparation failed: {e}"))?;
    print!("{}", prepared.disasm());
    Ok(())
}

fn cmd_bench(mut args: Vec<String>) -> Result<(), String> {
    let n: usize = take_flag(&mut args, "--n")
        .map(|s| s.parse().map_err(|e| format!("bad --n value: {e}")))
        .transpose()?
        .unwrap_or(splitc::splitc_workloads::DEFAULT_N);
    let jobs: usize = take_flag(&mut args, "--jobs")
        .map(|s| s.parse().map_err(|e| format!("bad --jobs value: {e}")))
        .transpose()?
        .unwrap_or(1);
    let repeats: usize = take_flag(&mut args, "--repeats")
        .map(|s| s.parse().map_err(|e| format!("bad --repeats value: {e}")))
        .transpose()?
        .unwrap_or(1);
    let target_filter = take_flag(&mut args, "--target");
    let kernel_name = args
        .first()
        .ok_or("bench requires a catalogue kernel name")?;
    let kernel = splitc::splitc_workloads::kernel(kernel_name)
        .ok_or_else(|| format!("`{kernel_name}` is not in the workload catalogue"))?;

    let targets: Vec<TargetDesc> = match target_filter {
        Some(name) => {
            vec![TargetDesc::preset(&name).ok_or_else(|| format!("unknown target `{name}`"))?]
        }
        None => TargetDesc::table1_targets(),
    };
    // One deployment for the whole sweep: each target compiles exactly once,
    // however many repeats and workers the matrix fans out over.
    let cfg = SweepConfig::new(n).with_jobs(jobs).with_repeats(repeats);
    let result =
        sweep_kernels(&[kernel], &targets, &cfg).map_err(|e| format!("sweep failed: {e}"))?;
    for cell in result.cells.iter().filter(|c| c.repeat == 0) {
        println!(
            "{:<12} n={n}  cycles={}  scaled={:.1}  checksum={:016x}",
            cell.target, cell.cycles, cell.scaled_cycles, cell.checksum
        );
    }
    println!("{}", fmt_cache_line(&result.cache));
    Ok(())
}

fn cmd_serve_bench(mut args: Vec<String>) -> Result<(), String> {
    let n: usize = take_flag(&mut args, "--n")
        .map(|s| s.parse().map_err(|e| format!("bad --n value: {e}")))
        .transpose()?
        .unwrap_or(1024);
    let requests: usize = take_flag(&mut args, "--requests")
        .map(|s| s.parse().map_err(|e| format!("bad --requests value: {e}")))
        .transpose()?
        .unwrap_or(256);
    let workers: usize = take_flag(&mut args, "--workers")
        .map(|s| s.parse().map_err(|e| format!("bad --workers value: {e}")))
        .transpose()?
        .unwrap_or(0);
    let queue: usize = take_flag(&mut args, "--queue")
        .map(|s| s.parse().map_err(|e| format!("bad --queue value: {e}")))
        .transpose()?
        .unwrap_or(64);
    let cache_cap: usize = take_flag(&mut args, "--cache-cap")
        .map(|s| s.parse().map_err(|e| format!("bad --cache-cap value: {e}")))
        .transpose()?
        .unwrap_or(0);
    let max_batch: usize = take_flag(&mut args, "--max-batch")
        .map(|s| s.parse().map_err(|e| format!("bad --max-batch value: {e}")))
        .transpose()?
        .unwrap_or(16);
    let seed: Option<u64> = take_flag(&mut args, "--seed")
        .map(|s| s.parse().map_err(|e| format!("bad --seed value: {e}")))
        .transpose()?;
    let soak = take_switch(&mut args, "--soak");
    let chaos = take_switch(&mut args, "--chaos");
    let mut store_dir = take_flag(&mut args, "--store");
    if take_switch(&mut args, "--no-store") {
        store_dir = None;
    }
    if soak && chaos {
        return Err("--soak and --chaos are mutually exclusive".to_owned());
    }
    if store_dir.is_some() && (soak || chaos) {
        return Err("--store runs the cold-vs-warm load driver; drop --soak/--chaos".to_owned());
    }
    if let Some(extra) = args.first() {
        return Err(format!(
            "serve-bench takes no positional argument `{extra}`"
        ));
    }
    let mut cfg = LoadConfig::catalogue(n, requests)
        .with_workers(workers)
        .with_queue_capacity(queue)
        .with_cache_capacity(cache_cap)
        .with_max_batch(max_batch);
    if let Some(seed) = seed {
        cfg = cfg.with_seed(seed);
    }
    if let Some(dir) = store_dir {
        let report = run_store_bench(&cfg, std::path::Path::new(&dir))
            .map_err(|e| format!("store benchmark failed: {e}"))?;
        print!("{}", report.render());
    } else if chaos {
        let plan = default_chaos_plan(cfg.kernels.len() * cfg.targets.len(), cfg.seed);
        let report = run_chaos(&cfg, &plan).map_err(|e| format!("chaos soak failed: {e}"))?;
        print!("{}", report.render());
        // The stock plan promises the full breaker lifecycle; a chaos run
        // that never opened (or never recovered) a breaker proves nothing
        // and must fail the CI step that invoked it.
        if report.stats.breaker_opened == 0 || report.stats.breaker_closed == 0 {
            return Err(format!(
                "chaos soak did not exercise the breaker lifecycle \
                 (opened {}, closed {}) — increase --requests",
                report.stats.breaker_opened, report.stats.breaker_closed
            ));
        }
    } else if soak {
        let report = run_soak(&cfg).map_err(|e| format!("serving soak failed: {e}"))?;
        print!("{}", report.render());
    } else {
        let report = run_load(&cfg).map_err(|e| format!("serving load failed: {e}"))?;
        print!("{}", report.render());
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("{}", usage());
        return ExitCode::from(2);
    }
    let command = args.remove(0);
    let result = match command.as_str() {
        "build" => cmd_build(args),
        "dis" => cmd_dis(args),
        "targets" => {
            cmd_targets();
            Ok(())
        }
        "run" => cmd_run(args),
        "disasm" => cmd_disasm(args),
        "bench" => cmd_bench(args),
        "serve-bench" => cmd_serve_bench(args),
        "--help" | "-h" | "help" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_arguments_parse() {
        assert_eq!(parse_arg("i:42").unwrap(), MachineValue::Int(42));
        assert_eq!(parse_arg("f:2.5").unwrap(), MachineValue::Float(2.5));
        assert!(parse_arg("x:1").is_err());
        assert!(parse_arg("i:notanumber").is_err());
        assert!(parse_arg("42").is_err());
    }

    #[test]
    fn flags_and_switches_are_extracted() {
        let mut args: Vec<String> = ["a.mc", "-o", "out.svbc", "--strip"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        assert_eq!(take_flag(&mut args, "-o").as_deref(), Some("out.svbc"));
        assert!(take_switch(&mut args, "--strip"));
        assert!(!take_switch(&mut args, "--strip"));
        assert_eq!(args, vec!["a.mc".to_owned()]);
        assert_eq!(take_flag(&mut args, "--missing"), None);
    }

    #[test]
    fn build_dis_run_round_trip_through_files() {
        let dir = std::env::temp_dir().join(format!("splitc-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let src_path = dir.join("k.mc");
        let out_path = dir.join("k.svbc");
        std::fs::write(&src_path, "fn triple(x: i32) -> i32 { return 3 * x; }").unwrap();

        cmd_build(vec![
            src_path.to_str().unwrap().to_owned(),
            "-o".into(),
            out_path.to_str().unwrap().to_owned(),
        ])
        .expect("build succeeds");
        assert!(out_path.exists());

        // Loading the compact file gives back the same module as recompiling.
        let module = load_module(out_path.to_str().unwrap()).expect("loads");
        assert!(module.function("triple").is_some());

        cmd_run(vec![
            out_path.to_str().unwrap().to_owned(),
            "--kernel".into(),
            "triple".into(),
            "--target".into(),
            "powerpc".into(),
            "--arg".into(),
            "i:14".into(),
        ])
        .expect("run succeeds");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_bench_runs_a_small_load() {
        cmd_serve_bench(vec![
            "--n".into(),
            "32".into(),
            "--requests".into(),
            "12".into(),
            "--workers".into(),
            "2".into(),
            "--queue".into(),
            "4".into(),
            "--max-batch".into(),
            "4".into(),
        ])
        .expect("serving load succeeds");
        assert!(cmd_serve_bench(vec!["--workers".into(), "x".into()]).is_err());
        assert!(cmd_serve_bench(vec!["--max-batch".into(), "x".into()]).is_err());
        assert!(cmd_serve_bench(vec!["spurious".into()]).is_err());
    }

    #[test]
    fn serve_bench_soak_streams_and_verifies() {
        cmd_serve_bench(vec![
            "--n".into(),
            "32".into(),
            "--requests".into(),
            "64".into(),
            "--workers".into(),
            "2".into(),
            "--queue".into(),
            "8".into(),
            "--seed".into(),
            "7".into(),
            "--soak".into(),
        ])
        .expect("serving soak succeeds");
        assert!(cmd_serve_bench(vec!["--seed".into(), "x".into()]).is_err());
        assert!(
            cmd_serve_bench(vec!["--soak".into(), "--chaos".into()]).is_err(),
            "the two soak modes are mutually exclusive"
        );
    }

    #[test]
    fn serve_bench_store_runs_cold_then_warm() {
        let dir = std::env::temp_dir().join(format!(
            "splitc-cli-store-{}-serve_bench_store_runs_cold_then_warm",
            std::process::id()
        ));
        cmd_serve_bench(vec![
            "--n".into(),
            "32".into(),
            "--requests".into(),
            "12".into(),
            "--workers".into(),
            "2".into(),
            "--store".into(),
            dir.to_string_lossy().into_owned(),
        ])
        .expect("store benchmark succeeds (cold pass compiles, warm pass loads)");
        assert!(
            cmd_serve_bench(vec!["--store".into(), "x".into(), "--soak".into()]).is_err(),
            "--store and --soak are mutually exclusive"
        );
        // --no-store cancels --store: this runs the plain load driver.
        cmd_serve_bench(vec![
            "--n".into(),
            "32".into(),
            "--requests".into(),
            "4".into(),
            "--workers".into(),
            "1".into(),
            "--store".into(),
            dir.to_string_lossy().into_owned(),
            "--no-store".into(),
        ])
        .expect("--no-store falls back to the storeless load");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_bench_chaos_exercises_the_breaker_lifecycle() {
        cmd_serve_bench(vec![
            "--n".into(),
            "32".into(),
            "--requests".into(),
            "3000".into(),
            "--workers".into(),
            "2".into(),
            "--queue".into(),
            "16".into(),
            "--seed".into(),
            "11".into(),
            "--chaos".into(),
        ])
        .expect("chaos soak succeeds, including the breaker lifecycle check");
    }

    #[test]
    fn disasm_prints_the_prepared_stream_for_catalogue_kernels() {
        cmd_disasm(vec!["saxpy_f32".into()]).expect("fused disasm succeeds");
        cmd_disasm(vec![
            "sum_u8".into(),
            "--target".into(),
            "powerpc".into(),
            "--no-fuse".into(),
        ])
        .expect("unfused disasm succeeds");
        assert!(cmd_disasm(vec!["saxpy_f32".into(), "--target".into(), "vax".into()]).is_err());
        assert!(cmd_disasm(vec!["no_such_kernel_or_file".into()]).is_err());
        assert!(cmd_disasm(vec![]).is_err());
    }

    #[test]
    fn disasm_annotates_latency_classes_under_the_pipelined_tier() {
        cmd_disasm(vec![
            "saxpy_f32".into(),
            "--timing".into(),
            "in-order".into(),
        ])
        .expect("pipelined disasm succeeds");
        assert!(parse_timing("flat").is_ok());
        assert_eq!(parse_timing("in-order").unwrap(), TimingKind::InOrder);
        assert!(parse_timing("ooo").is_err());
        assert!(cmd_disasm(vec!["saxpy_f32".into(), "--timing".into(), "ooo".into()]).is_err());
    }

    #[test]
    fn bench_runs_a_parallel_repeated_sweep() {
        cmd_bench(vec![
            "saxpy_f32".into(),
            "--n".into(),
            "64".into(),
            "--jobs".into(),
            "2".into(),
            "--repeats".into(),
            "3".into(),
        ])
        .expect("bench sweep succeeds");
        assert!(cmd_bench(vec!["not_a_kernel".into()]).is_err());
        assert!(cmd_bench(vec!["saxpy_f32".into(), "--jobs".into(), "x".into()]).is_err());
    }
}
