//! Serving loads over the runtime's request queue.
//!
//! [`splitc_runtime::serve`] is the generic front-end (bounded queue, worker
//! pool, fingerprint-deduplicated engines); this module is the batteries: it
//! knows how to turn the workload catalogue into **mixed-module traffic** —
//! each kernel compiled offline into its own module, so the server juggles
//! several deployments at once — generate seeded per-request inputs in a
//! [`Workspace`], drive a full load through a [`Server`] and summarize the
//! outcome ([`LoadReport`]: requests/s, queue high water, aggregated cache
//! counters, per-request checksums).
//!
//! Determinism: request `r`'s kernel, target and input bytes depend only on
//! `(r, cfg.seed)`, never on worker scheduling, so a `workers = 8` load is
//! bit-identical (checksum-for-checksum) to a `workers = 1` load — the
//! property `benches/serve.rs` and the serving test suite pin down.
//!
//! The CLI's `splitc serve-bench`, the `report --json` serving trajectory and
//! `benches/serve.rs` all run through [`run_load`]; `serve-bench --soak` and
//! the SLO rows of the sweep JSON run through [`run_soak`], which streams
//! requests through a bounded in-flight window instead of materializing the
//! whole load up front — that's what makes 10⁵+-request soaks affordable —
//! and verifies every response against a per-template single-threaded
//! reference checksum as it drains.

pub use splitc_runtime::serve::{
    module_fingerprint, BreakerPolicy, FaultKind, FaultPlan, FaultRule, FaultSelector, FaultSite,
    Request, Response, ResponseHandle, ResponseLost, RetryPolicy, ServeModule, Server,
    ServerConfig, ServerStats, SubmitError, ENGINE_SHARDS, PANIC_MESSAGE_CAP,
};
use splitc_runtime::EngineError;
pub use splitc_runtime::{Histogram, EMPTY_QUANTILE};

use crate::harness::{checksum_bytes, prepare};
use crate::report::fmt_cache_line;
use crate::session::{run_on_target, PipelineError, Workspace};
use splitc_jit::JitOptions;
use splitc_opt::{optimize_module, OptOptions};
use splitc_runtime::ArtifactStore;
use splitc_targets::TargetDesc;
use splitc_workloads::{module_for, table1_kernels, Kernel};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shape of one serving load: traffic mix, volume and server sizing.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Kernels in the mix; each is compiled into **its own module**, so the
    /// server dedups and shares one engine per kernel.
    pub kernels: Vec<Kernel>,
    /// Targets requests rotate over.
    pub targets: Vec<TargetDesc>,
    /// Total requests to submit.
    pub requests: usize,
    /// Elements processed per request.
    pub n: usize,
    /// Worker threads (0 = one per host core).
    pub workers: usize,
    /// Bound on the server's request queue.
    pub queue_capacity: usize,
    /// Per-engine code-cache bound (0 = unbounded).
    pub cache_capacity: usize,
    /// Base seed; request `r` prepares its inputs from `seed + r`.
    pub seed: u64,
    /// Online-compilation configuration shared by every request.
    pub options: JitOptions,
    /// Continuous-batching bound forwarded to [`ServerConfig::max_batch`]
    /// (1 disables batching).
    pub max_batch: usize,
    /// Persistent artifact store the server's engines consult before
    /// compiling (`None` = in-memory caching only, the historical behaviour).
    pub store: Option<Arc<ArtifactStore>>,
}

impl LoadConfig {
    /// A catalogue load: the Table 1 kernels over the full preset target
    /// catalogue, `requests` requests of `n` elements each, one worker.
    pub fn catalogue(n: usize, requests: usize) -> Self {
        LoadConfig {
            kernels: table1_kernels(),
            targets: TargetDesc::presets(),
            requests,
            n,
            workers: 1,
            queue_capacity: 64,
            cache_capacity: 0,
            seed: 0xdac,
            options: JitOptions::split(),
            max_batch: 16,
            store: None,
        }
    }

    /// Same load fanned over `workers` worker threads (0 = all cores).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Same load with a queue bound of `capacity` requests.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Same load with a per-engine code-cache bound.
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Same load with a continuous-batching bound (1 disables batching).
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch;
        self
    }

    /// Same load with this base seed. Every generated input, every
    /// retry-backoff jitter and every [`FaultPlan`] decision derives from
    /// it, so two runs with one seed are replays of each other.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Same load backed by a persistent artifact store: every engine the
    /// server deduplicates probes `store` before compiling and publishes
    /// what it compiles, so a second process (or a second [`run_load`])
    /// pointed at the same directory starts warm.
    pub fn with_store(mut self, store: Arc<ArtifactStore>) -> Self {
        self.store = Some(store);
        self
    }
}

/// Format a nanosecond latency as microseconds with one decimal.
/// [`EMPTY_QUANTILE`] — the quantile of a distribution with no samples —
/// renders as `n/a`, never as a misleading 0.0µs.
fn fmt_us(ns: u64) -> String {
    if ns == EMPTY_QUANTILE {
        return "n/a".to_owned();
    }
    format!("{:.1}µs", ns as f64 / 1e3)
}

/// Render the p50/p99/p999 line of a latency histogram.
fn fmt_latency(label: &str, h: &Histogram) -> String {
    format!(
        "  {label:<11} p50 {} · p99 {} · p999 {} · max {}\n",
        fmt_us(h.p50()),
        fmt_us(h.p99()),
        fmt_us(h.p999()),
        fmt_us(h.max()),
    )
}

/// A completed serving load.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests served (every one of them answered).
    pub requests: usize,
    /// Worker threads the server ran (0 resolved to the host's cores).
    pub workers: usize,
    /// Wall-clock duration from first submission to last response, in
    /// nanoseconds.
    pub elapsed_ns: u128,
    /// Time to first response: wall-clock duration from first submission
    /// until the *first submitted* request's response arrived, in
    /// nanoseconds. On a cold start this is dominated by the first online
    /// compilation; with a populated artifact store it collapses to a disk
    /// read — the cold-vs-warm delta [`run_store_bench`] reports.
    pub ttfr_ns: u128,
    /// Serving throughput over that window.
    pub requests_per_sec: f64,
    /// Per-request result checksums, in submission order — the bit-identity
    /// handle loads of different worker counts are compared with.
    pub checksums: Vec<u64>,
    /// Final server counters (taken after the graceful shutdown drain).
    pub stats: ServerStats,
}

impl LoadReport {
    /// Render the report the way `splitc serve-bench` prints it.
    pub fn render(&self) -> String {
        let mut out = format!(
            "serve: {} requests over {} workers in {:.1} ms ({:.1} req/s, first response {:.1} ms)\n",
            self.requests,
            self.workers,
            self.elapsed_ns as f64 / 1e6,
            self.requests_per_sec,
            self.ttfr_ns as f64 / 1e6,
        );
        out.push_str(&format!(
            "queue: high water {} · accepted {} · completed {} · rejected {}\n",
            self.stats.queue_high_water,
            self.stats.accepted,
            self.stats.completed,
            self.stats.rejected,
        ));
        out.push_str(&format!(
            "engines: {} shared deployments\n",
            self.stats.engines
        ));
        out.push_str("latency:\n");
        out.push_str(&fmt_latency("queue-wait", &self.stats.queue_wait));
        out.push_str(&fmt_latency("execute", &self.stats.execute));
        out.push_str(&format!(
            "batches: {} served · mean size {:.2} · max {}\n",
            self.stats.batch_sizes.count(),
            self.stats.batch_sizes.mean(),
            self.stats.batch_sizes.max(),
        ));
        for (target, count) in &self.stats.per_target {
            out.push_str(&format!("  {target:<12} {count} requests\n"));
        }
        out.push_str(&fmt_fault_lines(&self.stats));
        out.push_str(&fmt_cache_line(&self.stats.cache));
        out.push('\n');
        out
    }
}

/// Render the fault-tolerance counter lines shared by every serving report
/// (empty when the load saw no faults, deadlines or breaker activity — the
/// healthy-path output stays unchanged).
fn fmt_fault_lines(stats: &ServerStats) -> String {
    let any = stats.expired
        + stats.cancelled
        + stats.retried
        + stats.degraded
        + stats.failed_fast
        + stats.faults_injected
        + stats.breaker_opened;
    if any == 0 {
        return String::new();
    }
    format!(
        "faults: injected {} · retried {} · expired {} · cancelled {} · degraded {} · failed-fast {}\n\
         breaker: opened {} · half-opened {} · closed {}\n",
        stats.faults_injected,
        stats.retried,
        stats.expired,
        stats.cancelled,
        stats.degraded,
        stats.failed_fast,
        stats.breaker_opened,
        stats.breaker_half_opened,
        stats.breaker_closed,
    )
}

/// Run one serving load: compile each kernel offline into its own module,
/// start a [`Server`], submit `cfg.requests` requests (kernel-major rotation
/// over `kernels × targets`, seeded inputs), wait for every response, verify
/// and checksum it, then gracefully shut the server down.
///
/// Submission uses the blocking [`Server::submit`], so the bounded queue's
/// backpressure throttles the generator to the pool's drain rate. Every
/// request is fully built — inputs generated, memory filled — *before* the
/// clock starts: the measured window covers submission through last
/// response, so `requests_per_sec` reflects the serving layer itself, not
/// the generator's single-threaded input preparation.
///
/// # Errors
///
/// Returns the first [`PipelineError`] from offline compilation or from any
/// served request.
///
/// # Panics
///
/// Panics if a worker dies before responding ([`ResponseLost`]) — graceful
/// shutdown makes that unreachable short of a worker panic.
pub fn run_load(cfg: &LoadConfig) -> Result<LoadReport, PipelineError> {
    assert!(!cfg.kernels.is_empty(), "a load needs at least one kernel");
    assert!(!cfg.targets.is_empty(), "a load needs at least one target");
    // Offline step, outside the measured window: one module per kernel.
    let mut modules = Vec::with_capacity(cfg.kernels.len());
    for kernel in &cfg.kernels {
        let mut module = module_for(std::slice::from_ref(kernel), kernel.name)
            .map_err(PipelineError::Frontend)?;
        optimize_module(&mut module, &OptOptions::full());
        modules.push(ServeModule::new(module));
    }

    let server = Server::start(ServerConfig {
        workers: cfg.workers,
        queue_capacity: cfg.queue_capacity,
        cache_capacity: cfg.cache_capacity,
        max_batch: cfg.max_batch,
        seed: cfg.seed,
        store: cfg.store.clone(),
        ..ServerConfig::default()
    });

    // Build every request before starting the clock: input generation is
    // the generator's cost, not the serving layer's.
    let mut requests = Vec::with_capacity(cfg.requests);
    let mut prepared_all = Vec::with_capacity(cfg.requests);
    for r in 0..cfg.requests {
        let ki = r % cfg.kernels.len();
        let ti = (r / cfg.kernels.len()) % cfg.targets.len();
        let mut ws = Workspace::sized_for(cfg.n);
        let prepared = prepare(
            cfg.kernels[ki].name,
            cfg.n,
            cfg.seed.wrapping_add(r as u64),
            &mut ws,
        );
        requests.push(Request {
            module: modules[ki].clone(),
            kernel: cfg.kernels[ki].name.to_owned(),
            target: cfg.targets[ti].clone(),
            options: cfg.options,
            args: prepared.args.clone(),
            mem: ws.into_bytes(),
            deadline: None,
            tag: r as u64,
        });
        prepared_all.push(prepared);
    }

    let start = Instant::now();
    let mut handles = Vec::with_capacity(cfg.requests);
    for request in requests {
        let handle = server
            .submit(request)
            .unwrap_or_else(|e| panic!("the load generator's server refused a request: {e}"));
        handles.push(handle);
    }

    // The clock stops at the last *response*; checksumming the returned
    // memory images is generator-side verification work, done after.
    // Handles resolve in submission order, so the first wait that returns
    // dates the first submitted request's response — the time-to-first-
    // response a freshly started deployment makes its users feel.
    let mut responses = Vec::with_capacity(cfg.requests);
    let mut ttfr_ns = 0u128;
    for (i, handle) in handles.into_iter().enumerate() {
        responses.push(handle.wait().expect("serving worker died mid-load"));
        if i == 0 {
            ttfr_ns = start.elapsed().as_nanos();
        }
    }
    let elapsed_ns = start.elapsed().as_nanos();

    let mut checksums = Vec::with_capacity(cfg.requests);
    for (response, prepared) in responses.into_iter().zip(&prepared_all) {
        let run = response.outcome?;
        checksums.push(checksum_bytes(run.result, prepared, &response.mem));
    }

    let workers = server.workers();
    let stats = server.shutdown();
    let secs = (elapsed_ns as f64 / 1e9).max(1e-9);
    Ok(LoadReport {
        requests: cfg.requests,
        workers,
        elapsed_ns,
        ttfr_ns,
        requests_per_sec: cfg.requests as f64 / secs,
        checksums,
        stats,
    })
}

/// A completed cold-vs-warm artifact-store benchmark ([`run_store_bench`]):
/// the same load run twice against one store directory — first with the
/// store emptied (every engine compiles and publishes), then again in a
/// fresh server sharing the now-populated store (every engine loads instead
/// of compiling). The cold/warm time-to-first-response delta is the number
/// the persistent store exists for: it is the compilation latency a restart
/// no longer pays.
#[derive(Debug, Clone)]
pub struct StoreBenchReport {
    /// Store directory both passes shared.
    pub dir: PathBuf,
    /// Entries on disk after the warm pass — one per distinct
    /// `(module, target, options)` key the load exercised.
    pub entries: usize,
    /// The cold pass: empty store, every key compiled and published.
    pub cold: LoadReport,
    /// The warm pass: a fresh server, zero compilations, every key served
    /// from disk — bit-identical checksums to the cold pass.
    pub warm: LoadReport,
}

impl StoreBenchReport {
    /// Cold TTFR over warm TTFR — how much faster a restarted deployment
    /// answers its first request thanks to the store.
    pub fn ttfr_speedup(&self) -> f64 {
        self.cold.ttfr_ns as f64 / (self.warm.ttfr_ns as f64).max(1.0)
    }

    /// Render the report the way `splitc serve-bench --store` prints it.
    pub fn render(&self) -> String {
        let mut out = format!(
            "store: {} ({} entries after the cold pass)\n",
            self.dir.display(),
            self.entries,
        );
        out.push_str(&format!(
            "cold: first response {:.2} ms · total {:.1} ms · {} compiles · {} disk misses\n",
            self.cold.ttfr_ns as f64 / 1e6,
            self.cold.elapsed_ns as f64 / 1e6,
            self.cold.stats.cache.compiles,
            self.cold.stats.cache.disk_misses,
        ));
        out.push_str(&format!(
            "warm: first response {:.2} ms · total {:.1} ms · {} compiles · {} disk hits\n",
            self.warm.ttfr_ns as f64 / 1e6,
            self.warm.elapsed_ns as f64 / 1e6,
            self.warm.stats.cache.compiles,
            self.warm.stats.cache.disk_hits,
        ));
        out.push_str(&format!(
            "time-to-first-response speedup: {}x\n",
            crate::report::fmt_speedup(self.ttfr_speedup()),
        ));
        out
    }
}

/// Run the cold-vs-warm artifact-store benchmark: clear the store at `dir`,
/// run `cfg`'s load against it cold (compiling and publishing every key),
/// then run the identical load again in a fresh server sharing the now-warm
/// store, and assert the split-compilation contract on the way out:
/// the warm pass compiles **nothing** (`compiles == 0`, one disk hit per
/// key the cold pass compiled) and its responses are bit-identical,
/// checksum-for-checksum, to the cold pass's.
///
/// # Errors
///
/// Returns the first [`PipelineError`] either pass produces.
///
/// # Panics
///
/// Panics if the store directory cannot be created, or if the warm pass
/// violates the contract above (a store bug — staleness must fall back to
/// recompilation, never to a wrong or slow-path answer).
pub fn run_store_bench(cfg: &LoadConfig, dir: &Path) -> Result<StoreBenchReport, PipelineError> {
    let store = Arc::new(
        ArtifactStore::open(dir)
            .unwrap_or_else(|e| panic!("cannot open artifact store at {}: {e}", dir.display())),
    );
    store.clear();
    let cfg = cfg.clone().with_store(Arc::clone(&store));
    let cold = run_load(&cfg)?;
    let warm = run_load(&cfg)?;
    assert_eq!(
        cold.checksums, warm.checksums,
        "store-loaded responses must be bit-identical to freshly compiled ones"
    );
    assert_eq!(
        warm.stats.cache.compiles, 0,
        "a warm store must satisfy every key without compiling"
    );
    assert_eq!(
        warm.stats.cache.disk_hits, cold.stats.cache.compiles,
        "the warm pass must hit the store once per key the cold pass compiled"
    );
    Ok(StoreBenchReport {
        dir: dir.to_path_buf(),
        entries: store.len(),
        cold,
        warm,
    })
}

/// One soak traffic template: a fully prepared request prototype plus the
/// checksum a fresh single-threaded reference run produces for it. The soak
/// clones prototypes instead of pre-building every request, so its memory
/// footprint is `templates + in-flight window`, not `total requests`.
struct SoakTemplate {
    module: ServeModule,
    target: TargetDesc,
    /// Prepared kernel metadata (name, args, output region) — kept so
    /// response verification checksums without re-generating inputs.
    prepared: crate::harness::PreparedKernel,
    mem: Vec<u8>,
    expect: u64,
}

/// A completed serving soak: SLO-grade latency distributions over a
/// sustained, verified load.
#[derive(Debug, Clone)]
pub struct SoakReport {
    /// Requests served and verified (every response's checksum matched its
    /// template's single-threaded reference).
    pub requests: usize,
    /// Distinct traffic templates (kernel × target pairs) in the mix.
    pub templates: usize,
    /// Worker threads the server ran (0 resolved to the host's cores).
    pub workers: usize,
    /// In-flight window the generator held open.
    pub window: usize,
    /// Wall-clock duration from first submission to last response, in
    /// nanoseconds.
    pub elapsed_ns: u128,
    /// Serving throughput over that window.
    pub requests_per_sec: f64,
    /// Final server counters — including the queue-wait / execute / batch
    /// histograms the SLO numbers come from.
    pub stats: ServerStats,
}

impl SoakReport {
    /// Render the report the way `splitc serve-bench --soak` prints it.
    pub fn render(&self) -> String {
        let mut out = format!(
            "soak: {} requests ({} templates) over {} workers in {:.1} ms ({:.0} req/s, window {})\n",
            self.requests,
            self.templates,
            self.workers,
            self.elapsed_ns as f64 / 1e6,
            self.requests_per_sec,
            self.window,
        );
        out.push_str("latency:\n");
        out.push_str(&fmt_latency("queue-wait", &self.stats.queue_wait));
        out.push_str(&fmt_latency("execute", &self.stats.execute));
        out.push_str(&format!(
            "batches: {} served · mean size {:.2} · max {}\n",
            self.stats.batch_sizes.count(),
            self.stats.batch_sizes.mean(),
            self.stats.batch_sizes.max(),
        ));
        out.push_str(&fmt_fault_lines(&self.stats));
        out.push_str(&fmt_cache_line(&self.stats.cache));
        out.push('\n');
        out
    }
}

/// Run a serving soak: sustained mixed-module traffic, streamed through a
/// bounded in-flight window, every response verified as it drains.
///
/// Where [`run_load`] pre-builds all `cfg.requests` requests (each owning
/// its memory image) and only then starts the clock, a soak's point is
/// volume — 10⁵+ requests would mean gigabytes of pre-built buffers. So the
/// soak prepares one [`SoakTemplate`] per (kernel × target) pair — inputs,
/// memory image and the checksum of a fresh single-threaded
/// [`run_on_target`] reference — and then streams: request `r` clones
/// template `r % templates`, at most `2 × queue_capacity` responses are
/// outstanding at once, and each is checked against its template's
/// reference checksum the moment it arrives. Backpressure comes from both
/// ends: the window caps the generator, the bounded queue caps the window.
///
/// Request inputs depend only on the template (kernel, target, seed), so
/// verification is exact bit-identity against the reference — across worker
/// counts, batching, and work stealing.
///
/// # Errors
///
/// Returns the first [`PipelineError`] from offline compilation, from the
/// reference runs, or from any served request.
///
/// # Panics
///
/// Panics if a response's checksum differs from its template's reference
/// (a bit-identity violation — a serving-layer bug, not a load problem), or
/// if a worker dies before responding.
pub fn run_soak(cfg: &LoadConfig) -> Result<SoakReport, PipelineError> {
    assert!(!cfg.kernels.is_empty(), "a soak needs at least one kernel");
    assert!(!cfg.targets.is_empty(), "a soak needs at least one target");
    // Offline step: one module per kernel, one template per kernel × target,
    // each with its reference checksum from a fresh single-threaded run.
    let mut modules = Vec::with_capacity(cfg.kernels.len());
    for kernel in &cfg.kernels {
        let mut module = module_for(std::slice::from_ref(kernel), kernel.name)
            .map_err(PipelineError::Frontend)?;
        optimize_module(&mut module, &OptOptions::full());
        modules.push(ServeModule::new(module));
    }
    let mut templates = Vec::with_capacity(cfg.kernels.len() * cfg.targets.len());
    for (ki, kernel) in cfg.kernels.iter().enumerate() {
        for target in &cfg.targets {
            let t = templates.len();
            let mut ws = Workspace::sized_for(cfg.n);
            let prepared = prepare(kernel.name, cfg.n, cfg.seed.wrapping_add(t as u64), &mut ws);
            let mem = ws.into_bytes();
            let mut reference_mem = mem.clone();
            let run = run_on_target(
                modules[ki].module(),
                target,
                &cfg.options,
                kernel.name,
                &prepared.args,
                &mut reference_mem,
            )?;
            let expect = checksum_bytes(run.result, &prepared, &reference_mem);
            templates.push(SoakTemplate {
                module: modules[ki].clone(),
                target: target.clone(),
                prepared,
                mem,
                expect,
            });
        }
    }

    let server = Server::start(ServerConfig {
        workers: cfg.workers,
        queue_capacity: cfg.queue_capacity,
        cache_capacity: cfg.cache_capacity,
        max_batch: cfg.max_batch,
        seed: cfg.seed,
        store: cfg.store.clone(),
        ..ServerConfig::default()
    });
    let window = (cfg.queue_capacity * 2).clamp(1, cfg.requests.max(1));

    // Stream: submit (blocking — the queue's backpressure throttles us),
    // keep at most `window` responses outstanding, verify as they drain.
    let verify = |t: usize, handle: ResponseHandle| -> Result<(), PipelineError> {
        let response = handle.wait().expect("serving worker died mid-soak");
        let template: &SoakTemplate = &templates[t];
        let run = response.outcome?;
        // Inputs were byte-identical to the template's, so the memory image
        // and the execution record must match the reference exactly.
        let got = checksum_bytes(run.result, &template.prepared, &response.mem);
        assert_eq!(
            got, template.expect,
            "soak response for template {t} ({} on {}) diverged from its \
             single-threaded reference",
            template.prepared.name, template.target.name,
        );
        Ok(())
    };

    let start = Instant::now();
    let mut in_flight: std::collections::VecDeque<(usize, ResponseHandle)> =
        std::collections::VecDeque::with_capacity(window);
    for r in 0..cfg.requests {
        let t = r % templates.len();
        let template = &templates[t];
        let request = Request {
            module: template.module.clone(),
            kernel: template.prepared.name.clone(),
            target: template.target.clone(),
            options: cfg.options,
            args: template.prepared.args.clone(),
            mem: template.mem.clone(),
            deadline: None,
            tag: r as u64,
        };
        let handle = server
            .submit(request)
            .unwrap_or_else(|e| panic!("the soak generator's server refused a request: {e}"));
        in_flight.push_back((t, handle));
        if in_flight.len() >= window {
            let (t, handle) = in_flight.pop_front().expect("window is non-empty");
            verify(t, handle)?;
        }
    }
    for (t, handle) in in_flight {
        verify(t, handle)?;
    }
    let elapsed_ns = start.elapsed().as_nanos();

    let workers = server.workers();
    let stats = server.shutdown();
    let secs = (elapsed_ns as f64 / 1e9).max(1e-9);
    Ok(SoakReport {
        requests: cfg.requests,
        templates: templates.len(),
        workers,
        window,
        elapsed_ns,
        requests_per_sec: cfg.requests as f64 / secs,
        stats,
    })
}

/// The CLI's stock chaos plan for a load of `templates` traffic templates:
/// one persistent poisoning that drives a breaker through its full
/// open → half-open → closed lifecycle, plus sporadic retryable faults and
/// latency spikes. Every decision derives from `seed`, so a chaos run is a
/// replay of any other run with the same seed and request count.
pub fn default_chaos_plan(templates: usize, seed: u64) -> FaultPlan {
    let t = templates.max(1) as u64;
    FaultPlan::seeded(seed)
        // Persistently poison template 0 during an early tag window: its
        // key's breaker opens after the configured threshold, reroutes to
        // the fallback while open, and — once the window has passed and the
        // cooldown elapsed — recovers through a half-open probe.
        .with_rule(FaultRule {
            site: FaultSite::Execute,
            kind: FaultKind::Panic,
            selector: FaultSelector::Slot {
                modulo: t,
                remainder: 0,
                lo: t * 4,
                hi: t * 24,
            },
            persistent: true,
        })
        // Sporadic transient failures one retry clears.
        .with_rule(FaultRule {
            site: FaultSite::Execute,
            kind: FaultKind::Transient,
            selector: FaultSelector::Probability(0.01),
            persistent: false,
        })
        // Sporadic compile-step panics, also cleared by a retry.
        .with_rule(FaultRule {
            site: FaultSite::Compile,
            kind: FaultKind::Panic,
            selector: FaultSelector::Probability(0.003),
            persistent: false,
        })
        // Latency spikes: results stay bit-identical, only deadlines and
        // queue waits feel them.
        .with_rule(FaultRule {
            site: FaultSite::Execute,
            kind: FaultKind::Latency(200_000),
            selector: FaultSelector::Probability(0.005),
            persistent: false,
        })
}

/// Per-outcome tallies a chaos soak accumulates from the responses
/// themselves (cross-checked against the server's own counters at the end).
#[derive(Debug, Clone, Copy, Default)]
struct ChaosTally {
    ok: usize,
    degraded_ok: usize,
    expired: usize,
    cancelled: usize,
    panicked: usize,
    transient: usize,
    failed_fast: usize,
}

/// A completed chaos soak ([`run_chaos`]): sustained traffic under a
/// deterministic [`FaultPlan`], every invariant asserted on the way out.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Requests submitted — and answered exactly once each.
    pub requests: usize,
    /// Distinct traffic templates (kernel × target pairs) in the mix.
    pub templates: usize,
    /// Worker threads the server ran.
    pub workers: usize,
    /// Responses that executed cleanly on their requested target and
    /// matched the single-threaded reference bit-for-bit.
    pub ok: usize,
    /// Responses served by the fallback target (open breaker) that matched
    /// the fallback reference bit-for-bit.
    pub degraded_ok: usize,
    /// Requests shed at dequeue because their deadline had passed.
    pub expired: usize,
    /// Requests cancelled cooperatively mid-execution by their deadline.
    pub cancelled: usize,
    /// Requests whose final outcome (after retries) was a panic.
    pub panicked: usize,
    /// Requests whose final outcome was an injected transient failure.
    pub transient: usize,
    /// Requests answered [`EngineError::CircuitOpen`] without executing.
    pub failed_fast: usize,
    /// Wall-clock duration from first submission to last response, in
    /// nanoseconds.
    pub elapsed_ns: u128,
    /// Serving throughput over that window.
    pub requests_per_sec: f64,
    /// Final server counters (after the graceful shutdown drain).
    pub stats: ServerStats,
}

impl ChaosReport {
    /// Render the report the way `splitc serve-bench --chaos` prints it.
    pub fn render(&self) -> String {
        let mut out = format!(
            "chaos: {} requests ({} templates) over {} workers in {:.1} ms ({:.0} req/s)\n",
            self.requests,
            self.templates,
            self.workers,
            self.elapsed_ns as f64 / 1e6,
            self.requests_per_sec,
        );
        out.push_str(&format!(
            "outcomes: ok {} · degraded-ok {} · expired {} · cancelled {} · \
             panicked {} · transient {} · failed-fast {}\n",
            self.ok,
            self.degraded_ok,
            self.expired,
            self.cancelled,
            self.panicked,
            self.transient,
            self.failed_fast,
        ));
        out.push_str(&fmt_fault_lines(&self.stats));
        out.push_str("latency:\n");
        out.push_str(&fmt_latency("queue-wait", &self.stats.queue_wait));
        out.push_str(&fmt_latency("execute", &self.stats.execute));
        out.push_str(&fmt_cache_line(&self.stats.cache));
        out.push('\n');
        out
    }
}

/// Tally one chaos response, verifying successful outcomes bit-for-bit
/// against the right reference (own target, or the fallback's when the
/// response is degraded).
///
/// # Panics
///
/// Panics on a checksum mismatch or on a *semantic* error (trap, unknown
/// kernel): the fault plan only injects panics, transients and latency, so
/// anything else escaping the retry/breaker stack is a serving bug.
fn tally_chaos_response(
    templates: &[SoakTemplate],
    fallback_expect: &[u64],
    tally: &mut ChaosTally,
    t: usize,
    handle: ResponseHandle,
) {
    let response = handle.wait().expect("serving worker died mid-chaos");
    let template = &templates[t];
    match response.outcome {
        Ok(run) => {
            let expect = if response.degraded {
                fallback_expect[t]
            } else {
                template.expect
            };
            let got = checksum_bytes(run.result, &template.prepared, &response.mem);
            assert_eq!(
                got, expect,
                "chaos response for template {t} ({} on {}, degraded: {}) diverged \
                 from its single-threaded reference",
                template.prepared.name, template.target.name, response.degraded,
            );
            if response.degraded {
                tally.degraded_ok += 1;
            } else {
                tally.ok += 1;
            }
        }
        Err(EngineError::DeadlineExceeded) => {
            // attempts == 0 ⇒ shed at dequeue (expired); otherwise the
            // deadline cancelled a run already in flight.
            if response.attempts == 0 {
                tally.expired += 1;
            } else {
                tally.cancelled += 1;
            }
        }
        Err(EngineError::CircuitOpen) => tally.failed_fast += 1,
        Err(EngineError::Panicked(_)) => tally.panicked += 1,
        Err(EngineError::Transient(_)) => tally.transient += 1,
        Err(err) => {
            panic!("chaos produced a semantic error — a serving bug, not an injected fault: {err}")
        }
    }
}

/// Run a chaos soak: [`run_soak`]'s streamed, verified load under a
/// deterministic [`FaultPlan`], with deadlines on a slice of the traffic
/// and a fallback target configured so open breakers degrade instead of
/// failing fast.
///
/// Every response is tallied by outcome; on the way out the books are
/// asserted *exactly*:
///
/// * every request was answered exactly once (the tallies sum to the
///   request count);
/// * `accepted == completed + expired`;
/// * the response-derived tallies equal the server's own `expired`,
///   `cancelled` and `failed_fast` counters;
/// * `batch_sizes.sum() == completed` and
///   `retry_attempts.count() == completed`;
/// * every successful response — including degraded ones — is bit-identical
///   to a single-threaded reference run.
///
/// # Errors
///
/// Returns the first [`PipelineError`] from offline compilation or the
/// reference runs.
///
/// # Panics
///
/// Panics if any of the invariants above fails — a chaos soak treats an
/// accounting tear the same way a differential test treats a wrong answer.
pub fn run_chaos(cfg: &LoadConfig, plan: &FaultPlan) -> Result<ChaosReport, PipelineError> {
    assert!(!cfg.kernels.is_empty(), "a chaos soak needs a kernel");
    assert!(!cfg.targets.is_empty(), "a chaos soak needs a target");
    let mut modules = Vec::with_capacity(cfg.kernels.len());
    for kernel in &cfg.kernels {
        let mut module = module_for(std::slice::from_ref(kernel), kernel.name)
            .map_err(PipelineError::Frontend)?;
        optimize_module(&mut module, &OptOptions::full());
        modules.push(ServeModule::new(module));
    }
    // The fallback core for graceful degradation: the first target of the
    // mix. Results are portable across targets (that is the paper's whole
    // premise), so a degraded response must still match a reference run —
    // on the fallback target.
    let fallback = cfg.targets[0].clone();
    let mut templates = Vec::with_capacity(cfg.kernels.len() * cfg.targets.len());
    let mut fallback_expect = Vec::with_capacity(cfg.kernels.len() * cfg.targets.len());
    for (ki, kernel) in cfg.kernels.iter().enumerate() {
        for target in &cfg.targets {
            let t = templates.len();
            let mut ws = Workspace::sized_for(cfg.n);
            let prepared = prepare(kernel.name, cfg.n, cfg.seed.wrapping_add(t as u64), &mut ws);
            let mem = ws.into_bytes();
            let mut reference_mem = mem.clone();
            let run = run_on_target(
                modules[ki].module(),
                target,
                &cfg.options,
                kernel.name,
                &prepared.args,
                &mut reference_mem,
            )?;
            let expect = checksum_bytes(run.result, &prepared, &reference_mem);
            let mut fallback_mem = mem.clone();
            let fb = run_on_target(
                modules[ki].module(),
                &fallback,
                &cfg.options,
                kernel.name,
                &prepared.args,
                &mut fallback_mem,
            )?;
            fallback_expect.push(checksum_bytes(fb.result, &prepared, &fallback_mem));
            templates.push(SoakTemplate {
                module: modules[ki].clone(),
                target: target.clone(),
                prepared,
                mem,
                expect,
            });
        }
    }

    let server = Server::start(
        ServerConfig {
            workers: cfg.workers,
            queue_capacity: cfg.queue_capacity,
            cache_capacity: cfg.cache_capacity,
            max_batch: cfg.max_batch,
            seed: cfg.seed,
            store: cfg.store.clone(),
            ..ServerConfig::default()
        }
        .with_faults(plan.clone())
        .with_fallback(fallback),
    );
    let window = (cfg.queue_capacity * 2).clamp(1, cfg.requests.max(1));

    let start = Instant::now();
    let mut tally = ChaosTally::default();
    let mut in_flight: std::collections::VecDeque<(usize, ResponseHandle)> =
        std::collections::VecDeque::with_capacity(window);
    for r in 0..cfg.requests {
        let t = r % templates.len();
        let template = &templates[t];
        // A slice of the traffic carries tight deadlines, so the soak
        // exercises queue sheds and (under latency faults) mid-flight
        // cancellation. Which requests expire depends on real scheduling;
        // the books below hold for any mix.
        let deadline = (r % 31 == 17).then(|| Instant::now() + Duration::from_millis(3));
        let request = Request {
            module: template.module.clone(),
            kernel: template.prepared.name.clone(),
            target: template.target.clone(),
            options: cfg.options,
            args: template.prepared.args.clone(),
            mem: template.mem.clone(),
            deadline,
            tag: r as u64,
        };
        let handle = server
            .submit(request)
            .unwrap_or_else(|e| panic!("the chaos generator's server refused a request: {e}"));
        in_flight.push_back((t, handle));
        if in_flight.len() >= window {
            let (t, handle) = in_flight.pop_front().expect("window is non-empty");
            tally_chaos_response(&templates, &fallback_expect, &mut tally, t, handle);
        }
    }
    for (t, handle) in in_flight {
        tally_chaos_response(&templates, &fallback_expect, &mut tally, t, handle);
    }
    let elapsed_ns = start.elapsed().as_nanos();

    let workers = server.workers();
    let stats = server.shutdown();

    // Exactly-once: the per-outcome tallies partition the request count.
    let answered = tally.ok
        + tally.degraded_ok
        + tally.expired
        + tally.cancelled
        + tally.panicked
        + tally.transient
        + tally.failed_fast;
    assert_eq!(
        answered, cfg.requests,
        "every request answered exactly once"
    );
    // Exact books, cross-checked response-side vs. server-side.
    assert_eq!(stats.accepted, cfg.requests as u64);
    assert_eq!(stats.completed + stats.expired, stats.accepted);
    assert_eq!(stats.expired, tally.expired as u64);
    assert_eq!(stats.cancelled, tally.cancelled as u64);
    assert_eq!(stats.failed_fast, tally.failed_fast as u64);
    assert!(
        stats.degraded >= tally.degraded_ok as u64,
        "degraded responses can fail too, but never exceed the degraded count"
    );
    assert_eq!(stats.batch_sizes.sum(), stats.completed);
    assert_eq!(stats.retry_attempts.count(), stats.completed);

    let secs = (elapsed_ns as f64 / 1e9).max(1e-9);
    Ok(ChaosReport {
        requests: cfg.requests,
        templates: templates.len(),
        workers,
        ok: tally.ok,
        degraded_ok: tally.degraded_ok,
        expired: tally.expired,
        cancelled: tally.cancelled,
        panicked: tally.panicked,
        transient: tally.transient,
        failed_fast: tally.failed_fast,
        elapsed_ns,
        requests_per_sec: cfg.requests as f64 / secs,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_load() -> LoadConfig {
        let mut cfg = LoadConfig::catalogue(32, 24);
        cfg.kernels.truncate(3);
        cfg.targets.truncate(3);
        cfg
    }

    #[test]
    fn loads_are_bit_identical_across_worker_counts() {
        let sequential = run_load(&small_load()).unwrap();
        let parallel = run_load(&small_load().with_workers(4)).unwrap();
        assert_eq!(sequential.checksums, parallel.checksums);
        assert_eq!(sequential.requests, 24);
        assert_eq!(parallel.workers, 4);
        // Mixed-module traffic: one shared engine per kernel module, one
        // compile per (module, target, options) triple, zero losses.
        for report in [&sequential, &parallel] {
            assert_eq!(report.stats.engines, 3);
            assert_eq!(report.stats.cache.compiles, 9);
            assert_eq!(report.stats.accepted, 24);
            assert_eq!(report.stats.completed, 24);
            assert_eq!(report.stats.in_flight(), 0);
        }
    }

    #[test]
    fn bounded_cache_loads_evict_but_stay_correct() {
        let unbounded = run_load(&small_load()).unwrap();
        let churned = run_load(&small_load().with_workers(2).with_cache_capacity(1)).unwrap();
        assert_eq!(unbounded.checksums, churned.checksums);
        assert!(
            churned.stats.cache.evictions > 0,
            "a 1-entry cache over 3 targets must evict"
        );
    }

    #[test]
    fn report_rendering_mentions_the_serving_counters() {
        let report = run_load(&small_load()).unwrap();
        let text = report.render();
        assert!(text.contains("req/s"));
        assert!(text.contains("high water"));
        assert!(text.contains("online compilations"));
        assert!(text.contains("shared deployments"));
        assert!(text.contains("queue-wait"), "latency lines are rendered");
        assert!(text.contains("p999"), "tail quantiles are rendered");
        assert!(text.contains("batches:"), "batch distribution is rendered");
    }

    #[test]
    fn soaks_stream_verify_and_report_slo_latency() {
        let mut cfg = small_load();
        cfg.requests = 120;
        cfg.workers = 2;
        cfg.queue_capacity = 8;
        let report = run_soak(&cfg).unwrap();
        assert_eq!(report.requests, 120);
        assert_eq!(report.templates, 9, "one template per kernel × target");
        assert_eq!(report.window, 16, "twice the queue bound");
        assert_eq!(report.stats.completed, 120, "lossless under streaming");
        assert_eq!(report.stats.queue_wait.count(), 120);
        assert_eq!(report.stats.execute.count(), 120);
        assert_eq!(
            report.stats.batch_sizes.sum(),
            120,
            "batch sizes account for every request"
        );
        assert!(report.requests_per_sec > 0.0);
        let text = report.render();
        assert!(text.contains("soak:"));
        assert!(text.contains("p999"));
    }

    #[test]
    fn chaos_soaks_keep_exact_books_and_recover_the_breaker() {
        let mut cfg = small_load().with_seed(0xc4a05);
        cfg.requests = 2_000;
        cfg.workers = 2;
        cfg.queue_capacity = 16;
        let plan = default_chaos_plan(cfg.kernels.len() * cfg.targets.len(), cfg.seed);
        // `run_chaos` itself asserts exactly-once answering and the exact
        // books; the checks here pin the lifecycle the stock plan promises.
        let report = run_chaos(&cfg, &plan).unwrap();
        assert!(report.stats.faults_injected > 0, "the plan actually fired");
        assert!(report.stats.retried > 0, "transient faults were retried");
        assert!(
            report.stats.breaker_opened >= 1,
            "the persistent poisoning opened its key's breaker"
        );
        assert!(
            report.stats.breaker_closed >= 1,
            "a half-open probe closed the breaker after the poison window"
        );
        assert!(
            report.degraded_ok > 0,
            "open-breaker traffic was served by the fallback target"
        );
        assert!(
            report.ok > report.requests / 2,
            "most traffic still serves clean under chaos (got {} of {})",
            report.ok,
            report.requests
        );
        let text = report.render();
        assert!(text.contains("chaos:"));
        assert!(text.contains("breaker: opened"));
    }

    #[test]
    fn empty_latency_lines_render_the_sentinel_not_zero() {
        assert_eq!(fmt_us(EMPTY_QUANTILE), "n/a");
        let line = fmt_latency("queue-wait", &Histogram::new());
        assert!(
            line.contains("p50 n/a") && line.contains("p999 n/a"),
            "empty distributions must not render as excellent 0.0µs: {line}"
        );
    }
}
