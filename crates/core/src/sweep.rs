//! Parallel `K kernels × T targets × R repeats` sweeps over one deployment.
//!
//! This is the batching layer between the experiment drivers / CLI and the
//! runtime's generic worker pool ([`splitc_runtime::sweep`]): it knows how to
//! prepare catalogue-kernel inputs in a [`Workspace`], fans the full matrix
//! out across worker threads that share one [`ExecutionEngine`], and returns
//! the per-cell measurements in deterministic (kernel-major) order.
//!
//! Two amortizations happen here, per the paper's "compile once, run many
//! times" economics:
//!
//! * **online compilation** — all workers share the engine's sharded code
//!   cache, so a cold `(target, options)` pair is compiled exactly once no
//!   matter how many cells race on it;
//! * **workspace setup** — each worker allocates one scratch [`Workspace`]
//!   and resets it per cell instead of reallocating, so repeated runs of the
//!   same kernel pay for input generation only;
//! * **execution setup** — the engine caches the deploy-time-prepared
//!   program (`PreparedProgram`) per (target, options) pair, and each worker
//!   holds one [`FramePool`](splitc_runtime::FramePool), so every repeat of
//!   every cell runs pre-decoded code with recycled call frames
//!   ([`ExecutionEngine::run_pooled`]).
//!
//! Determinism: a cell's inputs depend only on `(kernel, n, seed, repeat)`,
//! never on which worker ran it or when, so a `--jobs 8` sweep is
//! bit-identical to a `--jobs 1` sweep — the property the concurrency test
//! suite pins down.

use crate::harness::{checksum, prepare};
use crate::report::{fmt_amortized_jit, fmt_cache_line, TextTable};
use crate::session::{PipelineError, Workspace};
use splitc_jit::JitOptions;
use splitc_opt::{optimize_module, OptOptions};
use splitc_runtime::{CacheStats, ExecutionEngine, FramePool};
use splitc_targets::TargetDesc;
use splitc_workloads::{module_for, Kernel};

/// Shape of one sweep: problem size, repetition count, worker pool size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepConfig {
    /// Elements processed per kernel invocation.
    pub n: usize,
    /// How many times each (kernel, target) cell is executed.
    pub repeats: usize,
    /// Worker threads (1 = sequential on the calling thread, 0 = all cores).
    pub jobs: usize,
    /// Base seed for input data; each repeat derives its own seed from it.
    pub seed: u64,
    /// Online-compilation configuration shared by every cell.
    pub options: JitOptions,
}

impl SweepConfig {
    /// A sequential single-repeat sweep of `n` elements with split JIT options.
    pub fn new(n: usize) -> Self {
        SweepConfig {
            n,
            repeats: 1,
            jobs: 1,
            seed: 0xdac,
            options: JitOptions::split(),
        }
    }

    /// Same sweep, fanned over `jobs` workers.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Same sweep, repeating every cell `repeats` times.
    pub fn with_repeats(mut self, repeats: usize) -> Self {
        self.repeats = repeats.max(1);
        self
    }

    /// The effective worker count (resolving 0 to the host's parallelism).
    pub fn effective_jobs(&self) -> usize {
        resolve_jobs(self.jobs)
    }
}

/// Resolve a requested worker count: 0 means one worker per host core.
///
/// The single place the `--jobs 0` convention lives; the experiment drivers
/// and [`SweepConfig::effective_jobs`] all route through it.
pub fn resolve_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        splitc_runtime::default_jobs()
    } else {
        jobs
    }
}

/// One measured cell of the sweep matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCell {
    /// Kernel name.
    pub kernel: String,
    /// Target name.
    pub target: String,
    /// Repeat index (0-based).
    pub repeat: usize,
    /// Simulated cycles of the run.
    pub cycles: u64,
    /// Cycles scaled by the target's clock factor.
    pub scaled_cycles: f64,
    /// Checksum of the kernel's result and output region — the bit-identity
    /// handle the differential and concurrency suites compare.
    pub checksum: u64,
}

/// A completed sweep: every cell in kernel-major deterministic order, plus
/// the engine-level amortization counters.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult {
    /// Elements processed per kernel invocation.
    pub n: usize,
    /// Worker threads the sweep actually used (the requested count, 0
    /// resolved to the host's cores, clamped to the number of cells).
    pub jobs: usize,
    /// All cells, ordered by (kernel, target, repeat).
    pub cells: Vec<SweepCell>,
    /// Code-cache counters of the shared engine after the sweep.
    pub cache: CacheStats,
    /// Total online-compilation work units spent by the engine.
    pub online_work: u64,
}

impl SweepResult {
    /// The checksums of every cell, in cell order (for bit-identity checks).
    pub fn checksums(&self) -> Vec<u64> {
        self.cells.iter().map(|c| c.checksum).collect()
    }

    /// Total simulated cycles across all cells.
    pub fn total_cycles(&self) -> u64 {
        self.cells.iter().map(|c| c.cycles).sum()
    }

    /// Render a compact per-(kernel, target) table plus the cache summary.
    ///
    /// Only the first repeat of each (kernel, target) pair is tabulated;
    /// later repeats run on *differently seeded* inputs (each repeat derives
    /// its own seed from [`SweepConfig::seed`]), so their cycles and
    /// checksums legitimately differ. They still count in the cell total and
    /// the cache line.
    pub fn render(&self) -> String {
        let mut table = TextTable::new(&["kernel", "target", "cycles", "checksum"]);
        for cell in self.cells.iter().filter(|c| c.repeat == 0) {
            table.row(vec![
                cell.kernel.clone(),
                cell.target.clone(),
                cell.cycles.to_string(),
                format!("{:016x}", cell.checksum),
            ]);
        }
        let mut out = format!(
            "Sweep (n = {}, {} cells, {} workers)\n{}{}\n",
            self.n,
            self.cells.len(),
            self.jobs,
            table.render(),
            fmt_cache_line(&self.cache),
        );
        if self.jobs > 1 {
            out.push_str(&fmt_amortized_jit(self.online_work, self.jobs));
            out.push('\n');
        }
        out
    }
}

/// Sweep `kernels × targets × repeats` over an already-deployed engine.
///
/// The engine's module must contain every kernel in `kernels` (e.g. built
/// with [`module_for`]). Cells are returned in deterministic
/// (kernel, target, repeat) order whatever `cfg.jobs` is.
///
/// # Errors
///
/// Returns the first [`PipelineError`] any cell produced (compilation
/// failures are deduplicated by the engine: every cell racing on a broken
/// (target, options) pair reports the same error).
pub fn sweep_engine(
    engine: &ExecutionEngine,
    kernels: &[Kernel],
    targets: &[TargetDesc],
    cfg: &SweepConfig,
) -> Result<SweepResult, PipelineError> {
    let mut matrix = Vec::with_capacity(kernels.len() * targets.len() * cfg.repeats.max(1));
    for (ki, _) in kernels.iter().enumerate() {
        for (ti, _) in targets.iter().enumerate() {
            for repeat in 0..cfg.repeats.max(1) {
                matrix.push((ki, ti, repeat));
            }
        }
    }
    // Record the worker count the pool will actually run with, so the
    // amortized-per-worker figures divide by the real pool width.
    let jobs = splitc_runtime::pool_width(cfg.effective_jobs(), matrix.len());
    let outcomes: Vec<Result<SweepCell, PipelineError>> = splitc_runtime::sweep(
        &matrix,
        jobs,
        // Per-worker amortized state: one scratch workspace (reset per cell)
        // and one frame pool, so every run a worker executes reuses both the
        // engine's deploy-time-prepared program and the worker's frames.
        |_worker| (Workspace::sized_for(cfg.n), FramePool::new()),
        |(ws, pool), &(ki, ti, repeat), _| {
            let kernel = &kernels[ki];
            let target = &targets[ti];
            ws.reset();
            let prepared = prepare(kernel.name, cfg.n, cfg.seed.wrapping_add(repeat as u64), ws);
            let run = engine.run_pooled(
                target,
                &cfg.options,
                kernel.name,
                &prepared.args,
                ws.bytes_mut(),
                pool,
            )?;
            let sum = checksum(run.result, &prepared, ws);
            Ok(SweepCell {
                kernel: kernel.name.to_owned(),
                target: target.name.clone(),
                repeat,
                cycles: run.stats.cycles,
                scaled_cycles: run.scaled_cycles,
                checksum: sum,
            })
        },
    );
    let mut cells = Vec::with_capacity(outcomes.len());
    for outcome in outcomes {
        cells.push(outcome?);
    }
    Ok(SweepResult {
        n: cfg.n,
        jobs,
        cells,
        cache: engine.stats(),
        online_work: engine.online_work(),
    })
}

/// Compile `kernels` into one module (full offline optimization), deploy it,
/// and sweep it over `targets` — the one-call entry the CLI and the
/// throughput bench use.
///
/// # Errors
///
/// Returns a [`PipelineError`] if the module fails to compile or any cell
/// fails to execute.
pub fn sweep_kernels(
    kernels: &[Kernel],
    targets: &[TargetDesc],
    cfg: &SweepConfig,
) -> Result<SweepResult, PipelineError> {
    let mut module = module_for(kernels, "sweep").map_err(PipelineError::Frontend)?;
    optimize_module(&mut module, &OptOptions::full());
    let engine = ExecutionEngine::new(module);
    sweep_engine(&engine, kernels, targets, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitc_workloads::table1_kernels;

    #[test]
    fn parallel_sweeps_are_bit_identical_to_sequential_ones() {
        let kernels = table1_kernels();
        let targets = TargetDesc::table1_targets();
        let sequential =
            sweep_kernels(&kernels, &targets, &SweepConfig::new(96).with_repeats(2)).unwrap();
        let parallel = sweep_kernels(
            &kernels,
            &targets,
            &SweepConfig::new(96).with_repeats(2).with_jobs(4),
        )
        .unwrap();
        assert_eq!(sequential.checksums(), parallel.checksums());
        assert_eq!(sequential.cells, parallel.cells);
        // Both sweeps compiled each (target, options) pair exactly once.
        assert_eq!(sequential.cache.compiles, targets.len() as u64);
        assert_eq!(parallel.cache.compiles, targets.len() as u64);
        assert_eq!(parallel.cache.lookups(), sequential.cache.lookups());
    }

    #[test]
    fn cells_come_back_kernel_major() {
        let kernels = table1_kernels();
        let targets = TargetDesc::table1_targets();
        let result = sweep_kernels(&kernels, &targets, &SweepConfig::new(64).with_jobs(3)).unwrap();
        assert_eq!(result.cells.len(), kernels.len() * targets.len());
        let mut expected = Vec::new();
        for k in &kernels {
            for t in &targets {
                expected.push((k.name.to_owned(), t.name.clone()));
            }
        }
        let got: Vec<(String, String)> = result
            .cells
            .iter()
            .map(|c| (c.kernel.clone(), c.target.clone()))
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn render_includes_the_cache_line() {
        let kernels = &table1_kernels()[..1];
        let targets = [TargetDesc::x86_sse()];
        let result = sweep_kernels(kernels, &targets, &SweepConfig::new(32)).unwrap();
        let text = result.render();
        assert!(text.contains("online compilations"));
        assert!(!text.contains("amortized online cost"), "jobs = 1");
        let parallel =
            sweep_kernels(kernels, &targets, &SweepConfig::new(32).with_jobs(2)).unwrap();
        // One kernel on one target: only one cell, so the pool clamps to one
        // worker and the recorded width (and the render) reflect that.
        assert_eq!(parallel.jobs, 1);
        assert!(!parallel.render().contains("amortized online cost"));
    }

    #[test]
    fn sweep_cells_apply_the_per_target_clock_factor() {
        let kernels = &table1_kernels()[..2];
        let targets = TargetDesc::presets();
        let result = sweep_kernels(kernels, &targets, &SweepConfig::new(48)).unwrap();
        for cell in &result.cells {
            let target = targets.iter().find(|t| t.name == cell.target).unwrap();
            let expect = target.scaled_time(cell.cycles);
            assert!(
                (cell.scaled_cycles - expect).abs() < 1e-9,
                "{}/{}: scaled_cycles {} != scaled_time({}) = {}",
                cell.kernel,
                cell.target,
                cell.scaled_cycles,
                cell.cycles,
                expect
            );
        }
    }

    #[test]
    fn timing_tiers_agree_on_checksums_and_differ_only_in_timing_stats() {
        use splitc_targets::TimingKind;
        let kernels = &table1_kernels()[..2];
        let flat = TargetDesc::table1_targets();
        let pipe: Vec<TargetDesc> = flat
            .iter()
            .map(|t| t.clone().with_timing(TimingKind::InOrder))
            .collect();
        let a = sweep_kernels(kernels, &flat, &SweepConfig::new(64)).unwrap();
        let b = sweep_kernels(kernels, &pipe, &SweepConfig::new(64)).unwrap();
        // Architectural results are bit-identical across timing tiers. The
        // cycle totals legitimately differ in either direction: the pipeline
        // retires one op per cycle plus stalls, while flat sums per-op costs.
        assert_eq!(a.checksums(), b.checksums());
        assert!(
            a.cells
                .iter()
                .zip(&b.cells)
                .any(|(ca, cb)| ca.cycles != cb.cycles),
            "the two tiers should not price every cell identically"
        );
    }

    #[test]
    fn recorded_jobs_is_the_actual_pool_width() {
        let kernels = table1_kernels();
        let targets = TargetDesc::table1_targets();
        // 18 cells, 4 workers requested -> 4 used.
        let wide = sweep_kernels(&kernels, &targets, &SweepConfig::new(32).with_jobs(4)).unwrap();
        assert_eq!(wide.jobs, 4);
        // 18 cells, 100 workers requested -> clamped to the cell count, so
        // the amortized-per-worker figure divides by a real pool width.
        let over = sweep_kernels(&kernels, &targets, &SweepConfig::new(32).with_jobs(100)).unwrap();
        assert_eq!(over.jobs, kernels.len() * targets.len());
    }
}
