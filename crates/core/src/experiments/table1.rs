//! Experiment E1 — the paper's Table 1: split automatic vectorization.
//!
//! Six kernels are compiled once to portable bytecode, in two variants:
//! *scalar* (no offline vectorization) and *vectorized* (offline vectorization
//! to portable builtins). Each variant is then JIT-compiled and executed on
//! the three Table 1 machines. The x86 JIT recognizes the builtins and emits
//! SSE-style SIMD; the UltraSparc and PowerPC JITs have no usable SIMD unit
//! and scalarize. The reported quantity per kernel and machine is the
//! scalar/vectorized run-time ratio — the paper's "relative" column.

use crate::harness::{checksum, prepare};
use crate::report::{fmt_amortized_jit, fmt_cache_line, fmt_speedup, TextTable};
use crate::session::{PipelineError, Workspace};
use splitc_jit::JitOptions;
use splitc_opt::{optimize_module, OptOptions};
use splitc_runtime::{CacheStats, ExecutionEngine};
use splitc_targets::TargetDesc;
use splitc_workloads::{module_for, table1_kernels, Kernel};

/// Measurements of one kernel on one target.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Cell {
    /// Target name.
    pub target: String,
    /// Simulated cycles of the scalar-bytecode variant.
    pub scalar_cycles: u64,
    /// Simulated cycles of the vectorized-bytecode variant.
    pub vector_cycles: u64,
}

impl Table1Cell {
    /// Scalar-over-vector run-time ratio (the paper's "relative" column;
    /// greater than 1 means the vectorized bytecode is faster).
    pub fn speedup(&self) -> f64 {
        self.scalar_cycles as f64 / self.vector_cycles as f64
    }
}

/// One row of the table: a kernel across all targets.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Kernel name.
    pub kernel: String,
    /// One cell per target, in [`Table1::targets`] order.
    pub cells: Vec<Table1Cell>,
}

/// The reproduced Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1 {
    /// Elements processed per kernel invocation.
    pub n: usize,
    /// Target names, in column order.
    pub targets: Vec<String>,
    /// One row per kernel, in the paper's order.
    pub rows: Vec<Table1Row>,
    /// Engine code-cache counters summed over both module variants: the
    /// amortized cost of the online step across the whole sweep.
    pub cache: CacheStats,
    /// Total online-compilation work units across both variants.
    pub online_work: u64,
    /// Worker threads the measurement sweep used.
    pub jobs: usize,
}

impl Table1 {
    /// The cell for `kernel` on `target`, if present.
    pub fn cell(&self, kernel: &str, target: &str) -> Option<&Table1Cell> {
        self.rows
            .iter()
            .find(|r| r.kernel == kernel)
            .and_then(|r| r.cells.iter().find(|c| c.target == target))
    }

    /// Render the table in the paper's layout (scalar, vect., relative per target).
    pub fn render(&self) -> String {
        let mut header: Vec<String> = vec!["benchmark".into()];
        for t in &self.targets {
            header.push(format!("{t} scalar"));
            header.push(format!("{t} vect."));
            header.push(format!("{t} relative"));
        }
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut table = TextTable::new(&header_refs);
        for row in &self.rows {
            let mut cells = vec![row.kernel.clone()];
            for c in &row.cells {
                cells.push(c.scalar_cycles.to_string());
                cells.push(c.vector_cycles.to_string());
                cells.push(fmt_speedup(c.speedup()));
            }
            table.row(cells);
        }
        let mut out = format!(
            "Table 1 reproduction — split automatic vectorization (n = {} elements, simulated cycles)\n{}{}\n",
            self.n,
            table.render(),
            fmt_cache_line(&self.cache),
        );
        if self.jobs > 1 {
            out.push_str(&fmt_amortized_jit(self.online_work, self.jobs));
            out.push('\n');
        }
        out
    }
}

/// Run the Table 1 experiment with `n` elements per kernel.
///
/// # Errors
///
/// Returns a [`PipelineError`] if any kernel fails to compile or execute.
pub fn run(n: usize) -> Result<Table1, PipelineError> {
    run_on(n, &TargetDesc::table1_targets())
}

/// Run the Table 1 experiment on a caller-chosen set of targets.
///
/// # Errors
///
/// Returns a [`PipelineError`] if any kernel fails to compile or execute.
pub fn run_on(n: usize, targets: &[TargetDesc]) -> Result<Table1, PipelineError> {
    run_with(n, targets, 1)
}

/// One kernel deployed in both offline variants (the offline step of the
/// experiment; built once, shared read-only by every measurement worker).
struct DeployedKernel {
    kernel: Kernel,
    scalar: ExecutionEngine,
    vector: ExecutionEngine,
}

/// Run the Table 1 experiment with the measurement matrix fanned across
/// `jobs` worker threads (0 = one per host core).
///
/// The offline step (module compilation and deployment) stays sequential;
/// the kernel × target measurement matrix runs on the worker pool, every
/// worker reusing one scratch workspace. Results are bit-identical to the
/// sequential sweep whatever `jobs` is.
///
/// # Errors
///
/// Returns a [`PipelineError`] if any kernel fails to compile or execute.
pub fn run_with(n: usize, targets: &[TargetDesc], jobs: usize) -> Result<Table1, PipelineError> {
    let jobs = crate::sweep::resolve_jobs(jobs);
    let scalar_opts = OptOptions {
        vectorize: false,
        ..OptOptions::full()
    };
    let vector_opts = OptOptions::full();
    let jit = JitOptions::split();

    let mut deployed = Vec::new();
    for kernel in table1_kernels() {
        let base = module_for(std::slice::from_ref(&kernel), kernel.name)
            .map_err(PipelineError::Frontend)?;
        let mut scalar_module = base.clone();
        optimize_module(&mut scalar_module, &scalar_opts);
        let mut vector_module = base;
        optimize_module(&mut vector_module, &vector_opts);

        // Deploy each variant once; all compilation happens here, outside the
        // measured sweep (the engine cache turns every measured run into a hit).
        let scalar = ExecutionEngine::new(scalar_module);
        let vector = ExecutionEngine::new(vector_module);
        scalar.precompile(targets, &jit)?;
        vector.precompile(targets, &jit)?;
        deployed.push(DeployedKernel {
            kernel,
            scalar,
            vector,
        });
    }

    // The measurement matrix: every (kernel, target) cell runs both variants.
    let mut matrix = Vec::with_capacity(deployed.len() * targets.len());
    for ki in 0..deployed.len() {
        for ti in 0..targets.len() {
            matrix.push((ki, ti));
        }
    }
    // Report the pool width the sweep actually runs with.
    let jobs = splitc_runtime::pool_width(jobs, matrix.len());
    let outcomes: Vec<Result<Table1Cell, PipelineError>> = splitc_runtime::sweep(
        &matrix,
        jobs,
        |_worker| Workspace::sized_for(n),
        |ws, &(ki, ti), _| {
            let dk = &deployed[ki];
            let target = &targets[ti];
            let run_variant = |engine: &ExecutionEngine,
                               ws: &mut Workspace|
             -> Result<(u64, u64), PipelineError> {
                ws.reset();
                let prepared = prepare(dk.kernel.name, n, 0xdac0 + n as u64, ws);
                let m = engine.run(target, &jit, dk.kernel.name, &prepared.args, ws.bytes_mut())?;
                Ok((m.stats.cycles, checksum(m.result, &prepared, ws)))
            };
            let (scalar_cycles, scalar_sum) = run_variant(&dk.scalar, ws)?;
            let (vector_cycles, vector_sum) = run_variant(&dk.vector, ws)?;
            debug_assert_eq!(
                scalar_sum, vector_sum,
                "{} on {}: vectorization changed the result",
                dk.kernel.name, target.name
            );
            Ok(Table1Cell {
                target: target.name.clone(),
                scalar_cycles,
                vector_cycles,
            })
        },
    );

    let mut rows: Vec<Table1Row> = deployed
        .iter()
        .map(|dk| Table1Row {
            kernel: dk.kernel.name.to_owned(),
            cells: Vec::with_capacity(targets.len()),
        })
        .collect();
    for ((ki, _), outcome) in matrix.into_iter().zip(outcomes) {
        rows[ki].cells.push(outcome?);
    }

    let mut cache = CacheStats::default();
    let mut online_work = 0;
    for dk in &deployed {
        cache += dk.scalar.stats();
        cache += dk.vector.stats();
        online_work += dk.scalar.online_work() + dk.vector.online_work();
    }
    Ok(Table1 {
        n,
        targets: targets.iter().map(|t| t.name.clone()).collect(),
        rows,
        cache,
        online_work,
        jobs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_six_rows_and_three_targets() {
        let t = run(256).expect("experiment runs");
        assert_eq!(t.rows.len(), 6);
        assert_eq!(t.targets, vec!["x86-sse", "ultrasparc", "powerpc"]);
        assert!(t.render().contains("saxpy_f32"));
        assert!(t.cell("max_u8", "x86-sse").is_some());
        assert!(t.cell("max_u8", "vax").is_none());
        // 6 kernels x 2 variants, each compiled once per target — and every
        // measured run was served from the engine cache.
        assert_eq!(t.cache.compiles as usize, 6 * 2 * t.targets.len());
        assert_eq!(t.cache.hits, t.cache.compiles);
        assert!(t.render().contains("online compilations"));
    }

    #[test]
    fn parallel_measurement_is_bit_identical_to_sequential() {
        let targets = TargetDesc::table1_targets();
        let sequential = run_with(128, &targets, 1).expect("sequential sweep runs");
        let parallel = run_with(128, &targets, 4).expect("parallel sweep runs");
        assert_eq!(sequential.rows, parallel.rows);
        assert_eq!(sequential.cache.compiles, parallel.cache.compiles);
        assert_eq!(sequential.cache.lookups(), parallel.cache.lookups());
        assert_eq!(parallel.jobs, 4);
        assert!(parallel.render().contains("amortized online cost"));
        assert!(!sequential.render().contains("amortized online cost"));
    }

    #[test]
    fn the_full_catalogue_sweeps_cleanly_and_the_gpu_loves_vectors() {
        // The driver must accept any preset list, not just the paper's three
        // machines: the whole catalogue (RISC-V and GPU families included)
        // sweeps without errors and yields one cell per kernel × target.
        let targets = TargetDesc::presets();
        let t = run_on(256, &targets).expect("experiment runs over the catalogue");
        assert_eq!(t.targets.len(), targets.len());
        for row in &t.rows {
            assert_eq!(row.cells.len(), targets.len(), "{}", row.kernel);
        }
        // 16 f32 lanes and near-free vector ops: offline vectorization pays
        // off more on the GPU than on 4-lane SSE...
        let gpu = t.cell("saxpy_f32", "gpu-wide").unwrap().speedup();
        let x86 = t.cell("saxpy_f32", "x86-sse").unwrap().speedup();
        assert!(
            gpu > x86,
            "the 16-lane GPU ({gpu:.2}x) should outpace 4-lane SSE ({x86:.2}x)"
        );
        // ...while the scalar RISC-V core scalarizes and stays in the same
        // modest band as the other scalar machines.
        let riscv = t.cell("saxpy_f32", "riscv-rv64").unwrap().speedup();
        assert!(
            (0.4..3.3).contains(&riscv),
            "scalarized speedup {riscv:.2} out of plausible range"
        );
    }

    #[test]
    fn x86_speedups_follow_the_paper_shape() {
        let t = run(512).expect("experiment runs");
        // Floating-point kernels: clear but moderate speedups on x86.
        for k in ["vecadd_f32", "saxpy_f32", "dscal_f32"] {
            let s = t.cell(k, "x86-sse").unwrap().speedup();
            assert!(s > 1.3, "{k} on x86 should benefit from SSE, got {s:.2}");
        }
        // Byte kernels: much larger speedups (16 lanes per vector).
        let m = t.cell("max_u8", "x86-sse").unwrap().speedup();
        let fp = t.cell("saxpy_f32", "x86-sse").unwrap().speedup();
        assert!(
            m > 2.0 * fp,
            "max u8 ({m:.1}) should outpace saxpy ({fp:.1}) on x86"
        );
        // Scalar-only targets stay within a modest factor of the scalar code
        // (the simulated baseline overstates loop overhead somewhat, so the
        // upper bound is looser than the paper's 1.5x).
        for target in ["ultrasparc", "powerpc"] {
            for row in &t.rows {
                let s = t.cell(&row.kernel, target).unwrap().speedup();
                assert!(
                    (0.4..3.3).contains(&s),
                    "{} on {target}: scalarized speedup {s:.2} out of plausible range",
                    row.kernel
                );
            }
        }
    }
}
