//! Experiment E2 — the split compilation flow of Figure 1.
//!
//! Figure 1 of the paper is a flow diagram, not a measurement, but its message
//! is quantitative: split compilation moves optimization complexity *offline*
//! (into the µProc-independent compiler) so that the *online* step stays cheap
//! while still producing aggressive code. This experiment measures exactly
//! that trade-off on the benchmark kernels by comparing four strategies:
//!
//! * **split** — full offline optimization + annotation-driven JIT (the paper's
//!   proposal);
//! * **jit-greedy** — plain bytecode, fast JIT with no analysis (what embedded
//!   JITs did at the time);
//! * **jit-thorough** — plain bytecode, and the device-side compiler re-runs
//!   the expensive analyses *online* to reach the same code quality (what an
//!   aggressive JIT would have to do without annotations);
//! * **offline-native** — the oracle: everything offline, zero online work
//!   (a conventional native compiler, which gives up portability).

use crate::harness::prepare;
use crate::report::{fmt_amortized_jit, fmt_cache_line, TextTable};
use crate::session::{PipelineError, Workspace};
use splitc_jit::JitOptions;
use splitc_opt::{optimize_module, OptOptions};
use splitc_runtime::{CacheStats, ExecutionEngine};
use splitc_targets::TargetDesc;
use splitc_workloads::{module_for, table1_kernels};

/// A compilation strategy compared by the experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Offline analyses + annotation-driven JIT.
    Split,
    /// No offline work, no online analysis.
    JitGreedy,
    /// No offline work; the full analyses are re-run online instead.
    JitAnalyze,
    /// Everything offline (native-compiler oracle; not portable).
    OfflineNative,
}

impl Strategy {
    /// All strategies, in reporting order.
    pub const ALL: [Strategy; 4] = [
        Strategy::Split,
        Strategy::JitGreedy,
        Strategy::JitAnalyze,
        Strategy::OfflineNative,
    ];

    /// Short label used in the report.
    pub fn label(self) -> &'static str {
        match self {
            Strategy::Split => "split",
            Strategy::JitGreedy => "jit-greedy",
            Strategy::JitAnalyze => "jit-thorough",
            Strategy::OfflineNative => "offline-native",
        }
    }
}

/// Measurements of one kernel under one strategy on one target.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitFlowRow {
    /// Kernel name.
    pub kernel: String,
    /// Target name.
    pub target: String,
    /// Strategy used.
    pub strategy: Strategy,
    /// Offline work units spent by the µProc-independent compiler.
    pub offline_work: u64,
    /// Online work units spent by the µProc-specific JIT.
    pub online_work: u64,
    /// Simulated execution cycles of the generated code.
    pub cycles: u64,
}

/// The complete experiment result.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitFlow {
    /// Elements processed per kernel invocation.
    pub n: usize,
    /// All measurements.
    pub rows: Vec<SplitFlowRow>,
    /// Engine code-cache counters across all strategies. The three
    /// strategies that share the fully optimized module and the split JIT
    /// configuration (split, jit-thorough, offline-native) also share one
    /// compiled program per target — the cache hits are the measurement.
    pub cache: CacheStats,
    /// Total online-compilation work units across both deployments.
    pub online_work: u64,
    /// Worker threads the measurement sweep used.
    pub jobs: usize,
}

impl SplitFlow {
    /// Rows for one strategy.
    pub fn rows_for(&self, strategy: Strategy) -> impl Iterator<Item = &SplitFlowRow> {
        self.rows.iter().filter(move |r| r.strategy == strategy)
    }

    /// Geometric-mean execution speedup of `a` over `b`.
    pub fn mean_speedup(&self, a: Strategy, b: Strategy) -> f64 {
        let mut log_sum = 0.0;
        let mut count = 0usize;
        for ra in self.rows_for(a) {
            if let Some(rb) = self
                .rows_for(b)
                .find(|r| r.kernel == ra.kernel && r.target == ra.target)
            {
                log_sum += (rb.cycles as f64 / ra.cycles as f64).ln();
                count += 1;
            }
        }
        if count == 0 {
            1.0
        } else {
            (log_sum / count as f64).exp()
        }
    }

    /// Average online work of `a` relative to `b` (smaller is cheaper).
    pub fn mean_online_work_ratio(&self, a: Strategy, b: Strategy) -> f64 {
        let mut sum = 0.0;
        let mut count = 0usize;
        for ra in self.rows_for(a) {
            if let Some(rb) = self
                .rows_for(b)
                .find(|r| r.kernel == ra.kernel && r.target == ra.target)
            {
                sum += ra.online_work as f64 / rb.online_work.max(1) as f64;
                count += 1;
            }
        }
        if count == 0 {
            1.0
        } else {
            sum / count as f64
        }
    }

    /// Render the per-kernel measurements plus a summary.
    pub fn render(&self) -> String {
        let mut table = TextTable::new(&[
            "kernel",
            "target",
            "strategy",
            "offline work",
            "online work",
            "cycles",
        ]);
        for r in &self.rows {
            table.row(vec![
                r.kernel.clone(),
                r.target.clone(),
                r.strategy.label().to_owned(),
                r.offline_work.to_string(),
                r.online_work.to_string(),
                r.cycles.to_string(),
            ]);
        }
        let mut out = format!(
            "Figure 1 reproduction — split compilation flow (n = {})\n{}\n\
             split vs jit-greedy : {:.2}x faster code, {:.2}x the online work\n\
             split vs jit-thorough: {:.2}x faster code, {:.2}x the online work\n\
             split vs offline-native oracle: {:.2}x the execution time\n{}\n",
            self.n,
            table.render(),
            self.mean_speedup(Strategy::Split, Strategy::JitGreedy),
            self.mean_online_work_ratio(Strategy::Split, Strategy::JitGreedy),
            self.mean_speedup(Strategy::Split, Strategy::JitAnalyze),
            self.mean_online_work_ratio(Strategy::Split, Strategy::JitAnalyze),
            1.0 / self.mean_speedup(Strategy::Split, Strategy::OfflineNative),
            fmt_cache_line(&self.cache),
        );
        if self.jobs > 1 {
            out.push_str(&fmt_amortized_jit(self.online_work, self.jobs));
            out.push('\n');
        }
        out
    }
}

/// Run the split-compilation-flow experiment with `n` elements per kernel on
/// the given targets (defaults to x86 and ARM when empty).
///
/// # Errors
///
/// Returns a [`PipelineError`] if compilation or execution fails.
pub fn run(n: usize, targets: &[TargetDesc]) -> Result<SplitFlow, PipelineError> {
    run_with(n, targets, 1)
}

/// One kernel deployed in both offline configurations (shared read-only by
/// every measurement worker).
struct DeployedKernel {
    kernel: splitc_workloads::Kernel,
    full_engine: ExecutionEngine,
    full_report: splitc_opt::OptReport,
    plain_engine: ExecutionEngine,
    plain_report: splitc_opt::OptReport,
}

/// Run the split-compilation-flow experiment with the kernel × strategy ×
/// target measurement matrix fanned across `jobs` worker threads
/// (0 = one per host core). Bit-identical to the sequential run.
///
/// # Errors
///
/// Returns a [`PipelineError`] if compilation or execution fails.
pub fn run_with(n: usize, targets: &[TargetDesc], jobs: usize) -> Result<SplitFlow, PipelineError> {
    let jobs = crate::sweep::resolve_jobs(jobs);
    let default_targets = [TargetDesc::x86_sse(), TargetDesc::arm_neon()];
    let targets: &[TargetDesc] = if targets.is_empty() {
        &default_targets
    } else {
        targets
    };

    let mut deployed = Vec::new();
    for kernel in table1_kernels() {
        let base = module_for(std::slice::from_ref(&kernel), kernel.name)
            .map_err(PipelineError::Frontend)?;

        // Two offline configurations cover all four strategies: the fully
        // optimized module (split / jit-thorough / offline-native) and the
        // unoptimized one (jit-greedy). Each is deployed once; the shared
        // engine means the three full-pipeline strategies reuse one compiled
        // program per target instead of JITting three times.
        let mut full_module = base.clone();
        let full_report = optimize_module(&mut full_module, &OptOptions::full());
        let full_engine = ExecutionEngine::new(full_module);
        full_engine.precompile(targets, &JitOptions::split())?;

        let mut plain_module = base;
        let plain_report = optimize_module(&mut plain_module, &OptOptions::none());
        let plain_engine = ExecutionEngine::new(plain_module);
        plain_engine.precompile(targets, &JitOptions::online_greedy())?;

        deployed.push(DeployedKernel {
            kernel,
            full_engine,
            full_report,
            plain_engine,
            plain_report,
        });
    }

    // The measurement matrix, in the historical row order: kernel-major,
    // then strategy, then target.
    let mut matrix = Vec::with_capacity(deployed.len() * Strategy::ALL.len() * targets.len());
    for ki in 0..deployed.len() {
        for strategy in Strategy::ALL {
            for ti in 0..targets.len() {
                matrix.push((ki, strategy, ti));
            }
        }
    }
    // Report the pool width the sweep actually runs with.
    let jobs = splitc_runtime::pool_width(jobs, matrix.len());
    let outcomes: Vec<Result<SplitFlowRow, PipelineError>> = splitc_runtime::sweep(
        &matrix,
        jobs,
        |_worker| Workspace::sized_for(n),
        |ws, &(ki, strategy, ti), _| {
            let dk = &deployed[ki];
            let target = &targets[ti];
            let (engine, jit, opt_report) = match strategy {
                // The thorough JIT performs the same analyses as the offline
                // step, only it pays for them at run time on the device.
                Strategy::Split | Strategy::OfflineNative | Strategy::JitAnalyze => {
                    (&dk.full_engine, JitOptions::split(), &dk.full_report)
                }
                Strategy::JitGreedy => (
                    &dk.plain_engine,
                    JitOptions::online_greedy(),
                    &dk.plain_report,
                ),
            };
            ws.reset();
            let prepared = prepare(dk.kernel.name, n, 0xf16 + n as u64, ws);
            let m = engine.run(target, &jit, dk.kernel.name, &prepared.args, ws.bytes_mut())?;
            let (offline_work, online_work) = match strategy {
                // The native oracle performs the online step ahead of time
                // as well, so all of its work counts as offline.
                Strategy::OfflineNative => (opt_report.offline_work + m.jit.total_work(), 0),
                // The thorough JIT pays for everything at run time.
                Strategy::JitAnalyze => (0, opt_report.offline_work + m.jit.total_work()),
                _ => (opt_report.offline_work, m.jit.total_work()),
            };
            Ok(SplitFlowRow {
                kernel: dk.kernel.name.to_owned(),
                target: target.name.clone(),
                strategy,
                offline_work,
                online_work,
                cycles: m.stats.cycles,
            })
        },
    );

    let mut rows = Vec::with_capacity(outcomes.len());
    for outcome in outcomes {
        rows.push(outcome?);
    }
    let mut cache = CacheStats::default();
    let mut online_work = 0;
    for dk in &deployed {
        cache += dk.full_engine.stats();
        cache += dk.plain_engine.stats();
        online_work += dk.full_engine.online_work() + dk.plain_engine.online_work();
    }
    Ok(SplitFlow {
        n,
        rows,
        cache,
        online_work,
        jobs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_gets_native_quality_at_a_fraction_of_the_online_cost() {
        let flow = run(256, &[TargetDesc::x86_sse()]).expect("experiment runs");
        // Same generated code as the native oracle.
        let speedup_vs_native = flow.mean_speedup(Strategy::Split, Strategy::OfflineNative);
        assert!((0.99..=1.01).contains(&speedup_vs_native));
        // Much faster code than the cheap JIT (vectorization + spill ordering).
        assert!(flow.mean_speedup(Strategy::Split, Strategy::JitGreedy) > 1.2);
        // And much cheaper online than the JIT that redoes the analyses itself.
        assert!(flow.mean_online_work_ratio(Strategy::Split, Strategy::JitAnalyze) < 0.8);
        // While matching its code quality.
        let vs_thorough = flow.mean_speedup(Strategy::Split, Strategy::JitAnalyze);
        assert!((0.99..=1.01).contains(&vs_thorough));
        // Offline work is where the split strategy pays.
        let split_offline: u64 = flow.rows_for(Strategy::Split).map(|r| r.offline_work).sum();
        let greedy_offline: u64 = flow
            .rows_for(Strategy::JitGreedy)
            .map(|r| r.offline_work)
            .sum();
        assert!(split_offline > greedy_offline);
        let text = flow.render();
        assert!(text.contains("split vs jit-greedy"));
        // 6 kernels x 2 offline configurations x 1 target compiled; the three
        // full-pipeline strategies share one compiled program per target, so
        // the cache absorbs their extra runs.
        assert_eq!(flow.cache.compiles, 6 * 2);
        assert_eq!(flow.cache.lookups(), 6 * (2 + 4)); // precompiles + 4 strategy runs
        assert!(flow.cache.hits > flow.cache.compiles);
    }

    #[test]
    fn parallel_strategy_sweep_is_bit_identical_to_sequential() {
        let targets = [TargetDesc::x86_sse(), TargetDesc::arm_neon()];
        let sequential = run_with(128, &targets, 1).expect("sequential sweep runs");
        let parallel = run_with(128, &targets, 4).expect("parallel sweep runs");
        assert_eq!(sequential.rows, parallel.rows);
        assert_eq!(sequential.cache, parallel.cache);
        assert!(parallel.render().contains("amortized online cost"));
    }
}
