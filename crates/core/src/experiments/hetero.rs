//! Experiment E4 — heterogeneity scenarios of Section 3.
//!
//! The same vectorized bytecode is deployed, unmodified, to very different
//! machines: the x86 workstation it was developed on, an ARM+Neon phone core,
//! and a Cell-style blade where the host PPE can either run the kernel itself
//! or offload it to an SPU accelerator (paying DMA transfers both ways). The
//! experiment sweeps the problem size to expose the offload-profitability
//! crossover and demonstrates performance portability from one binary.

use crate::harness::prepare;
use crate::report::{fmt_amortized_jit, fmt_cache_line, TextTable};
use crate::session::{PipelineError, Workspace};
use splitc_opt::{optimize_module, OptOptions};
use splitc_runtime::{CacheStats, EngineError, Executor, Platform};
use splitc_workloads::{kernel, module_for};

/// One execution configuration of the experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeteroConfig {
    /// The x86 workstation (SIMD host).
    Workstation,
    /// The phone's ARM core with Neon.
    PhoneArm,
    /// The Cell host core (PPE), no offload.
    CellHost,
    /// Offloaded to one Cell SPU, including DMA transfers.
    CellSpuOffload,
    /// The RISC-V host core of the GPU node, no offload.
    RiscvHost,
    /// Offloaded to the GPU-style wide-SIMD accelerator over the node's slow
    /// off-chip link, including the transfers.
    GpuOffload,
}

impl HeteroConfig {
    /// All configurations, in reporting order.
    pub const ALL: [HeteroConfig; 6] = [
        HeteroConfig::Workstation,
        HeteroConfig::PhoneArm,
        HeteroConfig::CellHost,
        HeteroConfig::CellSpuOffload,
        HeteroConfig::RiscvHost,
        HeteroConfig::GpuOffload,
    ];

    /// Short label used in the report.
    pub fn label(self) -> &'static str {
        match self {
            HeteroConfig::Workstation => "x86 workstation",
            HeteroConfig::PhoneArm => "phone arm+neon",
            HeteroConfig::CellHost => "cell ppe (host)",
            HeteroConfig::CellSpuOffload => "cell spu (offload)",
            HeteroConfig::RiscvHost => "riscv host",
            HeteroConfig::GpuOffload => "gpu (offload)",
        }
    }
}

/// Scaled execution time of one configuration at one problem size.
#[derive(Debug, Clone, PartialEq)]
pub struct HeteroCell {
    /// Configuration measured.
    pub config: HeteroConfig,
    /// Compute time in scaled cycles.
    pub compute: f64,
    /// Data transfer overhead in scaled cycles (offload only).
    pub transfer: f64,
}

impl HeteroCell {
    /// Total time as seen by the application.
    pub fn total(&self) -> f64 {
        self.compute + self.transfer
    }
}

/// Measurements for one problem size.
#[derive(Debug, Clone, PartialEq)]
pub struct HeteroRow {
    /// Elements processed.
    pub n: usize,
    /// One cell per configuration.
    pub cells: Vec<HeteroCell>,
}

impl HeteroRow {
    /// The cell for `config`.
    pub fn cell(&self, config: HeteroConfig) -> Option<&HeteroCell> {
        self.cells.iter().find(|c| c.config == config)
    }
}

/// The complete experiment result.
#[derive(Debug, Clone, PartialEq)]
pub struct Hetero {
    /// Kernel used for the sweep.
    pub kernel: String,
    /// One row per problem size.
    pub rows: Vec<HeteroRow>,
    /// Engine code-cache counters: one compilation per distinct core type,
    /// however many problem sizes the sweep measures.
    pub cache: CacheStats,
    /// Total online-compilation work units spent by the deployment.
    pub online_work: u64,
    /// Worker threads the measurement sweep used.
    pub jobs: usize,
}

impl Hetero {
    /// The smallest problem size at which `offload` beats `host`, if any size
    /// in the sweep does.
    pub fn crossover(&self, host: HeteroConfig, offload: HeteroConfig) -> Option<usize> {
        self.rows
            .iter()
            .find(|r| {
                let h = r.cell(host).map(HeteroCell::total);
                let o = r.cell(offload).map(HeteroCell::total);
                matches!((h, o), (Some(h), Some(o)) if o < h)
            })
            .map(|r| r.n)
    }

    /// The smallest problem size at which offloading to the SPU beats running
    /// on the Cell host core, if any size in the sweep does.
    pub fn offload_crossover(&self) -> Option<usize> {
        self.crossover(HeteroConfig::CellHost, HeteroConfig::CellSpuOffload)
    }

    /// The smallest problem size at which offloading to the GPU (over the
    /// slow off-chip link) beats the RISC-V host, if any size does.
    pub fn gpu_crossover(&self) -> Option<usize> {
        self.crossover(HeteroConfig::RiscvHost, HeteroConfig::GpuOffload)
    }

    /// Render the sweep and the crossover summary.
    pub fn render(&self) -> String {
        let mut header = vec!["n".to_owned()];
        for c in HeteroConfig::ALL {
            header.push(c.label().to_owned());
        }
        let refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut table = TextTable::new(&refs);
        for row in &self.rows {
            let mut cells = vec![row.n.to_string()];
            for c in HeteroConfig::ALL {
                let cell = row.cell(c).expect("every configuration measured");
                cells.push(format!("{:.0}", cell.total()));
            }
            table.row(cells);
        }
        let crossover = match self.offload_crossover() {
            Some(n) => format!("SPU offload beats the Cell host from n = {n} elements on"),
            None => "SPU offload never beats the Cell host in this sweep".to_owned(),
        };
        let gpu_crossover = match self.gpu_crossover() {
            Some(n) => format!("GPU offload beats the RISC-V host from n = {n} elements on"),
            None => "GPU offload never beats the RISC-V host in this sweep".to_owned(),
        };
        let mut out = format!(
            "Heterogeneous deployment of `{}` (scaled cycles, lower is better)\n{}\n{}\n{}\n{}\n",
            self.kernel,
            table.render(),
            crossover,
            gpu_crossover,
            fmt_cache_line(&self.cache),
        );
        if self.jobs > 1 {
            out.push_str(&fmt_amortized_jit(self.online_work, self.jobs));
            out.push('\n');
        }
        out
    }
}

/// Run the heterogeneity experiment for `kernel_name` over the given sizes.
///
/// # Errors
///
/// Returns a [`PipelineError`] if compilation or execution fails, or if the
/// kernel is not in the workload catalogue.
pub fn run(kernel_name: &str, sizes: &[usize]) -> Result<Hetero, PipelineError> {
    run_with(kernel_name, sizes, 1)
}

/// Run the heterogeneity experiment with the size × configuration matrix
/// fanned across `jobs` worker threads (0 = one per host core).
///
/// Every cell's inputs depend only on its problem size, so the parallel
/// sweep is bit-identical to the sequential one.
///
/// # Errors
///
/// Same conditions as [`run`].
pub fn run_with(kernel_name: &str, sizes: &[usize], jobs: usize) -> Result<Hetero, PipelineError> {
    let jobs = crate::sweep::resolve_jobs(jobs);
    let k =
        kernel(kernel_name).ok_or_else(|| EngineError::UnknownKernel(kernel_name.to_owned()))?;
    let mut module =
        module_for(std::slice::from_ref(&k), kernel_name).map_err(PipelineError::Frontend)?;
    optimize_module(&mut module, &OptOptions::full());

    let workstation = Platform::workstation();
    let phone = Platform::phone();
    let cell = Platform::cell_blade(1);
    let gpu_node = Platform::gpu_node();
    let exec = Executor::deploy(module);
    // One deployment serves every configuration; compile each distinct core
    // type once, before the size sweep starts measuring.
    exec.precompile([
        workstation.host(),
        phone.core("arm").expect("phone has an arm core"),
        cell.host(),
        cell.core("spu0").expect("blade has an spu"),
        gpu_node.host(),
        gpu_node.core("gpu").expect("node has a gpu"),
    ])?;

    // The measurement matrix: every (size, configuration) cell, sized so one
    // per-worker workspace fits the largest problem of the sweep.
    let mut matrix = Vec::with_capacity(sizes.len() * HeteroConfig::ALL.len());
    for &n in sizes {
        for config in HeteroConfig::ALL {
            matrix.push((n, config));
        }
    }
    // Report the pool width the sweep actually runs with.
    let jobs = splitc_runtime::pool_width(jobs, matrix.len());
    let max_n = sizes.iter().copied().max().unwrap_or(0);
    let outcomes: Vec<Result<HeteroCell, PipelineError>> = splitc_runtime::sweep(
        &matrix,
        jobs,
        |_worker| Workspace::sized_for(max_n),
        |ws, &(n, config), _| {
            ws.reset();
            let prepared = prepare(kernel_name, n, 0x4e7 + n as u64, ws);
            let (core, dma) = match config {
                HeteroConfig::Workstation => (workstation.host(), None),
                HeteroConfig::PhoneArm => (phone.core("arm").expect("phone has an arm core"), None),
                HeteroConfig::CellHost => (cell.host(), None),
                HeteroConfig::CellSpuOffload => (
                    cell.core("spu0").expect("blade has an spu"),
                    Some(&cell.dma),
                ),
                HeteroConfig::RiscvHost => (gpu_node.host(), None),
                HeteroConfig::GpuOffload => (
                    gpu_node.core("gpu").expect("node has a gpu"),
                    Some(&gpu_node.dma),
                ),
            };
            match dma {
                None => {
                    let outcome = exec.run(core, kernel_name, &prepared.args, ws.bytes_mut())?;
                    Ok(HeteroCell {
                        config,
                        compute: outcome.scaled_cycles,
                        transfer: 0.0,
                    })
                }
                Some(dma) => {
                    let bytes_out = prepared.output.map(|(_, len)| len).unwrap_or(8);
                    let (outcome, cost) = exec.run_offloaded(
                        core,
                        kernel_name,
                        &prepared.args,
                        ws.bytes_mut(),
                        dma,
                        prepared.input_bytes,
                        bytes_out,
                    )?;
                    Ok(HeteroCell {
                        config,
                        compute: outcome.scaled_cycles,
                        transfer: cost.dma_cycles as f64,
                    })
                }
            }
        },
    );

    let mut rows: Vec<HeteroRow> = sizes
        .iter()
        .map(|&n| HeteroRow {
            n,
            cells: Vec::with_capacity(HeteroConfig::ALL.len()),
        })
        .collect();
    for (i, outcome) in outcomes.into_iter().enumerate() {
        rows[i / HeteroConfig::ALL.len()].cells.push(outcome?);
    }
    Ok(Hetero {
        kernel: kernel_name.to_owned(),
        rows,
        cache: exec.engine().stats(),
        online_work: exec.engine().online_work(),
        jobs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offload_pays_off_only_for_large_problems() {
        let result = run("saxpy_f32", &[64, 4096, 32768]).expect("experiment runs");
        assert_eq!(result.rows.len(), 3);
        let small = &result.rows[0];
        let large = &result.rows[2];
        // For tiny problems the DMA overhead dominates.
        assert!(
            small.cell(HeteroConfig::CellSpuOffload).unwrap().total()
                > small.cell(HeteroConfig::CellHost).unwrap().total(),
            "offloading 64 elements should not pay off"
        );
        // For large problems the SIMD accelerator wins despite the transfers.
        assert!(
            large.cell(HeteroConfig::CellSpuOffload).unwrap().total()
                < large.cell(HeteroConfig::CellHost).unwrap().total(),
            "offloading 32k elements should pay off"
        );
        assert!(result.offload_crossover().is_some());
        assert!(result.render().contains("SPU offload"));
        assert!(result.render().contains("GPU offload"));
        // Six distinct core types (x86, arm, ppe, spu, riscv, gpu) compiled
        // once each; every measured run of the sweep hit the engine cache.
        assert_eq!(result.cache.compiles, HeteroConfig::ALL.len() as u64);
        assert_eq!(result.cache.hits, (3 * HeteroConfig::ALL.len()) as u64);
    }

    #[test]
    fn gpu_offload_pays_its_offchip_link_only_at_scale() {
        // The modern variant of the paper's Section 3 story: the wide-SIMD
        // accelerator sits behind a *slow off-chip* link, so the crossover
        // exists but needs a larger problem than the Cell's on-board ring.
        let result = run("saxpy_f32", &[64, 4096, 65536]).expect("experiment runs");
        let small = &result.rows[0];
        let large = &result.rows[2];
        assert!(
            small.cell(HeteroConfig::GpuOffload).unwrap().total()
                > small.cell(HeteroConfig::RiscvHost).unwrap().total(),
            "offloading 64 elements over the off-chip link should not pay off"
        );
        assert!(
            large.cell(HeteroConfig::GpuOffload).unwrap().total()
                < large.cell(HeteroConfig::RiscvHost).unwrap().total(),
            "offloading 64k elements to 16 f32 lanes should pay off"
        );
        assert!(result.gpu_crossover().is_some());
        // The transfers really ride the slow link: at the large size the DMA
        // share of the offloaded total is substantial.
        let cell = large.cell(HeteroConfig::GpuOffload).unwrap();
        assert!(cell.transfer > 0.0);
    }

    #[test]
    fn unknown_kernel_is_an_error() {
        assert!(run("not_a_kernel", &[16]).is_err());
    }

    #[test]
    fn parallel_size_sweep_is_bit_identical_to_sequential() {
        let sizes = [64, 1024, 8192];
        let sequential = run_with("saxpy_f32", &sizes, 1).expect("sequential sweep runs");
        let parallel = run_with("saxpy_f32", &sizes, 4).expect("parallel sweep runs");
        assert_eq!(sequential.rows, parallel.rows);
        assert_eq!(sequential.cache, parallel.cache);
        assert!(parallel.render().contains("amortized online cost"));
    }
}
