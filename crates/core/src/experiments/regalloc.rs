//! Experiment E3 — split register allocation (Section 4, Diouf et al.).
//!
//! The offline compiler ranks values by how much they deserve a register and
//! ships the ranking as a compact annotation; the online step then assigns
//! registers in linear time. The comparison is against (a) a greedy online
//! assignment with no analysis at all and (b) an online assignment that redoes
//! the ranking analysis at JIT time. The paper reports up to 40 % fewer spills
//! than the purely online allocator at a fraction of the online cost; here we
//! measure dynamic spill traffic (spill stores + reloads) on register-starved
//! targets.

use crate::harness::{checksum, prepare};
use crate::report::TextTable;
use crate::session::{PipelineError, Workspace};
use splitc_jit::{JitOptions, RegAllocMode};
use splitc_opt::{optimize_module, OptOptions};
use splitc_runtime::{CacheStats, ExecutionEngine};
use splitc_targets::TargetDesc;
use splitc_workloads::{module_for, pressure_kernels, table1_kernels, Kernel};

/// Spill measurements of one kernel on one target under the three allocators.
#[derive(Debug, Clone, PartialEq)]
pub struct RegallocRow {
    /// Kernel name.
    pub kernel: String,
    /// Target name.
    pub target: String,
    /// Dynamic spill operations with the split (annotation-driven) allocator.
    pub split_spills: u64,
    /// Dynamic spill operations with the greedy online allocator.
    pub greedy_spills: u64,
    /// Dynamic spill operations with the analyzing online allocator.
    pub analyze_spills: u64,
    /// Execution cycles with the split allocator.
    pub split_cycles: u64,
    /// Execution cycles with the greedy allocator.
    pub greedy_cycles: u64,
    /// Online register-allocation work units of the split allocator.
    pub split_work: u64,
    /// Online register-allocation work units of the analyzing allocator.
    pub analyze_work: u64,
}

impl RegallocRow {
    /// Fraction of the greedy allocator's spill traffic removed by the split
    /// allocator (0.40 = 40 % fewer spill operations).
    pub fn spill_reduction(&self) -> f64 {
        if self.greedy_spills == 0 {
            0.0
        } else {
            1.0 - self.split_spills as f64 / self.greedy_spills as f64
        }
    }
}

/// The complete experiment result.
#[derive(Debug, Clone, PartialEq)]
pub struct Regalloc {
    /// Elements processed per kernel invocation.
    pub n: usize,
    /// All measurements.
    pub rows: Vec<RegallocRow>,
    /// Engine code-cache counters summed over all kernels: one compilation
    /// per (kernel, target, allocator) triple, never more.
    pub cache: CacheStats,
}

impl Regalloc {
    /// The largest spill reduction observed (the paper's "up to 40 %").
    pub fn best_reduction(&self) -> f64 {
        self.rows
            .iter()
            .map(RegallocRow::spill_reduction)
            .fold(0.0, f64::max)
    }

    /// Mean spill reduction across rows where the greedy allocator spills.
    pub fn mean_reduction(&self) -> f64 {
        let relevant: Vec<f64> = self
            .rows
            .iter()
            .filter(|r| r.greedy_spills > 0)
            .map(RegallocRow::spill_reduction)
            .collect();
        if relevant.is_empty() {
            0.0
        } else {
            relevant.iter().sum::<f64>() / relevant.len() as f64
        }
    }

    /// Render the measurements and summary lines.
    pub fn render(&self) -> String {
        let mut table = TextTable::new(&[
            "kernel",
            "target",
            "spills split",
            "spills greedy",
            "spills analyze",
            "reduction",
            "cycles split",
            "cycles greedy",
        ]);
        for r in &self.rows {
            table.row(vec![
                r.kernel.clone(),
                r.target.clone(),
                r.split_spills.to_string(),
                r.greedy_spills.to_string(),
                r.analyze_spills.to_string(),
                format!("{:.0}%", r.spill_reduction() * 100.0),
                r.split_cycles.to_string(),
                r.greedy_cycles.to_string(),
            ]);
        }
        format!(
            "Split register allocation (n = {}; dynamic spill stores + reloads)\n{}\n\
             best spill reduction vs greedy online allocation: {:.0}%\n\
             mean spill reduction vs greedy online allocation: {:.0}%\n\
             online compilations: {} across {} runs ({} served from the engine cache)\n",
            self.n,
            table.render(),
            self.best_reduction() * 100.0,
            self.mean_reduction() * 100.0,
            self.cache.compiles,
            self.cache.lookups(),
            self.cache.hits,
        )
    }
}

fn experiment_kernels() -> Vec<Kernel> {
    let mut kernels = pressure_kernels();
    // Include a couple of Table 1 kernels as low-pressure controls.
    kernels.extend(table1_kernels().into_iter().take(2));
    kernels
}

/// Run the split register allocation experiment with `n` elements per kernel.
///
/// # Errors
///
/// Returns a [`PipelineError`] if compilation or execution fails.
pub fn run(n: usize) -> Result<Regalloc, PipelineError> {
    // Register-starved targets are where allocation quality matters; the
    // RISC-V core is the opposite control — with its large uniform register
    // file the three allocators should all converge on near-zero spills.
    let targets = [
        TargetDesc::x86_sse(),
        TargetDesc::arm_neon(),
        TargetDesc::dsp(),
        TargetDesc::riscv_rv64(),
    ];
    // Scalar code only: vectorization is a separate experiment and would
    // change register pressure.
    let opt = OptOptions {
        vectorize: false,
        ..OptOptions::full()
    };

    let modes = [
        RegAllocMode::SplitAnnotations,
        RegAllocMode::OnlineGreedy,
        RegAllocMode::OnlineAnalyze,
    ];
    let jit_for = |mode: RegAllocMode| JitOptions {
        regalloc: mode,
        allow_simd: true,
        fuse: true,
    };

    let mut rows = Vec::new();
    let mut cache = CacheStats::default();
    for kernel in experiment_kernels() {
        let mut module = module_for(std::slice::from_ref(&kernel), kernel.name)
            .map_err(PipelineError::Frontend)?;
        optimize_module(&mut module, &opt);
        // Deploy once per kernel; compile every (target, allocator) pair
        // up front so the measurement loop below never JITs.
        let engine = ExecutionEngine::new(module);
        for mode in modes {
            engine.precompile(&targets, &jit_for(mode))?;
        }
        for target in &targets {
            let measure = |mode: RegAllocMode| -> Result<(u64, u64, u64, u64), PipelineError> {
                let mut ws = Workspace::sized_for(n);
                let prepared = prepare(kernel.name, n, 0x2e6 + n as u64, &mut ws);
                let m = engine.run(
                    target,
                    &jit_for(mode),
                    kernel.name,
                    &prepared.args,
                    ws.bytes_mut(),
                )?;
                Ok((
                    m.spill_ops(),
                    m.stats.cycles,
                    m.jit.regalloc_work,
                    checksum(m.result, &prepared, &ws),
                ))
            };
            let (split_spills, split_cycles, split_work, split_sum) =
                measure(RegAllocMode::SplitAnnotations)?;
            let (greedy_spills, greedy_cycles, _, greedy_sum) =
                measure(RegAllocMode::OnlineGreedy)?;
            let (analyze_spills, _, analyze_work, analyze_sum) =
                measure(RegAllocMode::OnlineAnalyze)?;
            debug_assert_eq!(split_sum, greedy_sum, "{} on {}", kernel.name, target.name);
            debug_assert_eq!(split_sum, analyze_sum, "{} on {}", kernel.name, target.name);
            rows.push(RegallocRow {
                kernel: kernel.name.to_owned(),
                target: target.name.clone(),
                split_spills,
                greedy_spills,
                analyze_spills,
                split_cycles,
                greedy_cycles,
                split_work,
                analyze_work,
            });
        }
        cache += engine.stats();
    }
    Ok(Regalloc { n, rows, cache })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_allocation_reduces_spills_on_starved_targets() {
        let result = run(192).expect("experiment runs");
        assert!(!result.rows.is_empty());
        // The annotation-driven allocator never does worse than greedy overall,
        // and on at least one pressure kernel it removes a substantial share
        // of the spill traffic (the paper reports up to 40%).
        for r in &result.rows {
            assert!(
                r.split_spills <= r.greedy_spills + r.greedy_spills / 10,
                "{} on {}: split {} vs greedy {}",
                r.kernel,
                r.target,
                r.split_spills,
                r.greedy_spills
            );
        }
        assert!(
            result.best_reduction() >= 0.25,
            "expected a sizeable best-case spill reduction, got {:.0}%",
            result.best_reduction() * 100.0
        );
        // The split allocator's online work stays below the analyzing JIT's.
        let cheaper = result
            .rows
            .iter()
            .filter(|r| r.split_work <= r.analyze_work)
            .count();
        assert!(cheaper * 2 >= result.rows.len());
        assert!(result.render().contains("best spill reduction"));
        // The RISC-V control: with 28 integer / 28 float registers even the
        // pressure kernels keep their working sets enregistered, so the
        // allocation strategy barely matters there.
        let riscv_rows: Vec<_> = result
            .rows
            .iter()
            .filter(|r| r.target == "riscv-rv64")
            .collect();
        assert!(!riscv_rows.is_empty());
        for r in &riscv_rows {
            assert!(
                r.greedy_spills <= r.greedy_cycles / 50,
                "{} on riscv-rv64: a large register file should stay near spill-free \
                 ({} spill ops over {} cycles)",
                r.kernel,
                r.greedy_spills,
                r.greedy_cycles
            );
        }
        // One compilation per (kernel, target, allocator) triple; every
        // measured run hit the engine cache. Target count derived from the
        // rows, not hardcoded.
        let targets: std::collections::BTreeSet<_> =
            result.rows.iter().map(|r| r.target.clone()).collect();
        assert_eq!(targets.len(), 4);
        let kernels = result.rows.len() / targets.len();
        assert_eq!(result.cache.compiles as usize, kernels * targets.len() * 3);
        assert_eq!(result.cache.hits, result.cache.compiles);
    }
}
