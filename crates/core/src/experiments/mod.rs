//! Experiment drivers reproducing every table and figure of the paper.
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`table1`] | Table 1 — run times and speedups of split automatic vectorization |
//! | [`splitflow`] | Figure 1 — offline/online work split of split compilation |
//! | [`regalloc`] | Section 4 — split register allocation (spill reduction) |
//! | [`hetero`] | Section 3 — heterogeneous deployment and accelerator offload |
//! | [`codesize`] | Section 2.1 — compactness of the bytecode deployment format |
//! | [`kpn`] | Section 4 — Kahn process networks for portable concurrency |
//!
//! Every driver returns a structured result with a `render()` method that
//! prints a paper-style table; the `report` binary of the `splitc-bench`
//! crate and the Criterion benchmarks are thin wrappers around these
//! functions.

pub mod codesize;
pub mod hetero;
pub mod kpn;
pub mod regalloc;
pub mod splitflow;
pub mod table1;
