//! Experiment E6 — Kahn process networks for portable concurrency (Section 4).
//!
//! The paper ends by arguing that future bytecode formats should carry
//! *portable, deterministic, composable* concurrency, with Kahn process
//! networks as the semantic basis. This experiment builds an image-processing
//! pipeline out of the kernel catalogue (brighten → threshold → copy), measures
//! the per-firing cost of every stage on every core of a platform by actually
//! JIT-compiling and simulating the stage kernels, and then compares the
//! makespan of running the whole network on the host core against pipelining
//! it across the platform's cores.

use crate::harness::prepare;
use crate::report::TextTable;
use crate::session::{PipelineError, Workspace};
use splitc_jit::JitOptions;
use splitc_opt::{optimize_module, OptOptions};
use splitc_runtime::{profile_pipeline, CacheStats, ExecutionEngine, KpnReport, Platform};
use splitc_workloads::{module_for, pipeline_kernels};

/// Result of mapping the pipeline one way onto the platform.
#[derive(Debug, Clone, PartialEq)]
pub struct MappingResult {
    /// Human-readable mapping description.
    pub label: String,
    /// Core index per pipeline stage.
    pub mapping: Vec<usize>,
    /// Simulation outcome.
    pub report: KpnReport,
}

/// The complete experiment result.
#[derive(Debug, Clone, PartialEq)]
pub struct Kpn {
    /// Platform used.
    pub platform: String,
    /// Stage (kernel) names, in pipeline order.
    pub stages: Vec<String>,
    /// Frame size in elements.
    pub frame_elems: usize,
    /// Number of frames pushed through the pipeline.
    pub frames: u64,
    /// Per-stage, per-core firing costs in scaled cycles.
    pub stage_costs: Vec<Vec<f64>>,
    /// Results of the evaluated mappings.
    pub mappings: Vec<MappingResult>,
    /// Engine code-cache counters from profiling the stages: one compilation
    /// per distinct core type of the platform.
    pub cache: CacheStats,
}

impl Kpn {
    /// Speedup of the best mapping over the all-on-host mapping.
    pub fn pipeline_speedup(&self) -> f64 {
        let host = self
            .mappings
            .first()
            .map(|m| m.report.makespan)
            .unwrap_or(0.0);
        let best = self
            .mappings
            .iter()
            .map(|m| m.report.makespan)
            .fold(f64::INFINITY, f64::min);
        if best == 0.0 {
            1.0
        } else {
            host / best
        }
    }

    /// Render the mapping comparison.
    pub fn render(&self) -> String {
        let mut table = TextTable::new(&["mapping", "makespan", "utilization"]);
        for m in &self.mappings {
            table.row(vec![
                m.label.clone(),
                format!("{:.0}", m.report.makespan),
                format!("{:.0}%", m.report.utilization() * 100.0),
            ]);
        }
        format!(
            "Kahn process network `{}` on {} ({} frames of {} elements)\n{}\n\
             pipelining speedup over the host-only mapping: {:.2}x\n\
             online compilations: {} across {} stage profilings ({} served from the engine cache)\n",
            self.stages.join(" -> "),
            self.platform,
            self.frames,
            self.frame_elems,
            table.render(),
            self.pipeline_speedup(),
            self.cache.compiles,
            self.cache.lookups(),
            self.cache.hits,
        )
    }
}

/// Run the Kahn-network experiment: `frames` frames of `frame_elems` bytes
/// through the three-stage image pipeline on `platform`.
///
/// # Errors
///
/// Returns a [`PipelineError`] if any stage fails to compile or execute.
pub fn run(platform: &Platform, frame_elems: usize, frames: u64) -> Result<Kpn, PipelineError> {
    let stages = pipeline_kernels();
    let mut module = module_for(&stages, "pipeline").map_err(PipelineError::Frontend)?;
    optimize_module(&mut module, &OptOptions::full());
    let engine = ExecutionEngine::new(module);
    let options = JitOptions::split();
    // Compile each distinct core type once, before any stage is profiled.
    engine.precompile(platform.cores.iter().map(|c| &c.target), &options)?;

    // Measure the per-firing cost of every stage on every core through the
    // shared engine and build the network from the measured costs.
    let stage_names: Vec<&str> = stages.iter().map(|s| s.name).collect();
    let (net, stage_costs) = profile_pipeline(
        &engine,
        &options,
        platform,
        &stage_names,
        frames,
        |stage, _core| {
            let mut ws = Workspace::new((4 * frame_elems + (1 << 12)).max(1 << 14));
            let prepared = prepare(stage, frame_elems, 0x609, &mut ws);
            (prepared.args, ws.into_bytes())
        },
    )?;

    // Mapping 1: everything on the host core.
    let host_mapping = vec![0usize; stages.len()];
    // Mapping 2: spread the stages round-robin over the cores.
    let spread_mapping: Vec<usize> = (0..stages.len())
        .map(|i| i % platform.cores.len())
        .collect();
    // Mapping 3: each stage on its cheapest core.
    let greedy_mapping: Vec<usize> = stage_costs
        .iter()
        .map(|costs| {
            costs
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, _)| i)
                .unwrap_or(0)
        })
        .collect();

    let mut mappings = Vec::new();
    for (label, mapping) in [
        ("host only".to_owned(), host_mapping),
        ("round robin".to_owned(), spread_mapping),
        ("cheapest core per stage".to_owned(), greedy_mapping),
    ] {
        let report = net.simulate(&mapping, platform.cores.len());
        mappings.push(MappingResult {
            label,
            mapping,
            report,
        });
    }

    Ok(Kpn {
        platform: platform.name.clone(),
        stages: stages.iter().map(|s| s.name.to_owned()).collect(),
        frame_elems,
        frames,
        stage_costs,
        mappings,
        cache: engine.stats(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelining_across_cores_beats_the_host_only_mapping() {
        let platform = Platform::cell_blade(2);
        let result = run(&platform, 256, 16).expect("experiment runs");
        assert_eq!(result.stages.len(), 3);
        assert_eq!(result.mappings.len(), 3);
        // Every stage fired once per frame under every mapping (determinism).
        for m in &result.mappings {
            assert!(m.report.firings.iter().all(|f| *f == 16));
        }
        assert!(
            result.pipeline_speedup() > 1.2,
            "expected a pipelining win, got {:.2}x",
            result.pipeline_speedup()
        );
        assert!(result.render().contains("pipelining speedup"));
        // A cell blade with 2 SPUs has 3 cores but only 2 core types; the
        // 3 stages x 3 cores profiling runs reuse those two programs.
        assert_eq!(result.cache.compiles, 2);
        assert_eq!(result.cache.lookups(), 3 + 9); // precompile + profiling
    }
}
