//! Minimal fixed-width text tables for the experiment reports.

/// A simple text table with a header row and aligned columns.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Create a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must have as many cells as the header).
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render the table as aligned text.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                // Right-align numbers, left-align text.
                if cell
                    .chars()
                    .next()
                    .map(|c| c.is_ascii_digit())
                    .unwrap_or(false)
                {
                    line.push_str(&format!("{cell:>width$}", width = widths[i]));
                } else {
                    line.push_str(&format!("{cell:<width$}", width = widths[i]));
                }
            }
            line
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Render an engine's cache counters the way every experiment report prints
/// them.
///
/// The two-field shape (`compiles` across `lookups`, `hits` served from the
/// cache) is kept byte-identical to the historical output; the `evictions`
/// field is appended only when an LRU bound actually evicted something, so
/// golden outputs of unbounded runs don't churn.
pub fn fmt_cache_line(cache: &splitc_runtime::CacheStats) -> String {
    let mut line = format!(
        "online compilations: {} across {} runs ({} served from the engine cache)",
        cache.compiles,
        cache.lookups(),
        cache.hits,
    );
    if cache.evictions > 0 {
        line.push_str(&format!(", {} evicted by the LRU bound", cache.evictions));
    }
    // The persistent-store counters only appear when a store was attached
    // (all three stay zero otherwise), so storeless golden outputs keep
    // their historical shape.
    if cache.disk_hits + cache.disk_misses + cache.disk_rejects > 0 {
        line.push_str(&format!(
            ", store: {} loaded / {} missed / {} rejected",
            cache.disk_hits, cache.disk_misses, cache.disk_rejects,
        ));
    }
    line
}

/// Render the amortized online-compilation cost of a parallel sweep: total
/// JIT work units spread over the worker pool.
///
/// Only emitted by reports of multi-worker runs (for `jobs <= 1` the plain
/// cache line already tells the whole story), so single-threaded golden
/// outputs keep their historical shape.
pub fn fmt_amortized_jit(online_work: u64, jobs: usize) -> String {
    let jobs = jobs.max(1);
    format!(
        "amortized online cost: {} work units over {} workers (~{} per worker)",
        online_work,
        jobs,
        online_work / jobs as u64,
    )
}

/// Format a speedup factor the way the paper prints them (`2.2`, `0.95`, `15.6`).
pub fn fmt_speedup(x: f64) -> String {
    if x >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(&["benchmark", "scalar", "vect.", "relative"]);
        t.row(vec![
            "saxpy fp".into(),
            "1544".into(),
            "724".into(),
            "2.13".into(),
        ]);
        t.row(vec![
            "max u8".into(),
            "3541".into(),
            "227".into(),
            "15.6".into(),
        ]);
        let text = t.render();
        assert!(text.contains("benchmark"));
        assert!(text.lines().count() >= 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        // Every rendered line has the same width within a column block.
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[2].len() <= lines[0].len() + 2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(vec!["only one".into()]);
    }

    #[test]
    fn speedup_formatting_matches_paper_style() {
        assert_eq!(fmt_speedup(15.62), "15.6");
        assert_eq!(fmt_speedup(2.234), "2.23");
        assert_eq!(fmt_speedup(0.947), "0.95");
    }
}
