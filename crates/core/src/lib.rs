//! # splitc — processor virtualization and split compilation
//!
//! A from-scratch Rust reproduction of **Cohen & Rohou, "Processor
//! Virtualization and Split Compilation for Heterogeneous Multicore Embedded
//! Systems" (DAC 2010)**.
//!
//! The system compiles portable kernels (a small C-like language) *offline*
//! into a target-independent bytecode with embedded annotations — automatic
//! vectorization to portable vector builtins, split register allocation,
//! kernel hardware traits — and then compiles that bytecode *online*, cheaply,
//! for whichever core it lands on: an x86 with SSE, a scalar UltraSparc or
//! PowerPC, an ARM with Neon, a Cell-style accelerator or a DSP, all modeled
//! as cycle-cost simulators.
//!
//! This crate is the facade: it wires the front end ([`splitc_minic`]), the
//! offline optimizer ([`splitc_opt`]), the online compiler ([`splitc_jit`]),
//! the virtual targets ([`splitc_targets`]) and the heterogeneous runtime
//! ([`splitc_runtime`]) into a single pipeline, hosts the experiment
//! drivers that regenerate every table and figure of the paper
//! (see [`experiments`]), provides the parallel sweep layer
//! (see [`sweep`]) that fans kernel × target × repeat matrices across
//! cores over one shared, sharded engine cache, and the serving layer
//! (see [`serve`]) that exposes deployments behind a bounded request queue
//! with fingerprint-deduplicated shared engines.
//!
//! # Quick start
//!
//! ```
//! use splitc::{offline_compile, run_on_target, Workspace};
//! use splitc_jit::JitOptions;
//! use splitc_opt::OptOptions;
//! use splitc_targets::{MachineValue, TargetDesc};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 1. Offline: compile and optimize once, on the developer workstation.
//! let (module, report) = offline_compile(
//!     "fn dscal(n: i32, a: f32, x: *f32) {
//!          for (let i: i32 = 0; i < n; i = i + 1) { x[i] = a * x[i]; }
//!      }",
//!     "kernels",
//!     &OptOptions::full(),
//! )?;
//! assert_eq!(report.total_vectorized(), 1);
//!
//! // 2. Online: the same bytecode runs on any simulated target.
//! let mut ws = Workspace::new(1 << 14);
//! let x = ws.alloc(4 * 100);
//! ws.write_f32s(x, &vec![1.0; 100]);
//! let run = run_on_target(
//!     &module,
//!     &TargetDesc::x86_sse(),
//!     &JitOptions::split(),
//!     "dscal",
//!     &[MachineValue::Int(100), MachineValue::Float(3.0), MachineValue::Int(x as i64)],
//!     ws.bytes_mut(),
//! )?;
//! assert!(run.jit.used_simd);
//! assert_eq!(ws.read_f32s(x, 1), vec![3.0]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
mod harness;
mod report;
pub mod serve;
mod session;
pub mod sweep;

pub use harness::{checksum, checksum_bytes, prepare, PreparedKernel};
pub use report::{fmt_amortized_jit, fmt_cache_line, fmt_speedup, TextTable};
pub use session::{
    offline_compile, offline_optimize, run_on_target, PipelineError, RunMeasurement, Workspace,
};
pub use sweep::{SweepCell, SweepConfig, SweepResult};
// The shared execution layer, re-exported so facade users can hold a cached
// engine instead of paying one compilation per `run_on_target` call, plus
// the deploy-time preparation types (pre-decoded programs, frame pools).
pub use splitc_runtime::{
    ArtifactStore, CacheSnapshot, CacheStats, EngineError, Execution, ExecutionEngine, FramePool,
    PreparedProgram, PreparedSimulator, StoreKey, StoreLoad, StoredArtifact, STORE_FORMAT_VERSION,
    STORE_MAGIC,
};

// Re-export the component crates so that downstream users (examples, tests,
// benches) can reach the whole system through this facade.
pub use splitc_jit;
pub use splitc_minic;
pub use splitc_opt;
pub use splitc_runtime;
pub use splitc_targets;
pub use splitc_vbc;
pub use splitc_workloads;
