//! Heterogeneous platform descriptions.
//!
//! A [`Platform`] is a set of [`Core`]s, each described by a virtual target,
//! plus an interconnect (DMA) cost model. The presets model the systems the
//! paper uses as motivation: a developer workstation, a phone-class SoC with
//! a DSP, and a Cell-style blade with a host core and SIMD accelerators.

use crate::offload::DmaModel;
use splitc_targets::TargetDesc;

/// One programmable core of a platform.
#[derive(Debug, Clone, PartialEq)]
pub struct Core {
    /// Core identifier, unique within the platform.
    pub id: usize,
    /// Human-readable role name (e.g. `"ppe0"`, `"spu2"`).
    pub name: String,
    /// The virtual target describing this core.
    pub target: TargetDesc,
}

/// A heterogeneous multiprocessor: cores plus an interconnect.
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    /// Platform name.
    pub name: String,
    /// All programmable cores.
    pub cores: Vec<Core>,
    /// Cost model for moving data to/from accelerator cores.
    pub dma: DmaModel,
}

impl Platform {
    /// Build a platform from a list of `(role name, target)` pairs.
    pub fn new(name: &str, cores: Vec<(&str, TargetDesc)>, dma: DmaModel) -> Self {
        Platform {
            name: name.to_owned(),
            cores: cores
                .into_iter()
                .enumerate()
                .map(|(id, (n, target))| Core {
                    id,
                    name: n.to_owned(),
                    target,
                })
                .collect(),
            dma,
        }
    }

    /// The developer workstation: a single x86 core with SSE.
    pub fn workstation() -> Self {
        Platform::new(
            "workstation",
            vec![("x86", TargetDesc::x86_sse())],
            DmaModel::on_chip(),
        )
    }

    /// A phone-class SoC: an ARM application core with Neon plus a small DSP.
    pub fn phone() -> Self {
        Platform::new(
            "phone",
            vec![("arm", TargetDesc::arm_neon()), ("dsp", TargetDesc::dsp())],
            DmaModel::on_chip(),
        )
    }

    /// A Cell-style blade: one PowerPC host core (PPE) and `spus` synergistic
    /// units reachable through DMA.
    pub fn cell_blade(spus: usize) -> Self {
        let mut cores = vec![("ppe", TargetDesc::cell_ppe())];
        let spu_names: Vec<String> = (0..spus).map(|i| format!("spu{i}")).collect();
        for name in &spu_names {
            cores.push((name.as_str(), TargetDesc::cell_spu()));
        }
        Platform::new("cell-blade", cores, DmaModel::ring_bus())
    }

    /// A GPU compute node: a RISC-V-class host core driving a GPU-style
    /// wide-SIMD accelerator (64-byte vectors) over a slow off-chip link —
    /// the modern heterogeneity scenario the paper's split-compilation story
    /// extends to.
    pub fn gpu_node() -> Self {
        Platform::new(
            "gpu-node",
            vec![
                ("riscv", TargetDesc::riscv_rv64()),
                ("gpu", TargetDesc::gpu_wide()),
            ],
            DmaModel::off_chip(),
        )
    }

    /// A legacy scalar embedded board: a single UltraSparc-class core.
    pub fn embedded_scalar() -> Self {
        Platform::new(
            "embedded-scalar",
            vec![("sparc", TargetDesc::ultrasparc())],
            DmaModel::on_chip(),
        )
    }

    /// A homogeneous multiprocessor with `n` copies of `target`.
    pub fn homogeneous(name: &str, target: TargetDesc, n: usize) -> Self {
        let names: Vec<String> = (0..n).map(|i| format!("core{i}")).collect();
        Platform::new(
            name,
            names.iter().map(|s| (s.as_str(), target.clone())).collect(),
            DmaModel::on_chip(),
        )
    }

    /// The host core (core 0).
    ///
    /// # Panics
    ///
    /// Panics if the platform has no cores.
    pub fn host(&self) -> &Core {
        &self.cores[0]
    }

    /// Cores other than the host — the accelerators.
    pub fn accelerators(&self) -> impl Iterator<Item = &Core> {
        self.cores.iter().skip(1)
    }

    /// Look up a core by role name.
    pub fn core(&self, name: &str) -> Option<&Core> {
        self.cores.iter().find(|c| c.name == name)
    }

    /// Cores that have a SIMD unit.
    pub fn simd_cores(&self) -> impl Iterator<Item = &Core> {
        self.cores.iter().filter(|c| c.target.has_simd())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_shapes() {
        let w = Platform::workstation();
        assert_eq!(w.cores.len(), 1);
        assert!(w.host().target.has_simd());

        let p = Platform::phone();
        assert_eq!(p.cores.len(), 2);
        assert!(p.core("dsp").is_some());
        assert_eq!(p.simd_cores().count(), 1);

        let cell = Platform::cell_blade(4);
        assert_eq!(cell.cores.len(), 5);
        assert_eq!(cell.accelerators().count(), 4);
        assert!(!cell.host().target.has_simd());
        assert!(cell.core("spu3").is_some());
        assert!(cell.core("spu4").is_none());

        let gpu = Platform::gpu_node();
        assert_eq!(gpu.cores.len(), 2);
        assert!(!gpu.host().target.has_simd(), "the RISC-V host is scalar");
        let accel = gpu.core("gpu").expect("node has a GPU");
        assert_eq!(accel.target.vector_bytes(), 64);
        assert_eq!(gpu.simd_cores().count(), 1);
    }

    #[test]
    fn homogeneous_platforms_replicate_the_target() {
        let h = Platform::homogeneous("quad", TargetDesc::arm_neon(), 4);
        assert_eq!(h.cores.len(), 4);
        assert!(h.cores.iter().all(|c| c.target.name == "arm-neon"));
        assert_eq!(h.cores[3].id, 3);
    }
}
