//! A scoped-thread worker pool for fanning independent jobs across cores.
//!
//! The amortization story of split compilation (compile once online, run many
//! times) only pays off at scale if the "many times" can actually happen at
//! once. This module provides the fan-out half: a job list — typically the
//! cells of a `K kernels × T targets × R repeats` matrix — is distributed
//! over a pool of scoped worker threads that all share one
//! [`ExecutionEngine`](crate::ExecutionEngine), whose sharded, in-flight
//! deduplicated code cache guarantees that racing cold compiles still happen
//! exactly once per (target, options) pair.
//!
//! Two properties make the pool suitable for measurement sweeps:
//!
//! * **per-worker state** — each worker builds one `State` value (a scratch
//!   workspace, a prepared simulator, …) and reuses it for every job it
//!   pulls, amortizing setup across the whole sweep instead of paying it per
//!   cell;
//! * **deterministic output order** — results are returned indexed by job
//!   position, not completion time, so a parallel sweep is bit-comparable to
//!   a sequential one.
//!
//! Workers pull jobs from a shared atomic cursor (work stealing by
//! construction: a slow cell never stalls the other workers). With `jobs <= 1`
//! the pool degenerates to an inline loop on the calling thread — no threads
//! are spawned, which keeps single-job callers allocation- and
//! synchronization-free.
//!
//! # Example
//!
//! ```
//! // Square eight numbers on four workers, each worker counting its jobs.
//! let inputs: Vec<u64> = (0..8).collect();
//! let squares = splitc_runtime::sweep(
//!     &inputs,
//!     4,
//!     |_worker| 0u64,                      // per-worker state: jobs done
//!     |done, &x, _index| { *done += 1; x * x },
//! );
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The number of worker threads the host supports (at least 1).
///
/// Sweep callers use this as the default for "use all cores" requests such as
/// the CLI's `--jobs 0`.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// The number of workers [`sweep`] will actually run for a request of
/// `workers` over `jobs` jobs: at least 1, at most one worker per job.
///
/// Callers that report a pool width (amortized-per-worker figures) use this
/// so their numbers match the real pool, not the requested one.
pub fn pool_width(workers: usize, jobs: usize) -> usize {
    workers.max(1).min(jobs.max(1))
}

/// Run every job of `jobs` through `work` on a pool of `workers` scoped
/// threads, returning the results in job order.
///
/// Each worker calls `init` once with its worker index to build its reusable
/// state, then repeatedly pulls the next unclaimed job. `work` receives the
/// worker state, the job, and the job's index in `jobs`. The returned vector
/// is indexed exactly like `jobs`, whatever order the cells completed in.
///
/// `workers` is clamped to `[1, jobs.len()]`; with one worker the jobs run
/// inline on the calling thread, in order, with no synchronization.
///
/// # Panics
///
/// Propagates a panic from any worker (the scope joins all threads first).
pub fn sweep<Job, Out, State>(
    jobs: &[Job],
    workers: usize,
    init: impl Fn(usize) -> State + Sync,
    work: impl Fn(&mut State, &Job, usize) -> Out + Sync,
) -> Vec<Out>
where
    Job: Sync,
    Out: Send,
{
    let workers = pool_width(workers, jobs.len());
    if workers <= 1 {
        let mut state = init(0);
        return jobs
            .iter()
            .enumerate()
            .map(|(i, job)| work(&mut state, job, i))
            .collect();
    }

    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Out>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for worker in 0..workers {
            let cursor = &cursor;
            let slots = &slots;
            let init = &init;
            let work = &work;
            scope.spawn(move || {
                let mut state = init(worker);
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs.len() {
                        break;
                    }
                    let out = work(&mut state, &jobs[i], i);
                    *slots[i].lock().expect("sweep result slot poisoned") = Some(out);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("sweep result slot poisoned")
                .expect("every job produces a result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_come_back_in_job_order() {
        let jobs: Vec<usize> = (0..100).collect();
        for workers in [1, 2, 8, 200] {
            let out = sweep(&jobs, workers, |_| (), |(), &j, i| (j, i));
            assert_eq!(out.len(), jobs.len());
            for (i, (job, index)) in out.iter().enumerate() {
                assert_eq!(*job, i);
                assert_eq!(*index, i);
            }
        }
    }

    #[test]
    fn empty_job_lists_are_fine() {
        let out: Vec<u32> = sweep(&[] as &[u8], 4, |_| (), |(), _, _| 1);
        assert!(out.is_empty());
    }

    #[test]
    fn per_worker_state_is_initialized_once_per_worker() {
        let inits = AtomicU64::new(0);
        let jobs: Vec<u32> = (0..64).collect();
        let out = sweep(
            &jobs,
            4,
            |worker| {
                inits.fetch_add(1, Ordering::Relaxed);
                worker
            },
            |worker, _, _| *worker,
        );
        assert!(inits.load(Ordering::Relaxed) <= 4);
        // Every job was handled by one of the workers.
        let seen: HashSet<usize> = out.into_iter().collect();
        assert!(seen.iter().all(|w| *w < 4));
    }

    #[test]
    fn single_worker_runs_inline_and_in_order() {
        let jobs: Vec<u32> = (0..10).collect();
        let mut order = Vec::new();
        // With one worker the closure runs on this thread, so it can borrow
        // local state mutably through a RefCell-free Mutex.
        let log = Mutex::new(&mut order);
        sweep(&jobs, 1, |_| (), |(), &j, _| log.lock().unwrap().push(j));
        assert_eq!(order, jobs);
    }

    #[test]
    fn default_jobs_is_at_least_one() {
        assert!(default_jobs() >= 1);
    }
}
