//! The async serving layer: a bounded request queue over shared engines.
//!
//! Split compilation's deployment story (Cohen & Rohou, DAC 2010) is that one
//! offline-compiled module serves *many* heterogeneous consumers, each paying
//! only the cheap online step. This module is the request front-end of that
//! story: clients — however many threads they live on — submit [`Request`]s
//! (`module × kernel × target × args`) into a **bounded MPMC work queue**, a
//! pool of worker threads drains it, and every distinct deployed module is
//! backed by **one shared [`ExecutionEngine`]**, deduplicated by module
//! fingerprint in a sharded registry. Concurrent requests for the same
//! module therefore share one compiled, deploy-time-prepared artifact per
//! (target, JIT options) pair — the engine's sharded, in-flight-deduplicated
//! cache guarantees exactly one online compilation however many requests
//! race on a cold pair.
//!
//! # Backpressure
//!
//! The queue is bounded ([`ServerConfig::queue_capacity`]). [`Server::submit`]
//! blocks until space frees up (so a fast producer is throttled to the pool's
//! drain rate instead of growing an unbounded backlog);
//! [`Server::try_submit`] never blocks and hands the request back in
//! [`SubmitError::QueueFull`] so the caller can shed load or retry.
//!
//! # Responses
//!
//! Every accepted request yields a [`ResponseHandle`] — a per-request
//! rendezvous channel (plain `mpsc`, no external async runtime) on which
//! exactly one [`Response`] arrives: the [`Execution`] outcome plus the
//! request's memory buffer, which travels *with* the request through the
//! queue and back, so serving moves no bytes it doesn't have to.
//!
//! # Shutdown
//!
//! [`Server::shutdown`] closes the queue to new submissions, wakes every
//! worker and blocked submitter, **drains all accepted work**, joins the
//! workers and returns the final [`ServerStats`]. An accepted request is
//! never dropped: its response arrives even if shutdown was requested while
//! it sat in the queue. Dropping the server performs the same graceful
//! shutdown.
//!
//! # Example
//!
//! ```
//! use splitc_minic::compile_source;
//! use splitc_jit::JitOptions;
//! use splitc_runtime::serve::{Request, ServeModule, Server, ServerConfig};
//! use splitc_targets::{MachineValue, TargetDesc};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let module = compile_source("fn triple(x: i32) -> i32 { return 3 * x; }", "k")?;
//! let module = ServeModule::new(module);
//! let server = Server::start(ServerConfig::default().with_workers(2));
//!
//! let handles: Vec<_> = (0..10)
//!     .map(|i| {
//!         server
//!             .submit(Request {
//!                 module: module.clone(),
//!                 kernel: "triple".into(),
//!                 target: TargetDesc::x86_sse(),
//!                 options: JitOptions::split(),
//!                 args: vec![MachineValue::Int(i)],
//!                 mem: vec![0u8; 64],
//!             })
//!             .expect("server is accepting")
//!     })
//!     .collect();
//! for (i, handle) in handles.into_iter().enumerate() {
//!     let response = handle.wait()?;
//!     let run = response.outcome?;
//!     assert_eq!(run.result, Some(MachineValue::Int(3 * i as i64)));
//! }
//!
//! let stats = server.shutdown();
//! assert_eq!(stats.completed, 10);
//! assert_eq!(stats.cache.compiles, 1, "ten requests share one compilation");
//! # Ok(())
//! # }
//! ```

use crate::engine::{CacheStats, EngineError, Execution, ExecutionEngine};
use splitc_jit::JitOptions;
use splitc_targets::{Fnv1a, FramePool, MachineValue, TargetDesc};
use splitc_vbc::{encode_module, Module};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TryRecvError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Number of independently locked shards in the module → engine registry.
///
/// Requests for different modules resolve their engines without contending
/// on one global lock; requests for the *same* module land on the same shard
/// and the same shared engine.
pub const ENGINE_SHARDS: usize = 8;

/// Fingerprint of a module's canonical wire encoding ([`Fnv1a`] over
/// [`encode_module`]).
///
/// Two modules with equal encodings — whatever their provenance — fingerprint
/// identically, which is exactly the equivalence the serving layer
/// deduplicates deployments by: byte-identical bytecode shares one engine,
/// one code cache, one compiled artifact per (target, options) pair. (The
/// registry additionally verifies the encoding bytes on every hit, so a
/// 64-bit collision between *different* modules fails loudly instead of
/// silently serving the wrong code.)
pub fn module_fingerprint(module: &Module) -> u64 {
    Fnv1a::hash(&encode_module(module))
}

/// A deployed module handle: the shared bytecode, its canonical wire
/// encoding and the encoding's fingerprint — all computed once at
/// deployment, so per-request submission never re-encodes the module.
///
/// Cloning is cheap (two [`Arc`] bumps and a copied `u64`); clients
/// typically deploy once and clone the handle into every request.
#[derive(Debug, Clone)]
pub struct ServeModule {
    module: Arc<Module>,
    encoded: Arc<[u8]>,
    fingerprint: u64,
}

impl ServeModule {
    /// Deploy `module` for serving, computing its fingerprint.
    pub fn new(module: Module) -> Self {
        ServeModule::from_arc(Arc::new(module))
    }

    /// Deploy an already-shared module without cloning it.
    pub fn from_arc(module: Arc<Module>) -> Self {
        let encoded: Arc<[u8]> = encode_module(&module).into();
        let fingerprint = Fnv1a::hash(&encoded);
        ServeModule {
            module,
            encoded,
            fingerprint,
        }
    }

    /// The fingerprint deployments are deduplicated by.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The deployed bytecode module.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// The deployed module as a shareable handle.
    pub fn module_arc(&self) -> Arc<Module> {
        Arc::clone(&self.module)
    }
}

/// One unit of client work: run `kernel` from `module` on `target`.
///
/// The request owns its memory buffer; it travels through the queue with the
/// request and comes back in the [`Response`], so the serving path never
/// copies kernel memory.
#[derive(Debug, Clone)]
pub struct Request {
    /// The deployed module to serve from.
    pub module: ServeModule,
    /// Kernel (function) name inside the module.
    pub kernel: String,
    /// The core to compile for and simulate on.
    pub target: TargetDesc,
    /// Online-compilation configuration.
    pub options: JitOptions,
    /// Argument values, in signature order.
    pub args: Vec<MachineValue>,
    /// The flat memory the kernel runs against (inputs prepared by the
    /// client; outputs read back from [`Response::mem`]).
    pub mem: Vec<u8>,
}

/// The answer to one [`Request`]: the execution outcome plus the request's
/// memory buffer, handed back so the client can read kernel outputs.
#[derive(Debug)]
pub struct Response {
    /// The run's measurements, or the engine error that stopped it.
    pub outcome: Result<Execution, EngineError>,
    /// The request's memory, after the kernel ran against it (unchanged if
    /// `outcome` is an error that prevented execution).
    pub mem: Vec<u8>,
    /// Index of the worker that served the request (diagnostic).
    pub worker: usize,
}

/// The serving thread disappeared before answering (a worker panicked).
///
/// Graceful [`Server::shutdown`] never produces this: accepted requests are
/// always drained and answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResponseLost;

impl fmt::Display for ResponseLost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "the serving worker disappeared before responding")
    }
}

impl Error for ResponseLost {}

/// A per-request rendezvous on which exactly one [`Response`] arrives.
#[derive(Debug)]
pub struct ResponseHandle {
    rx: Receiver<Response>,
}

impl ResponseHandle {
    /// Block until the response arrives.
    ///
    /// # Errors
    ///
    /// Returns [`ResponseLost`] if the serving worker died before answering.
    pub fn wait(self) -> Result<Response, ResponseLost> {
        self.rx.recv().map_err(|_| ResponseLost)
    }

    /// Poll for the response without blocking (`Ok(None)` = not ready yet).
    ///
    /// # Errors
    ///
    /// Returns [`ResponseLost`] if the serving worker died before answering.
    pub fn try_wait(&mut self) -> Result<Option<Response>, ResponseLost> {
        match self.rx.try_recv() {
            Ok(response) => Ok(Some(response)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(ResponseLost),
        }
    }
}

/// Why a submission was refused. The request is handed back in both cases so
/// the caller can retry, reroute or shed it.
#[derive(Debug)]
pub enum SubmitError {
    /// The bounded queue is at capacity ([`Server::try_submit`] only;
    /// blocking [`Server::submit`] waits instead).
    QueueFull(Box<Request>),
    /// The server is shutting down and accepts no new work.
    ShuttingDown(Box<Request>),
}

impl SubmitError {
    /// Recover the refused request.
    pub fn into_request(self) -> Request {
        match self {
            SubmitError::QueueFull(r) | SubmitError::ShuttingDown(r) => *r,
        }
    }
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull(_) => write!(f, "serving queue is full"),
            SubmitError::ShuttingDown(_) => write!(f, "server is shutting down"),
        }
    }
}

impl Error for SubmitError {}

/// Configuration of a [`Server`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Worker threads (0 = one per host core, the sweep `--jobs 0`
    /// convention).
    pub workers: usize,
    /// Bound on queued (accepted but not yet running) requests; clamped to
    /// at least 1. This is the backpressure knob: blocking submits throttle
    /// producers to the drain rate once the queue holds this many requests.
    pub queue_capacity: usize,
    /// Per-engine LRU bound on compiled (target, options) pairs
    /// ([`ExecutionEngine::set_cache_capacity`]); 0 = unbounded.
    pub cache_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 0,
            queue_capacity: 256,
            cache_capacity: 0,
        }
    }
}

impl ServerConfig {
    /// Same configuration with `workers` worker threads.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Same configuration with a queue bound of `capacity` requests.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Same configuration with a per-engine code-cache bound.
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }
}

/// Counters of a running (or finished) [`Server`].
///
/// `accepted`, `completed` and `rejected` are monotonic; after
/// [`Server::shutdown`] returns, `completed == accepted` — the
/// zero-loss-drain guarantee. The `cache` totals aggregate every engine's
/// *consistent* snapshot (see [`ExecutionEngine::snapshot`]): each engine's
/// contribution is internally torn-free, so `cache.lookups()` never
/// double- or half-counts a request's engine lookup.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerStats {
    /// Requests accepted into the queue.
    pub accepted: u64,
    /// Requests fully served (their response was produced).
    pub completed: u64,
    /// Non-blocking submissions refused because the queue was full.
    pub rejected: u64,
    /// Requests currently sitting in the queue.
    pub queue_depth: usize,
    /// Deepest the queue ever got — the backpressure high-water mark.
    pub queue_high_water: usize,
    /// Distinct deployed modules (shared engines) the server holds.
    pub engines: usize,
    /// Served-request counts per target name, sorted by name.
    pub per_target: Vec<(String, u64)>,
    /// Code-cache counters aggregated over every engine.
    pub cache: CacheStats,
    /// Online-compilation work units aggregated over every engine.
    pub online_work: u64,
}

impl ServerStats {
    /// Requests accepted but not yet served (queued or running).
    ///
    /// [`Server::stats`] orders its reads so `completed <= accepted` in
    /// every snapshot; the subtraction still saturates defensively for
    /// stats values assembled any other way.
    pub fn in_flight(&self) -> u64 {
        self.accepted.saturating_sub(self.completed)
    }
}

/// What a refused [`BoundedQueue::push`] hands back.
enum PushRefused<T> {
    /// At capacity (non-blocking pushes only).
    Full(T),
    /// The queue was closed.
    Closed(T),
}

struct QueueState<T> {
    items: VecDeque<T>,
    open: bool,
    high_water: usize,
    /// Items ever accepted, counted under the lock **with** the push that
    /// makes them visible — so an observer can never see a consumer finish
    /// an item before it was counted as accepted.
    accepted: u64,
}

/// A bounded multi-producer multi-consumer queue on one mutex and two
/// condvars — the vendored-deps-friendly core of the serving layer.
///
/// Closing stops *intake* only: pending items drain normally, then poppers
/// see `None`. That asymmetry is what makes graceful shutdown lossless.
struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                open: true,
                high_water: 0,
                accepted: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueue `item`. With `block`, waits for space; otherwise refuses a
    /// full queue immediately. Refusals hand the item back.
    fn push(&self, item: T, block: bool) -> Result<(), PushRefused<T>> {
        let mut state = self.state.lock().expect("serve queue poisoned");
        loop {
            if !state.open {
                return Err(PushRefused::Closed(item));
            }
            if state.items.len() < self.capacity {
                break;
            }
            if !block {
                return Err(PushRefused::Full(item));
            }
            state = self.not_full.wait(state).expect("serve queue poisoned");
        }
        state.items.push_back(item);
        state.high_water = state.high_water.max(state.items.len());
        state.accepted += 1;
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeue the oldest item, blocking while the queue is open but empty.
    /// Returns `None` only once the queue is closed *and* drained.
    fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("serve queue poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.not_full.notify_one();
                return Some(item);
            }
            if !state.open {
                return None;
            }
            state = self.not_empty.wait(state).expect("serve queue poisoned");
        }
    }

    /// Close the queue to new items and wake everyone blocked on it.
    fn close(&self) {
        self.state.lock().expect("serve queue poisoned").open = false;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    fn depth(&self) -> usize {
        self.state.lock().expect("serve queue poisoned").items.len()
    }

    fn high_water(&self) -> usize {
        self.state.lock().expect("serve queue poisoned").high_water
    }

    fn accepted(&self) -> u64 {
        self.state.lock().expect("serve queue poisoned").accepted
    }
}

/// A queued unit of work: the request plus its response rendezvous.
struct Job {
    request: Request,
    tx: SyncSender<Response>,
}

/// A registry entry: the engine plus the canonical encoding of the module it
/// was deployed from, kept so every fingerprint hit can be verified against
/// the actual bytes.
struct EngineEntry {
    encoded: Arc<[u8]>,
    engine: Arc<ExecutionEngine>,
}

/// State shared between the submission API and the worker pool.
struct Inner {
    queue: BoundedQueue<Job>,
    /// Module fingerprint → shared engine, sharded by fingerprint.
    engines: [Mutex<HashMap<u64, EngineEntry>>; ENGINE_SHARDS],
    cache_capacity: usize,
    completed: AtomicU64,
    rejected: AtomicU64,
    /// Served-request counts per target name, one map per worker so the hot
    /// loop never contends on a shared diagnostic counter; [`Server::stats`]
    /// merges them.
    per_target: Vec<Mutex<BTreeMap<String, u64>>>,
}

impl Inner {
    /// The shared engine for `module`, created on first sight. Racing
    /// requests for one fingerprint rendezvous on the registry shard's lock
    /// and share a single engine — creation is cheap (no compilation), so it
    /// happens under the lock.
    ///
    /// # Panics
    ///
    /// Panics if two modules with *different* encodings collide on one
    /// 64-bit fingerprint (probability ~2⁻⁶⁴ per pair): serving the wrong
    /// program silently would be far worse than failing loudly. The check is
    /// an `Arc` pointer comparison in the common case (clients clone one
    /// deployed handle) and a byte comparison otherwise.
    fn engine_for(&self, module: &ServeModule) -> Arc<ExecutionEngine> {
        let shard = &self.engines[(module.fingerprint() % ENGINE_SHARDS as u64) as usize];
        let mut guard = shard.lock().expect("engine registry shard poisoned");
        let entry = guard.entry(module.fingerprint()).or_insert_with(|| {
            let engine = ExecutionEngine::from_arc(module.module_arc());
            if self.cache_capacity > 0 {
                engine.set_cache_capacity(self.cache_capacity);
            }
            EngineEntry {
                encoded: Arc::clone(&module.encoded),
                engine: Arc::new(engine),
            }
        });
        assert!(
            Arc::ptr_eq(&entry.encoded, &module.encoded) || entry.encoded == module.encoded,
            "module fingerprint collision: two different modules hash to {:#018x}",
            module.fingerprint()
        );
        Arc::clone(&entry.engine)
    }
}

/// The serving front-end: a bounded request queue drained by a worker pool
/// over fingerprint-deduplicated shared engines.
///
/// See the [module documentation](self) for the full contract. The server is
/// `Send + Sync`; clients on any number of threads submit through `&self`.
pub struct Server {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    worker_count: usize,
}

impl fmt::Debug for Server {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Server")
            .field("workers", &self.worker_count)
            .field("queue_capacity", &self.inner.queue.capacity)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Start a server: spawn the worker pool and open the queue.
    pub fn start(config: ServerConfig) -> Self {
        let worker_count = if config.workers == 0 {
            crate::sweep::default_jobs()
        } else {
            config.workers
        };
        let inner = Arc::new(Inner {
            queue: BoundedQueue::new(config.queue_capacity),
            engines: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            cache_capacity: config.cache_capacity,
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            per_target: (0..worker_count)
                .map(|_| Mutex::new(BTreeMap::new()))
                .collect(),
        });
        let workers = (0..worker_count)
            .map(|worker| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("serve-{worker}"))
                    .spawn(move || worker_loop(&inner, worker))
                    .expect("cannot spawn serving worker")
            })
            .collect();
        Server {
            inner,
            workers: Mutex::new(workers),
            worker_count,
        }
    }

    /// The number of worker threads (a `workers: 0` request resolved to the
    /// host's core count).
    pub fn workers(&self) -> usize {
        self.worker_count
    }

    /// Submit a request, blocking while the queue is full.
    ///
    /// # Errors
    ///
    /// Returns [`SubmitError::ShuttingDown`] (with the request) once
    /// [`Server::shutdown`] has begun.
    pub fn submit(&self, request: Request) -> Result<ResponseHandle, SubmitError> {
        self.enqueue(request, true)
    }

    /// Submit a request without blocking.
    ///
    /// # Errors
    ///
    /// Returns [`SubmitError::QueueFull`] when the queue is at capacity
    /// (counted in [`ServerStats::rejected`]) or
    /// [`SubmitError::ShuttingDown`] once shutdown has begun; both hand the
    /// request back.
    pub fn try_submit(&self, request: Request) -> Result<ResponseHandle, SubmitError> {
        self.enqueue(request, false)
    }

    fn enqueue(&self, request: Request, block: bool) -> Result<ResponseHandle, SubmitError> {
        // Exactly one response ever crosses the channel, so a rendezvous
        // buffer of 1 means the worker's send never blocks — even if the
        // client dropped the handle without waiting.
        let (tx, rx) = mpsc::sync_channel(1);
        match self.inner.queue.push(Job { request, tx }, block) {
            // The queue counted the acceptance under its lock, atomically
            // with making the job visible to workers.
            Ok(()) => Ok(ResponseHandle { rx }),
            Err(PushRefused::Full(job)) => {
                self.inner.rejected.fetch_add(1, Ordering::Relaxed);
                Err(SubmitError::QueueFull(Box::new(job.request)))
            }
            Err(PushRefused::Closed(job)) => Err(SubmitError::ShuttingDown(Box::new(job.request))),
        }
    }

    /// Requests currently waiting in the queue.
    pub fn queue_depth(&self) -> usize {
        self.inner.queue.depth()
    }

    /// Current counters; safe to read while the pool is serving.
    pub fn stats(&self) -> ServerStats {
        let mut cache = CacheStats::default();
        let mut online_work = 0u64;
        let mut engines = 0usize;
        for shard in &self.inner.engines {
            let guard = shard.lock().expect("engine registry shard poisoned");
            engines += guard.len();
            for entry in guard.values() {
                let snap = entry.engine.snapshot();
                cache += snap.stats;
                online_work += snap.online_work;
            }
        }
        let mut per_target: BTreeMap<String, u64> = BTreeMap::new();
        for worker_counts in &self.inner.per_target {
            for (name, count) in worker_counts
                .lock()
                .expect("per-target counters poisoned")
                .iter()
            {
                *per_target.entry(name.clone()).or_insert(0) += count;
            }
        }
        // `completed` is read *before* `accepted`: both only grow and a job
        // is accepted (under the queue lock) before any worker can complete
        // it, so this order guarantees `completed <= accepted` in every
        // snapshot, however the reads race live workers.
        let completed = self.inner.completed.load(Ordering::Relaxed);
        ServerStats {
            accepted: self.inner.queue.accepted(),
            completed,
            rejected: self.inner.rejected.load(Ordering::Relaxed),
            queue_depth: self.inner.queue.depth(),
            queue_high_water: self.inner.queue.high_water(),
            engines,
            per_target: per_target.into_iter().collect(),
            cache,
            online_work,
        }
    }

    /// Gracefully shut down: refuse new submissions, drain every accepted
    /// request, join the workers and return the final counters
    /// (`completed == accepted` on return). Idempotent — later calls just
    /// return the final stats.
    ///
    /// # Panics
    ///
    /// Propagates a panic from a worker thread (which would also have lost
    /// that worker's in-flight response).
    pub fn shutdown(&self) -> ServerStats {
        self.inner.queue.close();
        // The worker-list lock is held across the joins, so a concurrent
        // shutdown (or drop) blocks here until the first caller's drain
        // finishes — every shutdown returns genuinely final counters.
        let mut workers = self.workers.lock().expect("worker list poisoned");
        for worker in workers.drain(..) {
            worker.join().expect("serving worker panicked");
        }
        drop(workers);
        self.stats()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // A dropped server still drains accepted work; clients that kept
        // their handles see every response. Unlike `shutdown()`, a worker
        // panic is *not* re-raised here: drop may itself run during an
        // unwind (e.g. the test that observed ResponseLost), and a second
        // panic would abort the process and mask the original one.
        self.inner.queue.close();
        if let Ok(mut workers) = self.workers.lock() {
            for worker in workers.drain(..) {
                let _ = worker.join();
            }
        }
    }
}

/// One worker: pull jobs until the queue is closed *and* drained, resolving
/// each request's shared engine by module fingerprint and recycling call
/// frames from a worker-held [`FramePool`] across every request it serves
/// (the same per-worker amortization the sweep pool uses).
fn worker_loop(inner: &Inner, worker: usize) {
    let mut pool = FramePool::new();
    while let Some(Job { request, tx }) = inner.queue.pop() {
        let Request {
            module,
            kernel,
            target,
            options,
            args,
            mut mem,
        } = request;
        {
            // This worker's own map: uncontended in steady state (only
            // `stats()` ever takes it from another thread), and no key
            // allocation once a target has been seen.
            let mut counts = inner.per_target[worker]
                .lock()
                .expect("per-target counters poisoned");
            if let Some(count) = counts.get_mut(&target.name) {
                *count += 1;
            } else {
                counts.insert(target.name.clone(), 1);
            }
        }
        let engine = inner.engine_for(&module);
        let outcome = engine.run_pooled(&target, &options, &kernel, &args, &mut mem, &mut pool);
        inner.completed.fetch_add(1, Ordering::Relaxed);
        // The client may have dropped its handle without waiting; a refused
        // send is not an error.
        let _ = tx.send(Response {
            outcome,
            mem,
            worker,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitc_minic::compile_source;

    fn triple_module() -> ServeModule {
        ServeModule::new(compile_source("fn triple(x: i32) -> i32 { return 3 * x; }", "k").unwrap())
    }

    fn triple_request(module: &ServeModule, x: i64) -> Request {
        Request {
            module: module.clone(),
            kernel: "triple".into(),
            target: TargetDesc::x86_sse(),
            options: JitOptions::split(),
            args: vec![MachineValue::Int(x)],
            mem: vec![0u8; 64],
        }
    }

    // --- BoundedQueue: deterministic backpressure semantics ---

    #[test]
    fn try_push_refuses_a_full_queue_and_hands_the_item_back() {
        let q = BoundedQueue::new(2);
        assert!(q.push(1u32, false).is_ok());
        assert!(q.push(2, false).is_ok());
        match q.push(3, false) {
            Err(PushRefused::Full(item)) => assert_eq!(item, 3),
            _ => panic!("a full queue must refuse non-blocking pushes"),
        }
        assert_eq!(q.depth(), 2);
        assert_eq!(q.high_water(), 2);
        // Draining makes room again, FIFO order preserved.
        assert_eq!(q.pop(), Some(1));
        assert!(q.push(3, false).is_ok());
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.high_water(), 2, "high water is a maximum, not a level");
    }

    #[test]
    fn blocking_push_waits_for_space_instead_of_refusing() {
        let q = Arc::new(BoundedQueue::new(1));
        assert!(q.push(10u32, true).is_ok());
        let qt = Arc::clone(&q);
        let pusher = std::thread::spawn(move || qt.push(20, true).is_ok());
        // The pusher can only finish after this pop frees a slot; if push
        // wrongly refused instead of blocking, the assert below catches the
        // missing item.
        assert_eq!(q.pop(), Some(10));
        assert!(pusher.join().unwrap());
        assert_eq!(q.pop(), Some(20));
    }

    #[test]
    fn close_refuses_intake_but_drains_pending_items() {
        let q = BoundedQueue::new(4);
        assert!(q.push(1u32, false).is_ok());
        assert!(q.push(2, false).is_ok());
        q.close();
        match q.push(3, true) {
            Err(PushRefused::Closed(item)) => assert_eq!(item, 3),
            _ => panic!("a closed queue must refuse even blocking pushes"),
        }
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None, "closed and drained");
        assert_eq!(q.pop(), None, "stays drained");
    }

    #[test]
    fn close_wakes_blocked_poppers() {
        let q = Arc::new(BoundedQueue::<u32>::new(1));
        let qt = Arc::clone(&q);
        let popper = std::thread::spawn(move || qt.pop());
        q.close();
        assert_eq!(popper.join().unwrap(), None);
    }

    // --- Server ---

    #[test]
    fn server_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Server>();
        assert_send_sync::<ServeModule>();
    }

    #[test]
    fn identical_modules_share_one_engine() {
        // Two *separately compiled* modules from one source: equal wire
        // encodings, equal fingerprints, one engine, one compilation.
        let a = triple_module();
        let b = triple_module();
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(
            module_fingerprint(a.module()),
            a.fingerprint(),
            "the standalone helper and the deployed handle agree"
        );
        let server = Server::start(ServerConfig::default().with_workers(2));
        let ha = server.submit(triple_request(&a, 1)).unwrap();
        let hb = server.submit(triple_request(&b, 2)).unwrap();
        assert_eq!(
            ha.wait().unwrap().outcome.unwrap().result,
            Some(MachineValue::Int(3))
        );
        assert_eq!(
            hb.wait().unwrap().outcome.unwrap().result,
            Some(MachineValue::Int(6))
        );
        let stats = server.shutdown();
        assert_eq!(stats.engines, 1, "byte-identical modules deduplicate");
        assert_eq!(stats.cache.compiles, 1);
        assert_eq!(stats.accepted, 2);
        assert_eq!(stats.completed, 2);
    }

    #[test]
    fn distinct_modules_get_distinct_engines() {
        let a = triple_module();
        let b = ServeModule::new(
            compile_source("fn triple(x: i32) -> i32 { return x * 3; }", "k").unwrap(),
        );
        assert_ne!(a.fingerprint(), b.fingerprint());
        let server = Server::start(ServerConfig::default().with_workers(1));
        server
            .submit(triple_request(&a, 5))
            .unwrap()
            .wait()
            .unwrap();
        server
            .submit(triple_request(&b, 5))
            .unwrap()
            .wait()
            .unwrap();
        let stats = server.shutdown();
        assert_eq!(stats.engines, 2);
        assert_eq!(stats.cache.compiles, 2);
    }

    #[test]
    fn submissions_after_shutdown_hand_the_request_back() {
        let module = triple_module();
        let server = Server::start(ServerConfig::default().with_workers(1));
        let stats = server.shutdown();
        assert_eq!(stats.accepted, 0);
        let err = server.submit(triple_request(&module, 7)).unwrap_err();
        match err {
            SubmitError::ShuttingDown(request) => {
                assert_eq!(request.kernel, "triple");
                assert_eq!(request.args, vec![MachineValue::Int(7)]);
            }
            SubmitError::QueueFull(_) => panic!("a closed queue is not a full queue"),
        }
        // try_submit refuses identically, and shutdown stays idempotent.
        assert!(matches!(
            server.try_submit(triple_request(&module, 8)),
            Err(SubmitError::ShuttingDown(_))
        ));
        assert_eq!(server.shutdown().accepted, 0);
    }

    #[test]
    fn unknown_kernels_come_back_as_engine_errors_with_the_memory() {
        let module = triple_module();
        let server = Server::start(ServerConfig::default().with_workers(1));
        let mut request = triple_request(&module, 1);
        request.kernel = "nope".into();
        request.mem = vec![0xaa; 32];
        let response = server.submit(request).unwrap().wait().unwrap();
        assert!(matches!(
            response.outcome,
            Err(EngineError::UnknownKernel(ref k)) if k == "nope"
        ));
        assert_eq!(
            response.mem,
            vec![0xaa; 32],
            "memory is returned either way"
        );
        let stats = server.shutdown();
        assert_eq!(stats.completed, 1, "failed requests still complete");
    }

    #[test]
    fn per_target_counts_and_queue_high_water_are_tracked() {
        let module = triple_module();
        let server = Server::start(ServerConfig::default().with_workers(2));
        let mut handles = Vec::new();
        for i in 0..6 {
            let mut request = triple_request(&module, i);
            if i % 2 == 0 {
                request.target = TargetDesc::powerpc();
            }
            handles.push(server.submit(request).unwrap());
        }
        for handle in handles {
            handle.wait().unwrap().outcome.unwrap();
        }
        let stats = server.shutdown();
        assert_eq!(stats.per_target.len(), 2);
        assert_eq!(
            stats.per_target.iter().map(|(_, c)| c).sum::<u64>(),
            stats.completed
        );
        assert!(stats
            .per_target
            .iter()
            .any(|(t, c)| t == "powerpc" && *c == 3));
        assert!(stats
            .per_target
            .iter()
            .any(|(t, c)| t == "x86-sse" && *c == 3));
        assert!(stats.queue_high_water >= 1);
        assert_eq!(stats.queue_depth, 0);
        assert_eq!(stats.rejected, 0);
    }

    #[test]
    fn dropping_the_server_drains_accepted_work() {
        let module = triple_module();
        let handle;
        {
            let server = Server::start(ServerConfig::default().with_workers(1));
            handle = server.submit(triple_request(&module, 9)).unwrap();
            // `server` drops here without an explicit shutdown.
        }
        let response = handle.wait().expect("drop drains, never discards");
        assert_eq!(
            response.outcome.unwrap().result,
            Some(MachineValue::Int(27))
        );
    }

    #[test]
    fn zero_workers_resolves_to_the_host_core_count() {
        let server = Server::start(ServerConfig::default());
        assert_eq!(server.workers(), crate::sweep::default_jobs());
        server.shutdown();
    }
}
