//! The serving tier: sharded intake, continuous batching, shared engines.
//!
//! Split compilation's deployment story (Cohen & Rohou, DAC 2010) is that one
//! offline-compiled module serves *many* heterogeneous consumers, each paying
//! only the cheap online step. This module is the request front-end of that
//! story, shaped like a production inference/serving tier:
//!
//! * **Sharded intake.** Clients submit [`Request`]s into a bounded MPMC
//!   queue made of per-worker shards: submitters are routed by batch key and
//!   reserve capacity on one atomic, so they never contend on a global queue
//!   mutex; workers drain their home shard first and **steal** from other
//!   shards when it runs dry. The global bound, the backpressure semantics
//!   ([`Server::submit`] blocks, [`Server::try_submit`] hands the request
//!   back) and lossless draining shutdown are exactly those of the original
//!   single-queue design.
//! * **Continuous batching.** A worker that pops a job also drains every
//!   queued request with the same *batch key* — `(module fingerprint, target
//!   fingerprint, JitOptions)` — up to [`ServerConfig::max_batch`], and runs
//!   the whole batch against one shared engine with **one compiled-program
//!   fetch and one [`FramePool`]**. Each request is still simulated
//!   individually through the very same execution path an unbatched run
//!   uses, so every [`Response`] is bit-identical to unbatched execution;
//!   batching only amortizes the cache lookup and the frame-pool warmup.
//! * **Latency observability.** Every job is stamped at accept, dequeue and
//!   completion. Queue-wait and execute times are recorded into fixed-bucket
//!   log-scale [`Histogram`]s (constant-time, allocation-free on the hot
//!   path), one set per worker, merged on demand: [`ServerStats`] reports
//!   p50/p99/p999 for both phases plus the batch-size distribution.
//!
//! Every distinct deployed module is backed by **one shared
//! [`ExecutionEngine`]**, deduplicated by module fingerprint in a sharded
//! registry; the engine's in-flight-deduplicated cache guarantees exactly one
//! online compilation per (target, options) pair however many requests race
//! on a cold pair.
//!
//! # Fault tolerance
//!
//! Failure is a first-class input to the serving tier, handled in four
//! layers (checked in this order for every request):
//!
//! * **Deadlines + cooperative cancellation.** A [`Request`] may carry an
//!   absolute [`Request::deadline`]. Requests whose deadline passed while
//!   they sat in the queue are **shed at dequeue** — counted in
//!   [`ServerStats::expired`], answered with
//!   [`EngineError::DeadlineExceeded`], and *not* counted as completed (the
//!   drain invariant becomes `accepted == completed + expired`). A request
//!   whose deadline passes **mid-execution** is cancelled cooperatively: a
//!   deadline-watchdog thread flips a token the executor polls at region
//!   boundaries, the runaway kernel stops within one basic block, the
//!   worker is freed, and the client is answered with `DeadlineExceeded`
//!   (counted as completed and in [`ServerStats::cancelled`]).
//! * **Retries.** Transient failures — panics, [`EngineError::Transient`] —
//!   are retried up to [`RetryPolicy::max_retries`] times with bounded
//!   exponential backoff and *deterministic* jitter (derived from the
//!   server seed, the request tag and the attempt number). Semantic errors
//!   (traps, unknown kernels, JIT rejections) are never retried. Each
//!   [`Response`] stamps how many attempts it took
//!   ([`Response::attempts`]); the per-request attempt distribution lands
//!   in [`ServerStats::retry_attempts`].
//! * **Circuit breakers.** Failures are tracked per batch key
//!   `(module fingerprint, target fingerprint, options)`. After
//!   [`BreakerPolicy::failure_threshold`] *consecutive* infrastructure
//!   failures the key **opens**: its cached compile is evicted from the
//!   engine (a poisoned artifact is never served again), and requests for
//!   it either **fail fast** with [`EngineError::CircuitOpen`] or — when
//!   [`ServerConfig::fallback`] names a degradation target — are rerouted
//!   there and marked [`Response::degraded`]. After a cooldown measured on
//!   the server's logical completion clock, one request **half-opens** the
//!   key as a probe; success closes it, failure re-opens it. All
//!   transitions are counted ([`ServerStats::breaker_opened`] /
//!   `breaker_half_opened` / `breaker_closed`).
//! * **Deterministic fault injection.** A seeded [`FaultPlan`] threaded
//!   through [`ServerConfig::faults`] fires compile panics, execute panics,
//!   artificial latency or spurious transient errors at named sites, chosen
//!   by request tag or seeded probability — so a chaos soak can prove the
//!   exactly-once and bit-identity guarantees *under* failure, not just in
//!   fair weather.
//!
//! # Backpressure
//!
//! The queue is bounded ([`ServerConfig::queue_capacity`], a *global* bound
//! across all shards). [`Server::submit`] blocks until space frees up (so a
//! fast producer is throttled to the pool's drain rate instead of growing an
//! unbounded backlog); [`Server::try_submit`] never blocks and hands the
//! request back in [`SubmitError::QueueFull`] so the caller can shed load or
//! retry. Refusals are counted: full-queue refusals in
//! [`ServerStats::rejected`], shutdown-time refusals in
//! [`ServerStats::rejected_shutdown`] — so `accepted + rejected +
//! rejected_shutdown` always equals submission attempts, even across a
//! shutdown race.
//!
//! # Responses
//!
//! Every accepted request yields a [`ResponseHandle`] — a per-request
//! rendezvous channel (plain `mpsc`, no external async runtime) on which
//! exactly one [`Response`] arrives: the [`Execution`] outcome plus the
//! request's memory buffer, which travels *with* the request through the
//! queue and back, so serving moves no bytes it doesn't have to. Responses
//! also carry the request's measured queue-wait and execute times and the
//! size of the batch it was served in.
//!
//! # Shutdown and worker panics
//!
//! [`Server::shutdown`] closes the queue to new submissions, wakes every
//! worker and blocked submitter, **drains all accepted work**, joins the
//! workers and returns the final [`ServerStats`]. An accepted request is
//! never dropped: its response arrives even if shutdown was requested while
//! it sat in the queue. Dropping the server performs the same graceful
//! shutdown.
//!
//! The worker loop is panic-safe: a panic during kernel execution is caught,
//! the worker's frame pool is discarded (its recycled frames may be
//! mid-mutation), and the client receives [`EngineError::Panicked`] instead
//! of a dead channel. The worker itself keeps serving, so `completed +
//! expired == accepted` holds at shutdown even when kernels misbehave.
//!
//! # Example
//!
//! ```
//! use splitc_minic::compile_source;
//! use splitc_jit::JitOptions;
//! use splitc_runtime::serve::{Request, ServeModule, Server, ServerConfig};
//! use splitc_targets::{MachineValue, TargetDesc};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let module = compile_source("fn triple(x: i32) -> i32 { return 3 * x; }", "k")?;
//! let module = ServeModule::new(module);
//! let server = Server::start(ServerConfig::default().with_workers(2));
//!
//! let handles: Vec<_> = (0..10)
//!     .map(|i| {
//!         server
//!             .submit(Request {
//!                 module: module.clone(),
//!                 kernel: "triple".into(),
//!                 target: TargetDesc::x86_sse(),
//!                 options: JitOptions::split(),
//!                 args: vec![MachineValue::Int(i)],
//!                 mem: vec![0u8; 64],
//!                 deadline: None,
//!                 tag: i as u64,
//!             })
//!             .expect("server is accepting")
//!     })
//!     .collect();
//! for (i, handle) in handles.into_iter().enumerate() {
//!     let response = handle.wait()?;
//!     let run = response.outcome?;
//!     assert_eq!(run.result, Some(MachineValue::Int(3 * i as i64)));
//! }
//!
//! let stats = server.shutdown();
//! assert_eq!(stats.completed, 10);
//! assert_eq!(stats.cache.compiles, 1, "ten requests share one compilation");
//! assert_eq!(stats.queue_wait.count(), 10, "every request's wait was timed");
//! # Ok(())
//! # }
//! ```

use crate::engine::{CacheStats, CompiledModule, EngineError, Execution, ExecutionEngine};
use crate::hist::Histogram;
use splitc_jit::JitOptions;
use splitc_targets::{Fnv1a, FramePool, MachineValue, SimError, TargetDesc};
use splitc_vbc::{encode_module, Module};
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, BinaryHeap, HashMap, VecDeque};
use std::error::Error;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TryRecvError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Number of independently locked shards in the module → engine registry.
///
/// Requests for different modules resolve their engines without contending
/// on one global lock; requests for the *same* module land on the same shard
/// and the same shared engine.
pub const ENGINE_SHARDS: usize = 8;

/// Fingerprint of a module's canonical wire encoding ([`Fnv1a`] over
/// [`encode_module`]).
///
/// Two modules with equal encodings — whatever their provenance — fingerprint
/// identically, which is exactly the equivalence the serving layer
/// deduplicates deployments by: byte-identical bytecode shares one engine,
/// one code cache, one compiled artifact per (target, options) pair. (The
/// registry additionally verifies the encoding bytes on every hit, so a
/// 64-bit collision between *different* modules fails loudly instead of
/// silently serving the wrong code.)
pub fn module_fingerprint(module: &Module) -> u64 {
    Fnv1a::hash(&encode_module(module))
}

/// A deployed module handle: the shared bytecode, its canonical wire
/// encoding and the encoding's fingerprint — all computed once at
/// deployment, so per-request submission never re-encodes the module.
///
/// Cloning is cheap (two [`Arc`] bumps and a copied `u64`); clients
/// typically deploy once and clone the handle into every request.
#[derive(Debug, Clone)]
pub struct ServeModule {
    module: Arc<Module>,
    encoded: Arc<[u8]>,
    fingerprint: u64,
}

impl ServeModule {
    /// Deploy `module` for serving, computing its fingerprint.
    pub fn new(module: Module) -> Self {
        ServeModule::from_arc(Arc::new(module))
    }

    /// Deploy an already-shared module without cloning it.
    pub fn from_arc(module: Arc<Module>) -> Self {
        let encoded: Arc<[u8]> = encode_module(&module).into();
        let fingerprint = Fnv1a::hash(&encoded);
        ServeModule {
            module,
            encoded,
            fingerprint,
        }
    }

    /// The fingerprint deployments are deduplicated by.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The deployed bytecode module.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// The deployed module as a shareable handle.
    pub fn module_arc(&self) -> Arc<Module> {
        Arc::clone(&self.module)
    }
}

/// One unit of client work: run `kernel` from `module` on `target`.
///
/// The request owns its memory buffer; it travels through the queue with the
/// request and comes back in the [`Response`], so the serving path never
/// copies kernel memory.
#[derive(Debug, Clone)]
pub struct Request {
    /// The deployed module to serve from.
    pub module: ServeModule,
    /// Kernel (function) name inside the module.
    pub kernel: String,
    /// The core to compile for and simulate on.
    pub target: TargetDesc,
    /// Online-compilation configuration.
    pub options: JitOptions,
    /// Argument values, in signature order.
    pub args: Vec<MachineValue>,
    /// The flat memory the kernel runs against (inputs prepared by the
    /// client; outputs read back from [`Response::mem`]).
    pub mem: Vec<u8>,
    /// Optional absolute deadline. A request whose deadline passes while it
    /// is queued is shed at dequeue (counted in [`ServerStats::expired`],
    /// answered [`EngineError::DeadlineExceeded`]); one whose deadline
    /// passes mid-execution is cancelled cooperatively at the next region
    /// boundary and answered the same way (counted as completed, plus
    /// [`ServerStats::cancelled`]). `None` means the request never expires.
    pub deadline: Option<Instant>,
    /// Client-assigned request tag. Deterministic machinery keys off it:
    /// retry-backoff jitter and every [`FaultPlan`] selector are pure
    /// functions of (seed, tag, attempt), so a replayed request stream
    /// makes identical decisions. Pick the request index when generating
    /// load; 0 is fine for ad-hoc requests.
    pub tag: u64,
}

/// The answer to one [`Request`]: the execution outcome plus the request's
/// memory buffer, handed back so the client can read kernel outputs, and the
/// request's measured serving latency.
#[derive(Debug)]
pub struct Response {
    /// The run's measurements, or the engine error that stopped it.
    pub outcome: Result<Execution, EngineError>,
    /// The request's memory, after the kernel ran against it (unchanged if
    /// `outcome` is an error that prevented execution).
    pub mem: Vec<u8>,
    /// Index of the worker that served the request (diagnostic).
    pub worker: usize,
    /// Wall-clock nanoseconds the request spent queued (accept → dequeue).
    pub queue_wait_ns: u64,
    /// Wall-clock nanoseconds spent serving the request after dequeue
    /// (0 for requests refused before execution, e.g. unknown kernels).
    pub execute_ns: u64,
    /// Size of the batch this request was served in (≥ 1).
    pub batch: usize,
    /// Execution attempts this response took: 1 for a clean first run,
    /// `1 + retries` when transient failures were retried, 0 when the
    /// request never reached execution (expired in the queue, unknown
    /// kernel, or failed fast on an open breaker).
    pub attempts: u32,
    /// `true` when the request was rerouted to the server's configured
    /// [`ServerConfig::fallback`] target because its own key's circuit
    /// breaker was open. The outcome (and memory) came from the fallback
    /// target — graceful degradation, not the requested core.
    pub degraded: bool,
}

/// The serving thread disappeared before answering.
///
/// Graceful [`Server::shutdown`] never produces this: accepted requests are
/// always drained and answered — even a panicking kernel answers with
/// [`EngineError::Panicked`] rather than losing the response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResponseLost;

impl fmt::Display for ResponseLost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "the serving worker disappeared before responding")
    }
}

impl Error for ResponseLost {}

/// A per-request rendezvous on which exactly one [`Response`] arrives.
#[derive(Debug)]
pub struct ResponseHandle {
    rx: Receiver<Response>,
}

impl ResponseHandle {
    /// Block until the response arrives.
    ///
    /// # Errors
    ///
    /// Returns [`ResponseLost`] if the serving worker died before answering.
    pub fn wait(self) -> Result<Response, ResponseLost> {
        self.rx.recv().map_err(|_| ResponseLost)
    }

    /// Poll for the response without blocking (`Ok(None)` = not ready yet).
    ///
    /// # Errors
    ///
    /// Returns [`ResponseLost`] if the serving worker died before answering.
    pub fn try_wait(&mut self) -> Result<Option<Response>, ResponseLost> {
        match self.rx.try_recv() {
            Ok(response) => Ok(Some(response)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(ResponseLost),
        }
    }
}

/// Why a submission was refused. The request is handed back in both cases so
/// the caller can retry, reroute or shed it.
#[derive(Debug)]
pub enum SubmitError {
    /// The bounded queue is at capacity ([`Server::try_submit`] only;
    /// blocking [`Server::submit`] waits instead). Counted in
    /// [`ServerStats::rejected`].
    QueueFull(Box<Request>),
    /// The server is shutting down and accepts no new work. Counted in
    /// [`ServerStats::rejected_shutdown`].
    ShuttingDown(Box<Request>),
}

impl SubmitError {
    /// Recover the refused request.
    pub fn into_request(self) -> Request {
        match self {
            SubmitError::QueueFull(r) | SubmitError::ShuttingDown(r) => *r,
        }
    }
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull(_) => write!(f, "serving queue is full"),
            SubmitError::ShuttingDown(_) => write!(f, "server is shutting down"),
        }
    }
}

impl Error for SubmitError {}

/// Retry policy for transient failures (panics, [`EngineError::Transient`]).
///
/// Semantic errors — traps, unknown kernels, JIT rejections, deadline
/// expiry — are **never** retried: re-running a deterministic failure only
/// burns worker time. Backoff is bounded exponential with deterministic
/// jitter: attempt `k` sleeps in `[b/2, b]` where
/// `b = min(max_backoff_ns, base_backoff_ns << (k-1))` and the point inside
/// the band is a pure function of (server seed, request tag, attempt) — so
/// a replayed request stream backs off identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 disables retrying).
    pub max_retries: u32,
    /// Backoff before the first retry, nanoseconds.
    pub base_backoff_ns: u64,
    /// Backoff ceiling, nanoseconds.
    pub max_backoff_ns: u64,
}

impl Default for RetryPolicy {
    /// Two retries, 50 µs base, 1 ms cap — enough to clear one-shot
    /// transients without a misbehaving key stalling its worker.
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            base_backoff_ns: 50_000,
            max_backoff_ns: 1_000_000,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        }
    }
}

/// Circuit-breaker policy, applied per batch key `(module fingerprint,
/// target fingerprint, options)`.
///
/// A key's breaker opens after `failure_threshold` *consecutive*
/// infrastructure failures (panics, transients, JIT errors — final outcomes,
/// after retries; semantic errors don't count). While open, requests for the
/// key fail fast with [`EngineError::CircuitOpen`] — or degrade to
/// [`ServerConfig::fallback`] when one is configured — and the key's cached
/// compile is evicted from its engine so a poisoned artifact is never served
/// again. After `cooldown` ticks of the server's logical completion clock
/// (each completed request is one tick), the next request half-opens the key
/// as a probe: success closes it, failure re-opens it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerPolicy {
    /// Consecutive failures that open a key; 0 disables breakers entirely.
    pub failure_threshold: u32,
    /// Logical ticks (completed requests, server-wide) an open key waits
    /// before half-opening. A logical clock keeps recovery deterministic
    /// under load instead of racing wall time.
    pub cooldown: u64,
}

impl Default for BreakerPolicy {
    /// Open after 8 consecutive failures, probe after 256 completions.
    fn default() -> Self {
        BreakerPolicy {
            failure_threshold: 8,
            cooldown: 256,
        }
    }
}

/// Where a [`FaultRule`] fires along the serving path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// While resolving the compiled program (the online step).
    Compile,
    /// While executing the kernel.
    Execute,
}

/// What an injected fault does.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Panic (caught by the worker's panic guard, answered
    /// [`EngineError::Panicked`] — retryable, breaker-tripping).
    Panic,
    /// Spurious [`EngineError::Transient`] (retryable, breaker-tripping),
    /// injected without running the kernel.
    Transient,
    /// Sleep this many nanoseconds, then proceed normally. Results stay
    /// bit-identical — latency faults only stress deadlines and queues.
    Latency(u64),
}

/// Which requests a [`FaultRule`] selects, as a pure function of
/// `(plan seed, rule index, request tag)` — deterministic and replayable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultSelector {
    /// Fires for tags `t` in `[lo, hi)` with `t % modulo == remainder`.
    /// The window selects a phase of the run, the modulo a slice of the
    /// traffic (e.g. exactly one round-robin template).
    Slot {
        /// Tag stride (0 never fires).
        modulo: u64,
        /// Selected residue class.
        remainder: u64,
        /// Inclusive window start.
        lo: u64,
        /// Exclusive window end.
        hi: u64,
    },
    /// Fires with this probability, decided by a seeded hash of the tag.
    Probability(f64),
}

impl FaultSelector {
    /// Every tag in `[lo, hi)`.
    pub fn tag_range(lo: u64, hi: u64) -> Self {
        FaultSelector::Slot {
            modulo: 1,
            remainder: 0,
            lo,
            hi,
        }
    }

    /// Every `n`-th tag (tags divisible by `n`).
    pub fn every_nth(n: u64) -> Self {
        FaultSelector::Slot {
            modulo: n,
            remainder: 0,
            lo: 0,
            hi: u64::MAX,
        }
    }
}

/// One injected fault: what fires, where, and for which requests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRule {
    /// Pipeline stage the fault fires at.
    pub site: FaultSite,
    /// What the fault does.
    pub kind: FaultKind,
    /// Which requests it selects.
    pub selector: FaultSelector,
    /// `true`: fires on every attempt of a selected request (a *persistent*
    /// fault — this is what drives breakers open). `false`: fires on the
    /// first attempt only, so a retry clears it (a *transient* fault).
    pub persistent: bool,
}

/// A deterministic, seeded fault-injection plan.
///
/// Threaded through [`ServerConfig::faults`]; every decision is a pure
/// function of `(seed, rule index, request tag, attempt)`, so a chaos soak
/// replayed with the same seed and tags injects byte-for-byte the same
/// faults — which is what lets the soak assert bit-identity *under* fire.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed for probabilistic selectors.
    pub seed: u64,
    /// Rules, checked in order; the first rule matching (site, tag,
    /// attempt) fires.
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan under `seed` (add rules with [`FaultPlan::with_rule`]).
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// This plan with `rule` appended.
    pub fn with_rule(mut self, rule: FaultRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// The fault to inject at `site` for `(tag, attempt)`, if any.
    fn at(&self, site: FaultSite, tag: u64, attempt: u32) -> Option<FaultKind> {
        self.rules
            .iter()
            .enumerate()
            .filter(|(_, r)| r.site == site && (r.persistent || attempt == 0))
            .find(|(i, r)| self.selects(*i, r.selector, tag))
            .map(|(_, r)| r.kind)
    }

    fn selects(&self, rule_idx: usize, selector: FaultSelector, tag: u64) -> bool {
        match selector {
            FaultSelector::Slot {
                modulo,
                remainder,
                lo,
                hi,
            } => modulo > 0 && tag >= lo && tag < hi && tag % modulo == remainder,
            FaultSelector::Probability(p) => {
                let h = splitmix64(
                    self.seed ^ (rule_idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ tag,
                );
                // 53 uniform mantissa bits → a fraction in [0, 1).
                ((h >> 11) as f64 / (1u64 << 53) as f64) < p
            }
        }
    }
}

/// Configuration of a [`Server`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServerConfig {
    /// Worker threads (0 = one per host core, the sweep `--jobs 0`
    /// convention).
    pub workers: usize,
    /// Global bound on queued (accepted but not yet running) requests across
    /// all intake shards; clamped to at least 1. This is the backpressure
    /// knob: blocking submits throttle producers to the drain rate once the
    /// queue holds this many requests.
    pub queue_capacity: usize,
    /// Per-engine LRU bound on compiled (target, options) pairs
    /// ([`ExecutionEngine::set_cache_capacity`]); 0 = unbounded.
    pub cache_capacity: usize,
    /// Most requests a worker serves as one continuous batch (same module,
    /// target and options; one program fetch, one frame pool); clamped to at
    /// least 1. 1 disables batching.
    pub max_batch: usize,
    /// Retry policy for transient failures.
    pub retry: RetryPolicy,
    /// Circuit-breaker policy (per batch key).
    pub breaker: BreakerPolicy,
    /// Graceful-degradation target: when a key's breaker is open, its
    /// requests are served on this target instead of failing fast, and the
    /// response is marked [`Response::degraded`]. `None` fails fast.
    pub fallback: Option<TargetDesc>,
    /// Deterministic fault-injection plan (chaos testing); `None` serves
    /// clean.
    pub faults: Option<FaultPlan>,
    /// Server seed, the deterministic root of retry-backoff jitter.
    pub seed: u64,
    /// Persistent artifact store shared by every engine this server creates
    /// (keyed per module by its fingerprint, which the serving tier already
    /// holds — no re-encoding). `None` keeps compilation process-local.
    pub store: Option<Arc<crate::ArtifactStore>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 0,
            queue_capacity: 256,
            cache_capacity: 0,
            max_batch: 16,
            retry: RetryPolicy::default(),
            breaker: BreakerPolicy::default(),
            fallback: None,
            faults: None,
            seed: 0,
            store: None,
        }
    }
}

impl ServerConfig {
    /// Same configuration with `workers` worker threads.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Same configuration with a queue bound of `capacity` requests.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Same configuration with a per-engine code-cache bound.
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Same configuration with a continuous-batching bound.
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch;
        self
    }

    /// Same configuration with this retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Same configuration with this circuit-breaker policy.
    pub fn with_breaker(mut self, breaker: BreakerPolicy) -> Self {
        self.breaker = breaker;
        self
    }

    /// Same configuration with a graceful-degradation fallback target.
    pub fn with_fallback(mut self, fallback: TargetDesc) -> Self {
        self.fallback = Some(fallback);
        self
    }

    /// Same configuration with a fault-injection plan installed.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Same configuration with this deterministic seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Same configuration with a persistent artifact store attached.
    pub fn with_store(mut self, store: Arc<crate::ArtifactStore>) -> Self {
        self.store = Some(store);
        self
    }
}

/// Counters of a running (or finished) [`Server`].
///
/// `accepted`, `completed`, `expired`, `rejected` and `rejected_shutdown`
/// are monotonic; after [`Server::shutdown`] returns, `accepted ==
/// completed + expired` — the zero-loss-drain guarantee (every accepted
/// request was answered: served, or shed at dequeue with
/// [`EngineError::DeadlineExceeded`]). Every snapshot is internally
/// consistent: `completed` and `expired` are read *before* the queue's
/// single-lock snapshot supplies `accepted` and `queue_depth`, so
/// `completed + expired + queue_depth <= accepted` holds in every
/// [`Server::stats`] result, however the reads race live workers. The
/// `cache` totals aggregate every engine's *consistent* snapshot (see
/// [`ExecutionEngine::snapshot`]): each engine's contribution is internally
/// torn-free, so `cache.lookups()` never double- or half-counts a request's
/// engine lookup.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerStats {
    /// Requests accepted into the queue.
    pub accepted: u64,
    /// Requests fully served (their response was produced).
    pub completed: u64,
    /// Non-blocking submissions refused because the queue was full.
    pub rejected: u64,
    /// Submissions refused because shutdown had begun.
    pub rejected_shutdown: u64,
    /// Requests currently sitting in the queue.
    pub queue_depth: usize,
    /// Deepest the queue ever got — the backpressure high-water mark.
    pub queue_high_water: usize,
    /// Distinct deployed modules (shared engines) the server holds.
    pub engines: usize,
    /// Served-request counts per target name, sorted by name. A request is
    /// counted when its response is produced, so this always sums to
    /// `completed` — never to work merely started.
    pub per_target: Vec<(String, u64)>,
    /// Code-cache counters aggregated over every engine.
    pub cache: CacheStats,
    /// Online-compilation work units aggregated over every engine.
    pub online_work: u64,
    /// Distribution of time requests spent queued (accept → dequeue), in
    /// nanoseconds.
    pub queue_wait: Histogram,
    /// Distribution of time requests spent executing after dequeue, in
    /// nanoseconds.
    pub execute: Histogram,
    /// Distribution of served batch sizes (one sample per batch, counting
    /// only requests that actually executed — expired requests shed from a
    /// batch are not in it); `batch_sizes.sum()` equals `completed`.
    pub batch_sizes: Histogram,
    /// Requests shed at dequeue because their deadline had already passed
    /// (answered [`EngineError::DeadlineExceeded`], **not** counted in
    /// `completed`): `accepted == completed + expired` after shutdown.
    pub expired: u64,
    /// Requests cancelled cooperatively mid-execution by their deadline
    /// (answered [`EngineError::DeadlineExceeded`]; a subset of
    /// `completed` — the worker was freed, the books still balance).
    pub cancelled: u64,
    /// Total retry attempts across all requests (attempts beyond each
    /// request's first).
    pub retried: u64,
    /// Requests rerouted to the fallback target because their key's
    /// breaker was open (a subset of `completed`).
    pub degraded: u64,
    /// Requests answered [`EngineError::CircuitOpen`] without executing
    /// (open breaker, no fallback configured; a subset of `completed`).
    pub failed_fast: u64,
    /// Circuit-breaker keys opened (including re-opens after a failed
    /// half-open probe).
    pub breaker_opened: u64,
    /// Open keys that half-opened for a probe after their cooldown.
    pub breaker_half_opened: u64,
    /// Half-open keys closed by a successful probe.
    pub breaker_closed: u64,
    /// Faults injected by the configured [`FaultPlan`] (every firing,
    /// including on retries).
    pub faults_injected: u64,
    /// Distribution of per-request execution attempts, one sample per
    /// completed request (0 for requests that never executed — fail-fast
    /// and unknown kernels; `retry_attempts.count() == completed`).
    pub retry_attempts: Histogram,
}

impl ServerStats {
    /// Requests accepted but not yet answered (queued or running).
    ///
    /// [`Server::stats`] orders its reads so `completed + expired <=
    /// accepted` in every snapshot; the subtraction still saturates
    /// defensively for stats values assembled any other way.
    pub fn in_flight(&self) -> u64 {
        self.accepted
            .saturating_sub(self.completed)
            .saturating_sub(self.expired)
    }
}

/// What a refused [`ShardedQueue::push`] hands back.
enum PushRefused<T> {
    /// At capacity (non-blocking pushes only).
    Full(T),
    /// The queue was closed.
    Closed(T),
}

/// One intake shard: a plain FIFO plus the count of items ever accepted
/// into it. `accepted` is incremented under the shard lock **with** the push
/// that makes the item visible, so a snapshot holding all shard locks can
/// never see a consumer finish an item before it was counted as accepted.
struct QueueShard<T> {
    items: VecDeque<T>,
    accepted: u64,
}

/// A consistent single-acquisition view of the queue's counters (all shard
/// locks held at once): `high_water >= depth` and — combined with a
/// `completed` value read beforehand — `completed + depth <= accepted`.
struct QueueSnapshot {
    depth: usize,
    accepted: u64,
    high_water: usize,
}

/// A bounded MPMC queue sharded into per-worker FIFOs with work stealing —
/// the vendored-deps-friendly core of the serving tier.
///
/// Capacity is a *global* bound enforced by one atomic reservation counter,
/// so submitters to different shards never serialize on a common mutex; the
/// only mutexes are per-shard (touched once per push/pop) and a `gate` that
/// guards slow-path parking only.
///
/// Closing stops *intake* only: pending items drain normally, then poppers
/// see `false`. That asymmetry is what makes graceful shutdown lossless.
///
/// # Why no wakeup is ever lost
///
/// Fast paths never touch the gate. The slow paths use an epoch protocol:
/// every committed push bumps `pushes` *after* its insert, then checks
/// `sleepers`; a popper that found every shard empty increments `sleepers`
/// under the gate *before* re-reading the epoch. All counters are `SeqCst`,
/// so for any push a sleepy popper's scan missed, either the popper's epoch
/// re-read sees the bump (and rescans) or the pusher's `sleepers` read sees
/// the popper (and notifies — under the gate the popper holds until it
/// parks, so the notification cannot slip between check and wait).
///
/// Exit is just as careful: a popper returns `false` only when the queue is
/// closed, a full scan found nothing, the epoch is unchanged since before
/// that scan **and** the reservation counter is zero — so a push that
/// reserved capacity before `close()` landed still gets drained (the popper
/// waits for its insert; the insert's epoch bump wakes it).
struct ShardedQueue<T> {
    shards: Vec<Mutex<QueueShard<T>>>,
    capacity: usize,
    /// Committed capacity reservations: incremented before an item becomes
    /// visible, decremented after it is removed — so `len >=` the number of
    /// queued items at every instant.
    len: AtomicUsize,
    high_water: AtomicUsize,
    open: AtomicBool,
    /// Push epoch: bumped after every insert — the "something changed,
    /// rescan" signal for poppers. A backed-out reservation does *not* bump
    /// it (no item became visible); that path re-notifies both condvars
    /// under the gate instead, which is what wakes waiters re-evaluating
    /// `len`.
    pushes: AtomicU64,
    /// Poppers parked (or committing to park) on `not_empty`.
    sleepers: AtomicUsize,
    /// Pushers parked (or committing to park) on `not_full`.
    full_waiters: AtomicUsize,
    /// Guards parking only — never held on a fast path.
    gate: Mutex<()>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> ShardedQueue<T> {
    fn new(shards: usize, capacity: usize) -> Self {
        ShardedQueue {
            shards: (0..shards.max(1))
                .map(|_| {
                    Mutex::new(QueueShard {
                        items: VecDeque::new(),
                        accepted: 0,
                    })
                })
                .collect(),
            capacity: capacity.max(1),
            len: AtomicUsize::new(0),
            high_water: AtomicUsize::new(0),
            open: AtomicBool::new(true),
            pushes: AtomicU64::new(0),
            sleepers: AtomicUsize::new(0),
            full_waiters: AtomicUsize::new(0),
            gate: Mutex::new(()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Enqueue `item` into `shard` (mod the shard count). With `block`,
    /// waits for capacity; otherwise refuses a full queue immediately.
    /// Refusals hand the item back.
    fn push(&self, item: T, shard: usize, block: bool) -> Result<(), PushRefused<T>> {
        // Phase 1: reserve one unit of the global capacity.
        let reserved = loop {
            if !self.open.load(Ordering::SeqCst) {
                return Err(PushRefused::Closed(item));
            }
            let len = self.len.load(Ordering::SeqCst);
            if len < self.capacity {
                if self
                    .len
                    .compare_exchange(len, len + 1, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
                {
                    break len + 1;
                }
                continue; // lost the race, re-read
            }
            if !block {
                return Err(PushRefused::Full(item));
            }
            // Park until a popper frees a slot (or the queue closes). The
            // waiter count is published before the re-check, mirroring the
            // sleeper protocol: a popper either freed the slot before our
            // re-check (we see it and retry) or reads our count after its
            // decrement (and notifies under the gate we hold until parked).
            let gate = self.gate.lock().expect("serve queue gate poisoned");
            self.full_waiters.fetch_add(1, Ordering::SeqCst);
            if self.len.load(Ordering::SeqCst) >= self.capacity && self.open.load(Ordering::SeqCst)
            {
                let _gate = self.not_full.wait(gate).expect("serve queue gate poisoned");
            }
            self.full_waiters.fetch_sub(1, Ordering::SeqCst);
        };
        // The high-water mark tracks reservations and is raised *before* the
        // insert, so `high_water >= queued depth` at every instant a
        // snapshot can observe the item.
        self.high_water.fetch_max(reserved, Ordering::SeqCst);
        // Phase 2: the close() contract is "nothing accepted after close";
        // our reservation may have raced it, so re-check before the item
        // becomes visible and back the reservation out on shutdown.
        if !self.open.load(Ordering::SeqCst) {
            self.len.fetch_sub(1, Ordering::SeqCst);
            // Poppers waiting for `len == 0` to exit and pushers waiting for
            // the freed slot both need to re-evaluate.
            self.notify_pushed();
            self.notify_popped();
            return Err(PushRefused::Closed(item));
        }
        {
            let mut guard = self.shards[shard % self.shards.len()]
                .lock()
                .expect("serve queue shard poisoned");
            guard.items.push_back(item);
            guard.accepted += 1;
        }
        // Publish the insert to sleepy poppers: bump the epoch first, *then*
        // look for sleepers (see the type-level ordering proof).
        self.pushes.fetch_add(1, Ordering::SeqCst);
        self.notify_pushed();
        Ok(())
    }

    fn notify_pushed(&self) {
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            let _gate = self.gate.lock().expect("serve queue gate poisoned");
            self.not_empty.notify_all();
        }
    }

    fn notify_popped(&self) {
        if self.full_waiters.load(Ordering::SeqCst) > 0 {
            let _gate = self.gate.lock().expect("serve queue gate poisoned");
            self.not_full.notify_all();
        }
    }

    /// Dequeue a batch into `out`: the oldest item of the first non-empty
    /// shard (scanning from `home`, stealing from other shards when the home
    /// shard is dry) plus up to `max_batch - 1` younger items of the same
    /// shard that are `compatible` with it, in FIFO order. Blocks while the
    /// queue is open but empty; returns `false` (with `out` empty) only once
    /// the queue is closed *and* fully drained.
    fn next_batch(
        &self,
        home: usize,
        max_batch: usize,
        compatible: impl Fn(&T, &T) -> bool,
        out: &mut Vec<T>,
    ) -> bool {
        debug_assert!(out.is_empty());
        let n = self.shards.len();
        loop {
            let epoch = self.pushes.load(Ordering::SeqCst);
            for i in 0..n {
                let mut shard = self.shards[(home + i) % n]
                    .lock()
                    .expect("serve queue shard poisoned");
                if let Some(first) = shard.items.pop_front() {
                    out.push(first);
                    // Continuous batching: sweep the rest of this shard's
                    // FIFO for items the caller can serve together with the
                    // one just popped. Relative order of both the batch and
                    // the left-behind items is preserved.
                    let mut idx = 0;
                    while out.len() < max_batch && idx < shard.items.len() {
                        if compatible(&out[0], &shard.items[idx]) {
                            let item = shard.items.remove(idx).expect("index is in bounds");
                            out.push(item);
                        } else {
                            idx += 1;
                        }
                    }
                    drop(shard);
                    self.len.fetch_sub(out.len(), Ordering::SeqCst);
                    self.notify_popped();
                    // A sibling popper may have scanned every shard empty
                    // between our pop (under the shard lock) and the
                    // decrement above, and parked because `len != 0` made the
                    // closed queue look undrained. No push will ever wake it
                    // — intake is refused after close — so once our decrement
                    // lands on a closed queue, wake the sleepers to
                    // re-evaluate the drain condition. (SeqCst makes this a
                    // Dekker pair with the sleeper protocol: either our
                    // `sleepers` read sees the parked popper, or its `len`
                    // read sees our decrement and it exits on its own.)
                    if !self.open.load(Ordering::SeqCst) {
                        self.notify_pushed();
                    }
                    return true;
                }
            }
            // Full scan found nothing: park — or exit if closed and truly
            // drained. `sleepers` is published *before* the epoch re-read
            // (see the type-level proof of why this never loses a wakeup).
            let gate = self.gate.lock().expect("serve queue gate poisoned");
            self.sleepers.fetch_add(1, Ordering::SeqCst);
            if self.pushes.load(Ordering::SeqCst) == epoch {
                if !self.open.load(Ordering::SeqCst) && self.len.load(Ordering::SeqCst) == 0 {
                    // Closed, every shard scanned empty, no push landed
                    // since, and no reservation is in flight: drained.
                    self.sleepers.fetch_sub(1, Ordering::SeqCst);
                    return false;
                }
                let _gate = self
                    .not_empty
                    .wait(gate)
                    .expect("serve queue gate poisoned");
            }
            self.sleepers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Close the queue to new items and wake everyone blocked on it.
    /// Pending items still drain ([`ShardedQueue::next_batch`] keeps
    /// returning them); only intake stops.
    fn close(&self) {
        self.open.store(false, Ordering::SeqCst);
        // Taking the gate orders this after any in-progress park decision:
        // a popper (or full-waiter) that read `open == true` either parks
        // before we get the gate — and is notified — or re-checks after.
        let _gate = self.gate.lock().expect("serve queue gate poisoned");
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// One consistent view of depth, accepted count and high-water mark
    /// (all shard locks acquired together, in index order).
    fn snapshot(&self) -> QueueSnapshot {
        let guards: Vec<_> = self
            .shards
            .iter()
            .map(|s| s.lock().expect("serve queue shard poisoned"))
            .collect();
        let mut depth = 0usize;
        let mut accepted = 0u64;
        for g in &guards {
            depth += g.items.len();
            accepted += g.accepted;
        }
        // Reservations raise the mark before inserting, so with the shard
        // locks held `high_water >= depth` is already guaranteed.
        let high_water = self.high_water.load(Ordering::SeqCst);
        QueueSnapshot {
            depth,
            accepted,
            high_water,
        }
    }
}

/// SplitMix64 — the one-shot mixing step; full avalanche, so consecutive
/// inputs (tags, attempts) produce uncorrelated outputs. This is the root
/// of every deterministic decision the fault/retry machinery makes.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Backoff before retry `attempt` (1-based): bounded exponential with
/// deterministic jitter in the upper half of the band — a pure function of
/// (seed, tag, attempt), so replays back off identically and concurrent
/// retriers of one hot key still spread out (distinct tags, distinct
/// jitter).
fn backoff_ns(policy: &RetryPolicy, seed: u64, tag: u64, attempt: u32) -> u64 {
    let doublings = attempt.saturating_sub(1).min(20);
    let band = policy
        .base_backoff_ns
        .saturating_mul(1u64 << doublings)
        .min(policy.max_backoff_ns);
    let jitter = splitmix64(seed ^ tag.rotate_left(17) ^ u64::from(attempt)) % (band / 2 + 1);
    band / 2 + jitter
}

/// An armed deadline: when `at` passes, `token` flips and the executor
/// cancels at its next region boundary. Ordered by `at` only (reversed, so
/// [`BinaryHeap`] pops the *earliest* deadline first).
struct DeadlineEntry {
    at: Instant,
    token: Arc<AtomicBool>,
}

impl PartialEq for DeadlineEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at
    }
}
impl Eq for DeadlineEntry {}
impl PartialOrd for DeadlineEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for DeadlineEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.at.cmp(&self.at)
    }
}

/// The deadline watchdog's shared state: a min-heap of armed deadlines
/// under a mutex, a condvar the watchdog parks on, and the shutdown flag.
struct DeadlineWatch {
    state: Mutex<DeadlineState>,
    cv: Condvar,
}

struct DeadlineState {
    heap: BinaryHeap<DeadlineEntry>,
    closed: bool,
}

impl DeadlineWatch {
    fn new() -> Self {
        DeadlineWatch {
            state: Mutex::new(DeadlineState {
                heap: BinaryHeap::new(),
                closed: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Arm `token` to flip when `at` passes. Tokens are never unregistered:
    /// one that outlives its job fires into a disarmed pool, which is
    /// harmless (workers clear/re-arm their pool token per job).
    fn watch(&self, at: Instant, token: Arc<AtomicBool>) {
        let mut state = self.state.lock().expect("deadline watch poisoned");
        state.heap.push(DeadlineEntry { at, token });
        self.cv.notify_one();
    }

    /// Stop the watchdog thread. Called only *after* the workers are
    /// joined: every in-flight job has finished by then, so no armed token
    /// still matters.
    fn close(&self) {
        self.state.lock().expect("deadline watch poisoned").closed = true;
        self.cv.notify_all();
    }

    /// The watchdog loop: flip every due token, then sleep until the next
    /// deadline (or park when none are armed).
    fn run(&self) {
        let mut state = self.state.lock().expect("deadline watch poisoned");
        loop {
            let now = Instant::now();
            while state.heap.peek().is_some_and(|e| e.at <= now) {
                let entry = state.heap.pop().expect("peeked entry exists");
                entry.token.store(true, Ordering::SeqCst);
            }
            if state.closed {
                return;
            }
            state = match state.heap.peek().map(|e| e.at) {
                Some(at) => {
                    let wait = at.saturating_duration_since(now);
                    self.cv
                        .wait_timeout(state, wait)
                        .expect("deadline watch poisoned")
                        .0
                }
                None => self.cv.wait(state).expect("deadline watch poisoned"),
            };
        }
    }
}

/// One key's circuit-breaker state.
enum BreakerState {
    /// Healthy; counting consecutive final failures.
    Closed { consecutive: u32 },
    /// Tripped: fail fast / degrade until the logical clock reaches
    /// `until`, then half-open.
    Open { until: u64 },
    /// One probe is in flight; everyone else still fails fast / degrades.
    HalfOpen,
}

/// The breaker registry plus its transition counters, all under one lock —
/// transitions are rare and the map lookup is per *job*, not per record
/// body, so contention is negligible next to execution.
#[derive(Default)]
struct Breakers {
    map: HashMap<(u64, u64, JitOptions), BreakerState>,
    opened: u64,
    half_opened: u64,
    closed: u64,
}

/// What the breaker tells the worker to do with a job.
enum Gate {
    /// Run normally (`probe` marks the one half-open probe, whose outcome
    /// decides the key's fate).
    Run { probe: bool },
    /// Breaker open, no fallback: answer [`EngineError::CircuitOpen`].
    FailFast,
    /// Breaker open, fallback configured: serve on the fallback target.
    Degrade,
}

/// Injectable per-request fault for tests: return `true` to make the worker
/// panic while serving this request (inside its panic guard).
#[doc(hidden)]
pub type FaultHook = fn(&Request) -> bool;

/// A queued unit of work: the request, its response rendezvous, the cached
/// target fingerprint (computed once at submit so batch-key comparisons in
/// the queue are integer-cheap) and the accept timestamp.
struct Job {
    request: Request,
    tx: SyncSender<Response>,
    target_fp: u64,
    accepted_at: Instant,
}

impl Job {
    /// The continuous-batching key: jobs with equal keys are served by the
    /// same compiled program and may share a batch. Equal target
    /// *fingerprints* mean the targets are machine-code-identical, which is
    /// precisely the interchangeability batching needs.
    fn batch_key(&self) -> (u64, u64, JitOptions) {
        (
            self.request.module.fingerprint(),
            self.target_fp,
            self.request.options,
        )
    }
}

/// Two jobs may share a continuous batch.
fn same_batch(a: &Job, b: &Job) -> bool {
    a.batch_key() == b.batch_key()
}

/// Intake shard for a batch key: keying the *routing* by the *batching*
/// equivalence sends batchable work to the same shard, so a worker's
/// single-shard batch sweep finds it.
fn shard_for_key(key: &(u64, u64, JitOptions), shards: usize) -> usize {
    let mut hasher = DefaultHasher::new();
    key.hash(&mut hasher);
    (hasher.finish() % shards as u64) as usize
}

/// A registry entry: the engine plus the canonical encoding of the module it
/// was deployed from, kept so every fingerprint hit can be verified against
/// the actual bytes.
struct EngineEntry {
    encoded: Arc<[u8]>,
    engine: Arc<ExecutionEngine>,
}

/// Per-worker observability state: touched only by its worker in steady
/// state (plus `stats()`), so the hot loop never contends on shared
/// counters. Histograms record in constant time without allocating.
#[derive(Default)]
struct WorkerMetrics {
    per_target: BTreeMap<String, u64>,
    queue_wait: Histogram,
    execute: Histogram,
    batch_sizes: Histogram,
    retry_attempts: Histogram,
}

/// State shared between the submission API and the worker pool.
struct Inner {
    queue: ShardedQueue<Job>,
    /// Module fingerprint → shared engine, sharded by fingerprint.
    engines: [Mutex<HashMap<u64, EngineEntry>>; ENGINE_SHARDS],
    cache_capacity: usize,
    max_batch: usize,
    completed: AtomicU64,
    rejected: AtomicU64,
    rejected_shutdown: AtomicU64,
    expired: AtomicU64,
    cancelled: AtomicU64,
    retried: AtomicU64,
    degraded: AtomicU64,
    failed_fast: AtomicU64,
    faults_injected: AtomicU64,
    /// One metrics block per worker; [`Server::stats`] merges them.
    metrics: Vec<Mutex<WorkerMetrics>>,
    /// Test-only fault injection (see [`Server::start_instrumented`]).
    fault: Option<FaultHook>,
    retry: RetryPolicy,
    breaker: BreakerPolicy,
    fallback: Option<TargetDesc>,
    faults: Option<FaultPlan>,
    seed: u64,
    breakers: Mutex<Breakers>,
    deadlines: DeadlineWatch,
    /// Persistent artifact store attached to every engine at creation.
    store: Option<Arc<crate::ArtifactStore>>,
}

impl Inner {
    /// The shared engine for `module`, created on first sight. Racing
    /// requests for one fingerprint rendezvous on the registry shard's lock
    /// and share a single engine — creation is cheap (no compilation), so it
    /// happens under the lock.
    ///
    /// # Panics
    ///
    /// Panics if two modules with *different* encodings collide on one
    /// 64-bit fingerprint (probability ~2⁻⁶⁴ per pair): serving the wrong
    /// program silently would be far worse than failing loudly. The check is
    /// an `Arc` pointer comparison in the common case (clients clone one
    /// deployed handle) and a byte comparison otherwise.
    fn engine_for(&self, module: &ServeModule) -> Arc<ExecutionEngine> {
        let shard = &self.engines[(module.fingerprint() % ENGINE_SHARDS as u64) as usize];
        let mut guard = shard.lock().expect("engine registry shard poisoned");
        let entry = guard.entry(module.fingerprint()).or_insert_with(|| {
            let mut engine = ExecutionEngine::from_arc(module.module_arc());
            if let Some(store) = &self.store {
                // The serving tier computed the module fingerprint at
                // deployment (over the canonical encoding it still holds),
                // so the engine can key the store without re-encoding.
                engine = engine.with_store_keyed(Arc::clone(store), module.fingerprint());
            }
            if self.cache_capacity > 0 {
                engine.set_cache_capacity(self.cache_capacity);
            }
            EngineEntry {
                encoded: Arc::clone(&module.encoded),
                engine: Arc::new(engine),
            }
        });
        assert!(
            Arc::ptr_eq(&entry.encoded, &module.encoded) || entry.encoded == module.encoded,
            "module fingerprint collision: two different modules hash to {:#018x}",
            module.fingerprint()
        );
        Arc::clone(&entry.engine)
    }

    /// The breaker's logical clock: completed requests, server-wide. Using
    /// completions (not wall time) keeps open→half-open recovery a
    /// deterministic function of traffic.
    fn breaker_clock(&self) -> u64 {
        self.completed.load(Ordering::SeqCst)
    }

    /// `true` while nothing forbids serving `key` from its cached compile —
    /// used to decide whether a batch-level program fetch is worth making.
    /// (A half-open probe deliberately skips the batch fetch and compiles
    /// fresh through `run_pooled`: its key's artifact was quarantined.)
    fn breaker_fetch_allowed(&self, key: &(u64, u64, JitOptions)) -> bool {
        if self.breaker.failure_threshold == 0 {
            return true;
        }
        let breakers = self.breakers.lock().expect("breaker registry poisoned");
        matches!(
            breakers.map.get(key),
            None | Some(BreakerState::Closed { .. })
        )
    }

    /// The breaker's verdict for one job of `key`, applying the
    /// open→half-open transition when the cooldown has elapsed.
    fn breaker_gate(&self, key: &(u64, u64, JitOptions)) -> Gate {
        if self.breaker.failure_threshold == 0 {
            return Gate::Run { probe: false };
        }
        let mut breakers = self.breakers.lock().expect("breaker registry poisoned");
        let clock = self.breaker_clock();
        match breakers.map.get_mut(key) {
            None | Some(BreakerState::Closed { .. }) => Gate::Run { probe: false },
            Some(state @ BreakerState::Open { .. }) => {
                let BreakerState::Open { until } = *state else {
                    unreachable!()
                };
                if clock >= until {
                    *state = BreakerState::HalfOpen;
                    breakers.half_opened += 1;
                    Gate::Run { probe: true }
                } else if self.fallback.is_some() {
                    Gate::Degrade
                } else {
                    Gate::FailFast
                }
            }
            Some(BreakerState::HalfOpen) => {
                // A probe is already in flight; don't pile more traffic on
                // a key that is still presumed broken.
                if self.fallback.is_some() {
                    Gate::Degrade
                } else {
                    Gate::FailFast
                }
            }
        }
    }

    /// Record a governed job's *final* outcome (after retries) against its
    /// key's breaker, applying close/open transitions. Opening (including
    /// re-opening after a failed probe) quarantines the key: its compiled
    /// artifact is evicted from the engine so the eventual probe — and any
    /// later traffic — compiles fresh instead of replaying a poisoned
    /// artifact.
    fn breaker_record(&self, key: &(u64, u64, JitOptions), probe: bool, failed: bool) {
        if self.breaker.failure_threshold == 0 {
            return;
        }
        let mut breakers = self.breakers.lock().expect("breaker registry poisoned");
        let clock = self.breaker_clock();
        let until = clock.saturating_add(self.breaker.cooldown);
        let state = breakers
            .map
            .entry(*key)
            .or_insert(BreakerState::Closed { consecutive: 0 });
        let mut probe_succeeded = false;
        let open = match state {
            BreakerState::Closed { consecutive } => {
                if failed {
                    *consecutive += 1;
                    *consecutive >= self.breaker.failure_threshold
                } else {
                    *consecutive = 0;
                    false
                }
            }
            BreakerState::HalfOpen if probe => {
                if failed {
                    true
                } else {
                    *state = BreakerState::Closed { consecutive: 0 };
                    probe_succeeded = true;
                    false
                }
            }
            // A non-probe record against a half-open or open key carries no
            // new information (it was gated before this state was entered);
            // leave the probe to decide.
            _ => false,
        };
        if open {
            *state = BreakerState::Open { until };
            breakers.opened += 1;
            drop(breakers);
            self.quarantine(key);
        } else if probe_succeeded {
            breakers.closed += 1;
        }
    }

    /// Evict `key`'s compiled artifact from its module's engine.
    fn quarantine(&self, key: &(u64, u64, JitOptions)) {
        let (module_fp, target_fp, options) = key;
        let shard = &self.engines[(module_fp % ENGINE_SHARDS as u64) as usize];
        let engine = shard
            .lock()
            .expect("engine registry shard poisoned")
            .get(module_fp)
            .map(|entry| Arc::clone(&entry.engine));
        if let Some(engine) = engine {
            engine.invalidate(*target_fp, options);
        }
    }
}

/// The serving front-end: sharded bounded intake with work stealing,
/// drained batch-wise by a worker pool over fingerprint-deduplicated shared
/// engines.
///
/// See the [module documentation](self) for the full contract. The server is
/// `Send + Sync`; clients on any number of threads submit through `&self`.
pub struct Server {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    /// The deadline watchdog thread; joined *after* the workers (see
    /// [`Server::shutdown`] for why the order matters).
    watchdog: Mutex<Option<JoinHandle<()>>>,
    worker_count: usize,
}

impl fmt::Debug for Server {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Server")
            .field("workers", &self.worker_count)
            .field("queue_capacity", &self.inner.queue.capacity)
            .field("max_batch", &self.inner.max_batch)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Start a server: spawn the worker pool and open the queue.
    pub fn start(config: ServerConfig) -> Self {
        Server::start_instrumented(config, None)
    }

    /// [`Server::start`] with an injectable per-request fault hook, for
    /// tests that need a kernel to panic (or a worker to stall) on demand.
    /// Not part of the stable serving API.
    #[doc(hidden)]
    pub fn start_instrumented(config: ServerConfig, fault: Option<FaultHook>) -> Self {
        let worker_count = if config.workers == 0 {
            crate::sweep::default_jobs()
        } else {
            config.workers
        };
        let inner = Arc::new(Inner {
            queue: ShardedQueue::new(worker_count, config.queue_capacity),
            engines: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            cache_capacity: config.cache_capacity,
            max_batch: config.max_batch.max(1),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            rejected_shutdown: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            retried: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            failed_fast: AtomicU64::new(0),
            faults_injected: AtomicU64::new(0),
            metrics: (0..worker_count)
                .map(|_| Mutex::new(WorkerMetrics::default()))
                .collect(),
            fault,
            retry: config.retry,
            breaker: config.breaker,
            fallback: config.fallback,
            faults: config.faults,
            seed: config.seed,
            breakers: Mutex::new(Breakers::default()),
            deadlines: DeadlineWatch::new(),
            store: config.store,
        });
        let workers = (0..worker_count)
            .map(|worker| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("serve-{worker}"))
                    .spawn(move || worker_loop(&inner, worker))
                    .expect("cannot spawn serving worker")
            })
            .collect();
        let watchdog = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("serve-deadline".into())
                .spawn(move || inner.deadlines.run())
                .expect("cannot spawn deadline watchdog")
        };
        Server {
            inner,
            workers: Mutex::new(workers),
            watchdog: Mutex::new(Some(watchdog)),
            worker_count,
        }
    }

    /// The number of worker threads (a `workers: 0` request resolved to the
    /// host's core count).
    pub fn workers(&self) -> usize {
        self.worker_count
    }

    /// Submit a request, blocking while the queue is full.
    ///
    /// # Errors
    ///
    /// Returns [`SubmitError::ShuttingDown`] (with the request) once
    /// [`Server::shutdown`] has begun.
    pub fn submit(&self, request: Request) -> Result<ResponseHandle, SubmitError> {
        self.enqueue(request, true)
    }

    /// Submit a request without blocking.
    ///
    /// # Errors
    ///
    /// Returns [`SubmitError::QueueFull`] when the queue is at capacity
    /// (counted in [`ServerStats::rejected`]) or
    /// [`SubmitError::ShuttingDown`] once shutdown has begun (counted in
    /// [`ServerStats::rejected_shutdown`]); both hand the request back.
    pub fn try_submit(&self, request: Request) -> Result<ResponseHandle, SubmitError> {
        self.enqueue(request, false)
    }

    fn enqueue(&self, request: Request, block: bool) -> Result<ResponseHandle, SubmitError> {
        // Exactly one response ever crosses the channel, so a rendezvous
        // buffer of 1 means the worker's send never blocks — even if the
        // client dropped the handle without waiting.
        let (tx, rx) = mpsc::sync_channel(1);
        let target_fp = request.target.fingerprint();
        let job = Job {
            request,
            tx,
            target_fp,
            accepted_at: Instant::now(),
        };
        let shard = shard_for_key(&job.batch_key(), self.inner.queue.shard_count());
        match self.inner.queue.push(job, shard, block) {
            // The queue counted the acceptance under its shard lock,
            // atomically with making the job visible to workers.
            Ok(()) => Ok(ResponseHandle { rx }),
            Err(PushRefused::Full(job)) => {
                self.inner.rejected.fetch_add(1, Ordering::SeqCst);
                Err(SubmitError::QueueFull(Box::new(job.request)))
            }
            Err(PushRefused::Closed(job)) => {
                // A refused submission must land in *some* counter, or flood
                // accounting (`accepted + rejections == attempts`) silently
                // breaks the moment shutdown begins.
                self.inner.rejected_shutdown.fetch_add(1, Ordering::SeqCst);
                Err(SubmitError::ShuttingDown(Box::new(job.request)))
            }
        }
    }

    /// Requests currently waiting in the queue.
    pub fn queue_depth(&self) -> usize {
        self.inner.queue.snapshot().depth
    }

    /// Current counters; safe to read while the pool is serving.
    pub fn stats(&self) -> ServerStats {
        let mut cache = CacheStats::default();
        let mut online_work = 0u64;
        let mut engines = 0usize;
        for shard in &self.inner.engines {
            let guard = shard.lock().expect("engine registry shard poisoned");
            engines += guard.len();
            for entry in guard.values() {
                let snap = entry.engine.snapshot();
                cache += snap.stats;
                online_work += snap.online_work;
            }
        }
        let mut per_target: BTreeMap<String, u64> = BTreeMap::new();
        let mut queue_wait = Histogram::new();
        let mut execute = Histogram::new();
        let mut batch_sizes = Histogram::new();
        let mut retry_attempts = Histogram::new();
        for metrics in &self.inner.metrics {
            let m = metrics.lock().expect("worker metrics poisoned");
            for (name, count) in m.per_target.iter() {
                *per_target.entry(name.clone()).or_insert(0) += count;
            }
            queue_wait.merge(&m.queue_wait);
            execute.merge(&m.execute);
            batch_sizes.merge(&m.batch_sizes);
            retry_attempts.merge(&m.retry_attempts);
        }
        let (breaker_opened, breaker_half_opened, breaker_closed) = {
            let b = self
                .inner
                .breakers
                .lock()
                .expect("breaker registry poisoned");
            (b.opened, b.half_opened, b.closed)
        };
        // `completed` and `expired` are read *before* the queue snapshot:
        // all three only grow and a job is accepted (under its shard lock)
        // before any worker can complete or expire it, so this order
        // guarantees `completed + expired <= accepted` AND
        // `completed + expired + queue_depth <= accepted` in every snapshot
        // — the queue's depth and accepted count come from one all-locks
        // acquisition, never from separate racing reads.
        let completed = self.inner.completed.load(Ordering::SeqCst);
        let expired = self.inner.expired.load(Ordering::SeqCst);
        let queue = self.inner.queue.snapshot();
        ServerStats {
            accepted: queue.accepted,
            completed,
            rejected: self.inner.rejected.load(Ordering::SeqCst),
            rejected_shutdown: self.inner.rejected_shutdown.load(Ordering::SeqCst),
            expired,
            cancelled: self.inner.cancelled.load(Ordering::SeqCst),
            retried: self.inner.retried.load(Ordering::SeqCst),
            degraded: self.inner.degraded.load(Ordering::SeqCst),
            failed_fast: self.inner.failed_fast.load(Ordering::SeqCst),
            faults_injected: self.inner.faults_injected.load(Ordering::SeqCst),
            breaker_opened,
            breaker_half_opened,
            breaker_closed,
            queue_depth: queue.depth,
            queue_high_water: queue.high_water,
            engines,
            per_target: per_target.into_iter().collect(),
            cache,
            online_work,
            queue_wait,
            execute,
            batch_sizes,
            retry_attempts,
        }
    }

    /// Gracefully shut down: refuse new submissions, drain every accepted
    /// request, join the workers and return the final counters
    /// (`completed + expired == accepted` on return). Idempotent — later
    /// calls just return the final stats.
    ///
    /// The deadline watchdog is closed *after* the workers are joined, never
    /// before: an in-flight runaway kernel is only stoppable by the watchdog
    /// flipping its cancellation token, so closing the watchdog first could
    /// leave a worker spinning forever and deadlock the drain.
    ///
    /// # Panics
    ///
    /// Propagates a panic from a worker thread. Kernel-execution panics are
    /// caught inside the worker and never reach here; this fires only on a
    /// genuine bug in the serving loop itself.
    pub fn shutdown(&self) -> ServerStats {
        self.inner.queue.close();
        // The worker-list lock is held across the joins, so a concurrent
        // shutdown (or drop) blocks here until the first caller's drain
        // finishes — every shutdown returns genuinely final counters.
        let mut workers = self.workers.lock().expect("worker list poisoned");
        for worker in workers.drain(..) {
            worker.join().expect("serving worker panicked");
        }
        drop(workers);
        self.inner.deadlines.close();
        if let Some(watchdog) = self
            .watchdog
            .lock()
            .expect("watchdog handle poisoned")
            .take()
        {
            watchdog.join().expect("deadline watchdog panicked");
        }
        self.stats()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // A dropped server still drains accepted work; clients that kept
        // their handles see every response. Unlike `shutdown()`, a worker
        // panic is *not* re-raised here: drop may itself run during an
        // unwind (e.g. the test that observed ResponseLost), and a second
        // panic would abort the process and mask the original one.
        self.inner.queue.close();
        if let Ok(mut workers) = self.workers.lock() {
            for worker in workers.drain(..) {
                let _ = worker.join();
            }
        }
        // Same ordering as `shutdown()`: the watchdog outlives the workers
        // so a runaway in-flight kernel can still be cancelled mid-drain.
        self.inner.deadlines.close();
        if let Ok(mut watchdog) = self.watchdog.lock() {
            if let Some(handle) = watchdog.take() {
                let _ = handle.join();
            }
        }
    }
}

/// One worker: pull batches until the queue is closed *and* drained. The
/// worker's home shard is its own index (submitters route batch keys across
/// shards; the scan steals from other shards when home is dry), and a
/// worker-held [`FramePool`] recycles call frames across every request it
/// serves — the same per-worker amortization the sweep pool uses.
fn worker_loop(inner: &Inner, worker: usize) {
    let mut pool = FramePool::new();
    let mut batch: Vec<Job> = Vec::new();
    let home = worker % inner.queue.shard_count();
    while inner
        .queue
        .next_batch(home, inner.max_batch, same_batch, &mut batch)
    {
        serve_batch(inner, worker, &mut pool, &mut batch);
    }
}

/// Everything one governed job run produces, alongside the outcome itself.
struct JobResult {
    outcome: Result<Execution, EngineError>,
    mem: Vec<u8>,
    execute_ns: u64,
    /// Execution attempts made (0 = never executed, 1 = clean, 1+n =
    /// retried n times).
    attempts: u32,
    /// The deadline cancelled the run mid-flight.
    cancelled: bool,
    /// The final outcome is breaker-tripping (panic / transient / JIT
    /// failure) — as opposed to success or a semantic error that would
    /// fail identically on a healthy artifact.
    tripped: bool,
}

/// Serve one continuous batch (all jobs share a batch key): resolve the
/// shared engine once, fetch the compiled program once, then run every job
/// through exactly the execution path an unbatched run uses — so responses
/// are bit-identical to unbatched serving; batching only amortizes lookups.
///
/// Each job first passes the deadline shed (already-expired requests are
/// answered [`EngineError::DeadlineExceeded`] without executing, counted
/// `expired`) and then its key's circuit breaker (open keys fail fast or
/// reroute to the configured fallback target).
fn serve_batch(inner: &Inner, worker: usize, pool: &mut FramePool, batch: &mut Vec<Job>) {
    let dequeued = Instant::now();
    let batch_len = batch.len();
    let key = batch[0].batch_key();
    let engine = inner.engine_for(&batch[0].request.module);
    let target_name = batch[0].request.target.name.clone();
    // One program fetch covers the whole batch: the identical (target,
    // options) artifact every job would have looked up individually. A
    // batch whose every kernel is unknown skips the fetch entirely —
    // matching the unbatched precheck, where unknown kernels never touch
    // the cache. A batch whose key's breaker is not closed also skips it:
    // the artifact was quarantined, and warming it back in from the batch
    // path would bypass the half-open probe.
    let any_known = batch.iter().any(|j| {
        j.request
            .module
            .module()
            .function(&j.request.kernel)
            .is_some()
    });
    // The batch-level fetch runs under the same panic guard as per-job
    // execution: online compilation lives inside the panic-safe-worker
    // contract too. A panicking compile becomes `Some(Err(Panicked))`, which
    // routes every job through the per-job fallback below — each retries the
    // lookup inside its own `catch_unwind`, so each client is answered (with
    // the real result if the panic doesn't reproduce) and the worker lives.
    let program = if any_known && inner.breaker_fetch_allowed(&key) {
        Some(
            catch_unwind(AssertUnwindSafe(|| {
                engine.program_for(&batch[0].request.target, &batch[0].request.options)
            }))
            .unwrap_or_else(|payload| Err(EngineError::Panicked(panic_message(payload.as_ref())))),
        )
    } else {
        None
    };
    let mut served = 0u64;
    for job in batch.drain(..) {
        let Job {
            request,
            tx,
            accepted_at,
            ..
        } = job;
        let queue_wait_ns = saturating_ns(dequeued.duration_since(accepted_at));
        // Deadline shed: a request whose deadline passed while it queued is
        // answered without executing and counted `expired`, NOT `completed`
        // — load that can no longer meet its deadline costs a counter bump,
        // not a kernel run.
        if request.deadline.is_some_and(|at| Instant::now() >= at) {
            inner.expired.fetch_add(1, Ordering::SeqCst);
            let _ = tx.send(Response {
                outcome: Err(EngineError::DeadlineExceeded),
                mem: request.mem,
                worker,
                queue_wait_ns,
                execute_ns: 0,
                batch: batch_len,
                attempts: 0,
                degraded: false,
            });
            continue;
        }
        let gate = inner.breaker_gate(&key);
        let (result, degraded) = match gate {
            Gate::FailFast => {
                inner.failed_fast.fetch_add(1, Ordering::SeqCst);
                let result = JobResult {
                    outcome: Err(EngineError::CircuitOpen),
                    mem: request.mem,
                    execute_ns: 0,
                    attempts: 0,
                    cancelled: false,
                    tripped: false,
                };
                (result, false)
            }
            Gate::Degrade => {
                inner.degraded.fetch_add(1, Ordering::SeqCst);
                // The fallback target has its own (module, target, options)
                // key, so its runs never feed the broken key's breaker.
                (run_job(inner, &engine, None, request, pool, true), true)
            }
            Gate::Run { probe } => {
                let result = run_job(inner, &engine, program.as_ref(), request, pool, false);
                inner.breaker_record(&key, probe, result.tripped);
                (result, false)
            }
        };
        if result.cancelled {
            inner.cancelled.fetch_add(1, Ordering::SeqCst);
        }
        inner.completed.fetch_add(1, Ordering::SeqCst);
        served += 1;
        {
            // This worker's own metrics: uncontended in steady state (only
            // `stats()` ever takes the lock from another thread). The
            // per-target count lands *after* the request completed, so the
            // map never counts work that was merely started.
            let mut m = inner.metrics[worker]
                .lock()
                .expect("worker metrics poisoned");
            m.queue_wait.record(queue_wait_ns);
            m.execute.record(result.execute_ns);
            m.retry_attempts.record(u64::from(result.attempts));
            let name = if degraded {
                inner
                    .fallback
                    .as_ref()
                    .map(|t| t.name.as_str())
                    .unwrap_or(target_name.as_str())
            } else {
                target_name.as_str()
            };
            if let Some(count) = m.per_target.get_mut(name) {
                *count += 1;
            } else {
                m.per_target.insert(name.to_owned(), 1);
            }
        }
        // The client may have dropped its handle without waiting; a refused
        // send is not an error.
        let _ = tx.send(Response {
            outcome: result.outcome,
            mem: result.mem,
            worker,
            queue_wait_ns,
            execute_ns: result.execute_ns,
            batch: batch_len,
            attempts: result.attempts,
            degraded,
        });
    }
    if served > 0 {
        // One sample per batch, counting only the requests the worker
        // actually answered itself (expired sheds are excluded) — this is
        // what keeps `batch_sizes.sum() == completed`.
        inner.metrics[worker]
            .lock()
            .expect("worker metrics poisoned")
            .batch_sizes
            .record(served);
    }
}

/// Run one job of a batch under the full fault-tolerance stack: deadline
/// token arming, configured fault injection, the panic guard, and bounded
/// retries with jittered exponential backoff.
///
/// `program` is the batch-level compiled-program fetch: `Some(Ok(_))`
/// drives the *first* attempt through [`crate::engine::simulate`] directly
/// (the same call `run_pooled` bottoms out in); `Some(Err(_))` or a retry
/// re-runs the per-job lookup so each client receives exactly the error an
/// unbatched run would have produced (`EngineError` is not `Clone`) and a
/// retry after a quarantine compiles fresh; `None` means no job in the
/// batch names a known kernel (or the breaker skipped the batch fetch).
///
/// With `degraded`, the request is rerouted to the configured fallback
/// target (the caller has already checked it exists).
///
/// Execution is wrapped in a panic guard: a panicking kernel answers with
/// [`EngineError::Panicked`] (payload capped at [`PANIC_MESSAGE_CAP`]
/// bytes) and costs the worker its frame pool (recycled frames may have
/// been mid-mutation when the unwind tore through), but never the worker
/// itself. Only infrastructure failures — [`EngineError::Panicked`] and
/// [`EngineError::Transient`] — are retried; semantic errors (traps,
/// unknown kernels, compile diagnostics) would fail identically again and
/// are answered immediately. Memory is restored from a pre-run backup
/// before every retry, so a retried request runs against pristine state.
fn run_job(
    inner: &Inner,
    engine: &ExecutionEngine,
    program: Option<&Result<Arc<CompiledModule>, EngineError>>,
    request: Request,
    pool: &mut FramePool,
    degraded: bool,
) -> JobResult {
    let inject = inner.fault.is_some_and(|hook| hook(&request));
    let Request {
        module,
        kernel,
        target,
        options,
        args,
        mut mem,
        deadline,
        tag,
    } = request;
    let target = if degraded {
        inner
            .fallback
            .clone()
            .expect("degraded run without a fallback target")
    } else {
        target
    };
    if module.module().function(&kernel).is_none() {
        // Matches `run_pooled`'s precheck: unknown kernels fail before any
        // cache traffic and before the execute clock starts.
        return JobResult {
            outcome: Err(EngineError::UnknownKernel(kernel)),
            mem,
            execute_ns: 0,
            attempts: 0,
            cancelled: false,
            tripped: false,
        };
    }
    // Arm the deadline: the watchdog flips this token when the deadline
    // passes, and the interpreter's cooperative checks (function entry and
    // loop back edges) turn the flip into `SimError::Cancelled` mid-kernel.
    // Tokens are registered once per job and never unregistered — a stale
    // fire after the job finished is harmless because the pool's token slot
    // is cleared below.
    let token = deadline.map(|at| {
        let token = Arc::new(AtomicBool::new(false));
        inner.deadlines.watch(at, Arc::clone(&token));
        token
    });
    // Retries need pristine memory: back it up before the first attempt
    // (`RetryPolicy::none()` skips the copy entirely).
    let backup = (inner.retry.max_retries > 0).then(|| mem.clone());
    let started = Instant::now();
    let mut attempt: u32 = 0;
    let mut cancelled = false;
    let outcome = loop {
        if let Some(token) = &token {
            // (Re-)arm the pool each attempt: a panic replaced the pool —
            // and with it the token slot — wholesale.
            pool.set_cancel_token(Arc::clone(token));
        }
        let compile_fault = faults_at(inner, FaultSite::Compile, tag, attempt);
        let execute_fault = faults_at(inner, FaultSite::Execute, tag, attempt);
        attempt += 1;
        // The batch-level artifact serves the first attempt only: a retry
        // (or a half-open probe, which never gets a batch artifact) goes
        // through the engine lookup so a quarantined key compiles fresh.
        let batch_program = if attempt == 1 { program } else { None };
        let ran = catch_unwind(AssertUnwindSafe(|| {
            if inject {
                panic!("injected serving fault in kernel `{kernel}`");
            }
            if let Some(kind) = compile_fault {
                match apply_fault(inner, kind, FaultSite::Compile, &kernel) {
                    Ok(()) => {}
                    Err(err) => return Err(err),
                }
            }
            if let Some(kind) = execute_fault {
                match apply_fault(inner, kind, FaultSite::Execute, &kernel) {
                    Ok(()) => {}
                    Err(err) => return Err(err),
                }
            }
            match batch_program {
                Some(Ok(compiled)) => {
                    crate::engine::simulate(compiled, &target, &kernel, &args, &mut mem, pool)
                }
                _ => engine.run_pooled(&target, &options, &kernel, &args, &mut mem, pool),
            }
        }));
        let outcome = match ran {
            Ok(outcome) => outcome,
            Err(payload) => {
                *pool = FramePool::new();
                Err(EngineError::Panicked(panic_message(payload.as_ref())))
            }
        };
        // A cooperative cancellation surfaces to the client as the deadline
        // error it is, never as a retryable failure.
        if matches!(outcome, Err(EngineError::Sim(SimError::Cancelled))) {
            cancelled = true;
            break Err(EngineError::DeadlineExceeded);
        }
        let retryable = matches!(
            outcome,
            Err(EngineError::Panicked(_)) | Err(EngineError::Transient(_))
        );
        let deadline_passed = token.as_ref().is_some_and(|t| t.load(Ordering::SeqCst))
            || deadline.is_some_and(|at| Instant::now() >= at);
        if !(retryable && attempt <= inner.retry.max_retries && !deadline_passed) {
            break outcome;
        }
        if let Some(backup) = &backup {
            mem.clone_from(backup);
        }
        inner.retried.fetch_add(1, Ordering::SeqCst);
        let backoff = backoff_ns(&inner.retry, inner.seed, tag, attempt);
        if backoff > 0 {
            std::thread::sleep(Duration::from_nanos(backoff));
        }
    };
    // Clear the slot so later jobs on this worker never see a stale token.
    pool.clear_cancel_token();
    let tripped = matches!(
        outcome,
        Err(EngineError::Panicked(_)) | Err(EngineError::Transient(_)) | Err(EngineError::Jit(_))
    );
    JobResult {
        outcome,
        mem,
        execute_ns: saturating_ns(started.elapsed()),
        attempts: attempt,
        cancelled,
        tripped,
    }
}

/// The configured [`FaultPlan`]'s verdict for `(site, tag, attempt)`.
fn faults_at(inner: &Inner, site: FaultSite, tag: u64, attempt: u32) -> Option<FaultKind> {
    inner
        .faults
        .as_ref()
        .and_then(|plan| plan.at(site, tag, attempt))
}

/// Fire one injected fault. `Ok(())` means execution proceeds (latency
/// faults); `Err` is returned to the client as-is (transient faults);
/// panic faults unwind into the worker's panic guard.
fn apply_fault(
    inner: &Inner,
    kind: FaultKind,
    site: FaultSite,
    kernel: &str,
) -> Result<(), EngineError> {
    inner.faults_injected.fetch_add(1, Ordering::SeqCst);
    let site_name = match site {
        FaultSite::Compile => "compile",
        FaultSite::Execute => "execute",
    };
    match kind {
        FaultKind::Panic => panic!("injected {site_name} fault in kernel `{kernel}`"),
        FaultKind::Transient => Err(EngineError::Transient(format!(
            "injected {site_name} fault in kernel `{kernel}`"
        ))),
        FaultKind::Latency(ns) => {
            if ns > 0 {
                std::thread::sleep(Duration::from_nanos(ns));
            }
            Ok(())
        }
    }
}

/// Upper bound on the bytes of panic payload preserved in
/// [`EngineError::Panicked`]. Panic messages can embed arbitrary runtime
/// state (a formatted kernel argument, a huge assertion dump); responses
/// are queued, cloned into stats paths and shipped across the bench JSON
/// boundary, so an unbounded payload is a memory-amplification vector.
pub const PANIC_MESSAGE_CAP: usize = 256;

/// Best-effort extraction of a panic payload's message, truncated to
/// [`PANIC_MESSAGE_CAP`] bytes (on a char boundary, with a marker).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    let message = if let Some(s) = payload.downcast_ref::<&'static str>() {
        *s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.as_str()
    } else {
        "non-string panic payload"
    };
    if message.len() <= PANIC_MESSAGE_CAP {
        return message.to_owned();
    }
    let mut cut = PANIC_MESSAGE_CAP;
    while !message.is_char_boundary(cut) {
        cut -= 1;
    }
    format!("{}… [truncated]", &message[..cut])
}

fn saturating_ns(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitc_minic::compile_source;

    fn triple_module() -> ServeModule {
        ServeModule::new(compile_source("fn triple(x: i32) -> i32 { return 3 * x; }", "k").unwrap())
    }

    fn triple_request(module: &ServeModule, x: i64) -> Request {
        Request {
            module: module.clone(),
            kernel: "triple".into(),
            target: TargetDesc::x86_sse(),
            options: JitOptions::split(),
            args: vec![MachineValue::Int(x)],
            mem: vec![0u8; 64],
            deadline: None,
            tag: 0,
        }
    }

    /// Dequeue exactly one item (no batching) — the old `pop` shape, used
    /// by the queue-semantics tests.
    fn pop1<T>(q: &ShardedQueue<T>) -> Option<T> {
        let mut out = Vec::new();
        if q.next_batch(0, 1, |_, _| false, &mut out) {
            debug_assert_eq!(out.len(), 1);
            out.pop()
        } else {
            None
        }
    }

    // --- ShardedQueue: deterministic backpressure semantics ---

    #[test]
    fn try_push_refuses_a_full_queue_and_hands_the_item_back() {
        let q = ShardedQueue::new(1, 2);
        assert!(q.push(1u32, 0, false).is_ok());
        assert!(q.push(2, 0, false).is_ok());
        match q.push(3, 0, false) {
            Err(PushRefused::Full(item)) => assert_eq!(item, 3),
            _ => panic!("a full queue must refuse non-blocking pushes"),
        }
        let snap = q.snapshot();
        assert_eq!(snap.depth, 2);
        assert_eq!(snap.high_water, 2);
        // Draining makes room again, FIFO order preserved.
        assert_eq!(pop1(&q), Some(1));
        assert!(q.push(3, 0, false).is_ok());
        assert_eq!(pop1(&q), Some(2));
        assert_eq!(pop1(&q), Some(3));
        assert_eq!(
            q.snapshot().high_water,
            2,
            "high water is a maximum, not a level"
        );
    }

    #[test]
    fn capacity_is_global_across_shards() {
        let q = ShardedQueue::new(4, 2);
        assert!(q.push(1u32, 0, false).is_ok());
        assert!(q.push(2, 3, false).is_ok());
        assert!(
            matches!(q.push(3, 1, false), Err(PushRefused::Full(3))),
            "the bound spans all shards, not each one"
        );
        let snap = q.snapshot();
        assert_eq!(snap.depth, 2);
        assert_eq!(snap.accepted, 2);
    }

    #[test]
    fn blocking_push_waits_for_space_instead_of_refusing() {
        let q = Arc::new(ShardedQueue::new(1, 1));
        assert!(q.push(10u32, 0, true).is_ok());
        let qt = Arc::clone(&q);
        let pusher = std::thread::spawn(move || qt.push(20, 0, true).is_ok());
        // The pusher can only finish after this pop frees a slot; if push
        // wrongly refused instead of blocking, the assert below catches the
        // missing item.
        assert_eq!(pop1(&q), Some(10));
        assert!(pusher.join().unwrap());
        assert_eq!(pop1(&q), Some(20));
    }

    #[test]
    fn close_refuses_intake_but_drains_pending_items() {
        let q = ShardedQueue::new(1, 4);
        assert!(q.push(1u32, 0, false).is_ok());
        assert!(q.push(2, 0, false).is_ok());
        q.close();
        match q.push(3, 0, true) {
            Err(PushRefused::Closed(item)) => assert_eq!(item, 3),
            _ => panic!("a closed queue must refuse even blocking pushes"),
        }
        assert_eq!(pop1(&q), Some(1));
        assert_eq!(pop1(&q), Some(2));
        assert_eq!(pop1(&q), None, "closed and drained");
        assert_eq!(pop1(&q), None, "stays drained");
    }

    #[test]
    fn close_wakes_blocked_poppers() {
        let q = Arc::new(ShardedQueue::<u32>::new(2, 1));
        let qt = Arc::clone(&q);
        let popper = std::thread::spawn(move || pop1(&qt));
        q.close();
        assert_eq!(popper.join().unwrap(), None);
    }

    #[test]
    fn closed_drain_never_strands_a_popper() {
        // Regression: a popper that scanned every shard empty could park on
        // a closed queue forever because a sibling had popped the last item
        // under the shard lock but not yet published the `len` decrement —
        // the popper saw `open == false, len != 0` and waited, and the
        // decrement only notified `not_full`. Hammer that window: every
        // popper draining a closed queue must exit.
        for round in 0..200 {
            let q = Arc::new(ShardedQueue::<u32>::new(2, 64));
            for v in 0..8u32 {
                assert!(q.push(v, v as usize, false).is_ok());
            }
            q.close();
            let (done_tx, done_rx) = mpsc::channel();
            let poppers: Vec<_> = (0..4)
                .map(|home| {
                    let qt = Arc::clone(&q);
                    let tx = done_tx.clone();
                    std::thread::spawn(move || {
                        let mut out = Vec::new();
                        let mut popped = 0usize;
                        while qt.next_batch(home, 2, |_, _| true, &mut out) {
                            popped += out.len();
                            out.clear();
                        }
                        tx.send(popped).expect("watchdog receiver alive");
                    })
                })
                .collect();
            drop(done_tx);
            // The watchdog channel turns a stranded popper into a test
            // failure instead of a silent hang.
            let mut total = 0usize;
            for _ in 0..poppers.len() {
                total += done_rx
                    .recv_timeout(std::time::Duration::from_secs(30))
                    .unwrap_or_else(|_| {
                        panic!("round {round}: popper stranded on a closed, drained queue")
                    });
            }
            assert_eq!(total, 8, "round {round}: lossless drain");
            for p in poppers {
                p.join().unwrap();
            }
        }
    }

    #[test]
    fn next_batch_drains_compatible_items_in_fifo_order() {
        let q = ShardedQueue::new(1, 16);
        for v in 1..=6u32 {
            assert!(q.push(v, 0, false).is_ok());
        }
        let parity = |a: &u32, b: &u32| a % 2 == b % 2;
        let mut out = Vec::new();
        assert!(q.next_batch(0, 8, parity, &mut out));
        assert_eq!(out, vec![1, 3, 5], "odd batch, order preserved");
        out.clear();
        assert!(q.next_batch(0, 8, parity, &mut out));
        assert_eq!(out, vec![2, 4, 6], "left-behind items keep their order");
        assert_eq!(q.snapshot().depth, 0);
    }

    #[test]
    fn next_batch_respects_max_batch() {
        let q = ShardedQueue::new(1, 16);
        for v in 0..5u32 {
            assert!(q.push(v, 0, false).is_ok());
        }
        let mut out = Vec::new();
        assert!(q.next_batch(0, 2, |_, _| true, &mut out));
        assert_eq!(out, vec![0, 1]);
        out.clear();
        assert!(q.next_batch(0, 2, |_, _| true, &mut out));
        assert_eq!(out, vec![2, 3]);
        out.clear();
        assert!(q.next_batch(0, 2, |_, _| true, &mut out));
        assert_eq!(out, vec![4], "a short tail still serves");
    }

    #[test]
    fn workers_steal_from_other_shards() {
        let q = ShardedQueue::new(4, 16);
        assert!(q.push(7u32, 2, false).is_ok());
        let mut out = Vec::new();
        // Home shard 0 is empty; the scan must find shard 2's item instead
        // of parking forever.
        assert!(q.next_batch(0, 4, |_, _| true, &mut out));
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn snapshot_is_consistent_under_churn() {
        let q = Arc::new(ShardedQueue::<u64>::new(4, 32));
        let popped = Arc::new(AtomicU64::new(0));
        let mut producers = Vec::new();
        for p in 0..2 {
            let qt = Arc::clone(&q);
            producers.push(std::thread::spawn(move || {
                for i in 0..500u64 {
                    qt.push(i, (p + i as usize) % 4, true).ok();
                }
            }));
        }
        let qt = Arc::clone(&q);
        let popped_t = Arc::clone(&popped);
        let consumer = std::thread::spawn(move || {
            let mut out = Vec::new();
            while qt.next_batch(0, 4, |_, _| true, &mut out) {
                // Count completions BEFORE the next observation can run, the
                // same order the server maintains.
                popped_t.fetch_add(out.len() as u64, Ordering::SeqCst);
                out.clear();
            }
        });
        // Observer: in every snapshot, completions + depth never exceed
        // accepted, and high water bounds depth.
        let mut last_accepted = 0u64;
        for _ in 0..200 {
            let done = popped.load(Ordering::SeqCst);
            let snap = q.snapshot();
            assert!(
                done + snap.depth as u64 <= snap.accepted,
                "tear: completed {done} + depth {} > accepted {}",
                snap.depth,
                snap.accepted
            );
            assert!(snap.high_water >= snap.depth);
            assert!(snap.accepted >= last_accepted, "accepted is monotonic");
            last_accepted = snap.accepted;
        }
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        consumer.join().unwrap();
        assert_eq!(popped.load(Ordering::SeqCst), 1000, "lossless drain");
        assert_eq!(q.snapshot().accepted, 1000);
    }

    // --- Server ---

    #[test]
    fn server_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Server>();
        assert_send_sync::<ServeModule>();
    }

    #[test]
    fn identical_modules_share_one_engine() {
        // Two *separately compiled* modules from one source: equal wire
        // encodings, equal fingerprints, one engine, one compilation.
        let a = triple_module();
        let b = triple_module();
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(
            module_fingerprint(a.module()),
            a.fingerprint(),
            "the standalone helper and the deployed handle agree"
        );
        let server = Server::start(ServerConfig::default().with_workers(2));
        let ha = server.submit(triple_request(&a, 1)).unwrap();
        let hb = server.submit(triple_request(&b, 2)).unwrap();
        assert_eq!(
            ha.wait().unwrap().outcome.unwrap().result,
            Some(MachineValue::Int(3))
        );
        assert_eq!(
            hb.wait().unwrap().outcome.unwrap().result,
            Some(MachineValue::Int(6))
        );
        let stats = server.shutdown();
        assert_eq!(stats.engines, 1, "byte-identical modules deduplicate");
        assert_eq!(stats.cache.compiles, 1);
        assert_eq!(stats.accepted, 2);
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.queue_wait.count(), 2, "every wait is timed");
        assert_eq!(stats.execute.count(), 2, "every execution is timed");
        assert_eq!(
            stats.batch_sizes.sum(),
            2,
            "batch sizes account for every served request"
        );
    }

    #[test]
    fn distinct_modules_get_distinct_engines() {
        let a = triple_module();
        let b = ServeModule::new(
            compile_source("fn triple(x: i32) -> i32 { return x * 3; }", "k").unwrap(),
        );
        assert_ne!(a.fingerprint(), b.fingerprint());
        let server = Server::start(ServerConfig::default().with_workers(1));
        server
            .submit(triple_request(&a, 5))
            .unwrap()
            .wait()
            .unwrap();
        server
            .submit(triple_request(&b, 5))
            .unwrap()
            .wait()
            .unwrap();
        let stats = server.shutdown();
        assert_eq!(stats.engines, 2);
        assert_eq!(stats.cache.compiles, 2);
    }

    #[test]
    fn submissions_after_shutdown_hand_the_request_back_and_are_counted() {
        let module = triple_module();
        let server = Server::start(ServerConfig::default().with_workers(1));
        let stats = server.shutdown();
        assert_eq!(stats.accepted, 0);
        assert_eq!(stats.rejected_shutdown, 0);
        let err = server.submit(triple_request(&module, 7)).unwrap_err();
        match err {
            SubmitError::ShuttingDown(request) => {
                assert_eq!(request.kernel, "triple");
                assert_eq!(request.args, vec![MachineValue::Int(7)]);
            }
            SubmitError::QueueFull(_) => panic!("a closed queue is not a full queue"),
        }
        // try_submit refuses identically, and shutdown stays idempotent.
        assert!(matches!(
            server.try_submit(triple_request(&module, 8)),
            Err(SubmitError::ShuttingDown(_))
        ));
        let stats = server.shutdown();
        assert_eq!(stats.accepted, 0);
        assert_eq!(
            stats.rejected_shutdown, 2,
            "shutdown-time refusals are counted, not dropped"
        );
        assert_eq!(
            stats.rejected, 0,
            "full-queue and shutdown counters are distinct"
        );
    }

    #[test]
    fn unknown_kernels_come_back_as_engine_errors_with_the_memory() {
        let module = triple_module();
        let server = Server::start(ServerConfig::default().with_workers(1));
        let mut request = triple_request(&module, 1);
        request.kernel = "nope".into();
        request.mem = vec![0xaa; 32];
        let response = server.submit(request).unwrap().wait().unwrap();
        assert!(matches!(
            response.outcome,
            Err(EngineError::UnknownKernel(ref k)) if k == "nope"
        ));
        assert_eq!(
            response.mem,
            vec![0xaa; 32],
            "memory is returned either way"
        );
        assert_eq!(response.execute_ns, 0, "refused before the execute clock");
        let stats = server.shutdown();
        assert_eq!(stats.completed, 1, "failed requests still complete");
        assert_eq!(
            stats.cache.lookups(),
            0,
            "unknown kernels never touch the cache, batched or not"
        );
    }

    #[test]
    fn per_target_counts_and_queue_high_water_are_tracked() {
        let module = triple_module();
        let server = Server::start(ServerConfig::default().with_workers(2));
        let mut handles = Vec::new();
        for i in 0..6 {
            let mut request = triple_request(&module, i);
            if i % 2 == 0 {
                request.target = TargetDesc::powerpc();
            }
            handles.push(server.submit(request).unwrap());
        }
        for handle in handles {
            handle.wait().unwrap().outcome.unwrap();
        }
        let stats = server.shutdown();
        assert_eq!(stats.per_target.len(), 2);
        assert_eq!(
            stats.per_target.iter().map(|(_, c)| c).sum::<u64>(),
            stats.completed
        );
        assert!(stats
            .per_target
            .iter()
            .any(|(t, c)| t == "powerpc" && *c == 3));
        assert!(stats
            .per_target
            .iter()
            .any(|(t, c)| t == "x86-sse" && *c == 3));
        assert!(stats.queue_high_water >= 1);
        assert_eq!(stats.queue_depth, 0);
        assert_eq!(stats.rejected, 0);
    }

    #[test]
    fn dropping_the_server_drains_accepted_work() {
        let module = triple_module();
        let handle;
        {
            let server = Server::start(ServerConfig::default().with_workers(1));
            handle = server.submit(triple_request(&module, 9)).unwrap();
            // `server` drops here without an explicit shutdown.
        }
        let response = handle.wait().expect("drop drains, never discards");
        assert_eq!(
            response.outcome.unwrap().result,
            Some(MachineValue::Int(27))
        );
    }

    #[test]
    fn zero_workers_resolves_to_the_host_core_count() {
        let server = Server::start(ServerConfig::default());
        assert_eq!(server.workers(), crate::sweep::default_jobs());
        server.shutdown();
    }

    // --- Panic safety ---

    /// Fault hook: panic while serving any request whose first argument is
    /// the sentinel 13.
    fn panic_on_13(request: &Request) -> bool {
        request.args.first() == Some(&MachineValue::Int(13))
    }

    #[test]
    fn a_panicking_kernel_answers_the_client_and_spares_the_worker() {
        let module = triple_module();
        // ONE worker: if the panic killed it, the later requests would hang
        // (and shutdown's completed == accepted guarantee would break).
        let server =
            Server::start_instrumented(ServerConfig::default().with_workers(1), Some(panic_on_13));
        let before = server.submit(triple_request(&module, 2)).unwrap();
        let boom = server.submit(triple_request(&module, 13)).unwrap();
        let after = server.submit(triple_request(&module, 4)).unwrap();
        assert_eq!(
            before.wait().unwrap().outcome.unwrap().result,
            Some(MachineValue::Int(6))
        );
        let crashed = boom.wait().expect("a panicking kernel still answers");
        assert!(
            matches!(
                crashed.outcome,
                Err(EngineError::Panicked(ref msg)) if msg.contains("injected serving fault")
            ),
            "got {:?}",
            crashed.outcome
        );
        assert_eq!(
            after.wait().unwrap().outcome.unwrap().result,
            Some(MachineValue::Int(12)),
            "the worker survived the panic and kept serving"
        );
        let stats = server.shutdown();
        assert_eq!(stats.completed, 3, "panicked requests complete too");
        assert_eq!(stats.accepted, 3);
        assert_eq!(
            stats.per_target.iter().map(|(_, c)| c).sum::<u64>(),
            3,
            "per-target counts requests that actually completed"
        );
    }

    // --- Continuous batching ---

    /// Gate for [`stall_on_0`]: the hooked worker spins until released.
    static STALL_GATE: AtomicBool = AtomicBool::new(false);

    /// Fault hook that never injects a fault, but stalls the worker while
    /// serving the sentinel request (first arg 0) until [`STALL_GATE`]
    /// opens — letting a test pile up a known backlog behind a 1-worker
    /// server and then observe it served as one continuous batch.
    fn stall_on_0(request: &Request) -> bool {
        if request.args.first() == Some(&MachineValue::Int(0)) {
            while !STALL_GATE.load(Ordering::SeqCst) {
                std::thread::yield_now();
            }
        }
        false
    }

    #[test]
    fn a_backlog_of_one_key_is_served_as_one_bit_identical_batch() {
        let module = triple_module();
        let server = Server::start_instrumented(
            ServerConfig::default()
                .with_workers(1)
                .with_max_batch(8)
                .with_queue_capacity(64),
            Some(stall_on_0),
        );
        // Occupy the single worker with the stalling sentinel…
        let sentinel = server.submit(triple_request(&module, 0)).unwrap();
        while server.queue_depth() > 0 {
            std::thread::yield_now();
        }
        // …then build a same-key backlog it must drain as one batch.
        let handles: Vec<_> = (1..=8)
            .map(|i| server.submit(triple_request(&module, i)).unwrap())
            .collect();
        STALL_GATE.store(true, Ordering::SeqCst);
        sentinel.wait().unwrap().outcome.unwrap();
        let engine = crate::ExecutionEngine::from_arc(module.module_arc());
        let mut pool = FramePool::new();
        for (i, handle) in handles.into_iter().enumerate() {
            let x = i as i64 + 1;
            let response = handle.wait().unwrap();
            assert_eq!(response.batch, 8, "the backlog was served as one batch");
            // Bit-identity: the batched response equals a fresh unbatched
            // run — same Execution record, same memory image.
            let mut reference = triple_request(&module, x);
            let expect = engine
                .run_pooled(
                    &reference.target,
                    &reference.options,
                    &reference.kernel,
                    &reference.args,
                    &mut reference.mem,
                    &mut pool,
                )
                .unwrap();
            assert_eq!(response.outcome.unwrap(), expect);
            assert_eq!(response.mem, reference.mem);
        }
        let stats = server.shutdown();
        assert_eq!(stats.batch_sizes.max(), 8);
        assert_eq!(stats.batch_sizes.sum(), stats.completed);
        assert_eq!(
            stats.cache.compiles, 1,
            "one compilation serves the whole run"
        );
        assert_eq!(
            stats.cache.lookups(),
            stats.batch_sizes.count(),
            "one cache lookup per batch, not per request"
        );
    }

    // --- Fault tolerance ---

    #[test]
    fn a_transient_fault_is_retried_and_the_attempt_count_stamped() {
        let module = triple_module();
        let plan = FaultPlan::seeded(7).with_rule(FaultRule {
            site: FaultSite::Execute,
            kind: FaultKind::Transient,
            selector: FaultSelector::tag_range(5, 6),
            persistent: false,
        });
        let server = Server::start(ServerConfig::default().with_workers(1).with_faults(plan));
        let mut request = triple_request(&module, 4);
        request.tag = 5;
        let response = server.submit(request).unwrap().wait().unwrap();
        assert_eq!(
            response.outcome.unwrap().result,
            Some(MachineValue::Int(12)),
            "the retry ran clean: non-persistent faults clear on attempt 2"
        );
        assert_eq!(response.attempts, 2, "one failed attempt, one clean");
        assert!(!response.degraded);
        let clean = server.submit(triple_request(&module, 1)).unwrap();
        assert_eq!(clean.wait().unwrap().attempts, 1, "untouched tags run once");
        let stats = server.shutdown();
        assert_eq!(stats.retried, 1);
        assert_eq!(stats.faults_injected, 1);
        assert_eq!(stats.retry_attempts.count(), stats.completed);
        assert_eq!(stats.retry_attempts.max(), 2);
        assert_eq!(
            stats.breaker_opened, 0,
            "one failure is below the threshold"
        );
    }

    #[test]
    fn a_persistent_fault_exhausts_retries_and_reports_every_attempt() {
        let module = triple_module();
        let plan = FaultPlan::seeded(7).with_rule(FaultRule {
            site: FaultSite::Execute,
            kind: FaultKind::Transient,
            selector: FaultSelector::tag_range(0, 1),
            persistent: true,
        });
        let server = Server::start(
            ServerConfig::default()
                .with_workers(1)
                .with_faults(plan)
                .with_retry(RetryPolicy {
                    max_retries: 3,
                    base_backoff_ns: 1_000,
                    max_backoff_ns: 10_000,
                })
                // Keep the breaker out of this test's way.
                .with_breaker(BreakerPolicy {
                    failure_threshold: 0,
                    cooldown: 0,
                }),
        );
        let response = server
            .submit(triple_request(&module, 2))
            .unwrap()
            .wait()
            .unwrap();
        assert!(matches!(response.outcome, Err(EngineError::Transient(_))));
        assert_eq!(response.attempts, 4, "first try plus three retries");
        let stats = server.shutdown();
        assert_eq!(stats.retried, 3);
        assert_eq!(stats.faults_injected, 4);
    }

    #[test]
    fn the_breaker_opens_fails_fast_then_recovers_through_a_probe() {
        let module = triple_module();
        // Tags 0 and 1 panic on every attempt — two consecutive failures,
        // exactly the threshold. Retries are off so each failure is final.
        let plan = FaultPlan::seeded(1).with_rule(FaultRule {
            site: FaultSite::Execute,
            kind: FaultKind::Panic,
            selector: FaultSelector::tag_range(0, 2),
            persistent: true,
        });
        let server = Server::start(
            ServerConfig::default()
                .with_workers(1)
                .with_max_batch(1)
                .with_faults(plan)
                .with_retry(RetryPolicy::none())
                .with_breaker(BreakerPolicy {
                    failure_threshold: 2,
                    cooldown: 3,
                }),
        );
        let answer = |tag: u64| {
            let mut request = triple_request(&module, 3);
            request.tag = tag;
            server.submit(request).unwrap().wait().unwrap()
        };
        // Two poisoned requests trip the breaker open (clock = 1 at the
        // open, so the cooldown ends at completed == 4)…
        assert!(matches!(answer(0).outcome, Err(EngineError::Panicked(_))));
        assert!(matches!(answer(1).outcome, Err(EngineError::Panicked(_))));
        // …the next two healthy-tag requests on the same key fail fast
        // without executing…
        for _ in 0..2 {
            let response = answer(100);
            assert!(matches!(response.outcome, Err(EngineError::CircuitOpen)));
            assert_eq!(response.attempts, 0, "failed fast before execution");
            assert_eq!(response.execute_ns, 0);
        }
        // …and once the cooldown elapses, a half-open probe runs for real
        // (recompiling the quarantined artifact) and closes the breaker.
        let probe = answer(101);
        assert_eq!(probe.outcome.unwrap().result, Some(MachineValue::Int(9)));
        assert_eq!(probe.attempts, 1);
        let after = answer(102);
        assert_eq!(after.outcome.unwrap().result, Some(MachineValue::Int(9)));
        let stats = server.shutdown();
        assert_eq!(stats.breaker_opened, 1);
        assert_eq!(stats.breaker_half_opened, 1);
        assert_eq!(stats.breaker_closed, 1);
        assert_eq!(stats.failed_fast, 2);
        assert_eq!(stats.completed, 6);
        assert_eq!(
            stats.cache.compiles, 2,
            "opening quarantined the artifact; the probe compiled fresh"
        );
    }

    #[test]
    fn an_open_breaker_degrades_to_the_fallback_target_when_configured() {
        let module = triple_module();
        let plan = FaultPlan::seeded(1).with_rule(FaultRule {
            site: FaultSite::Execute,
            kind: FaultKind::Panic,
            selector: FaultSelector::tag_range(0, 1),
            persistent: true,
        });
        let server = Server::start(
            ServerConfig::default()
                .with_workers(1)
                .with_max_batch(1)
                .with_faults(plan)
                .with_retry(RetryPolicy::none())
                .with_breaker(BreakerPolicy {
                    failure_threshold: 1,
                    cooldown: 1_000_000,
                })
                .with_fallback(TargetDesc::powerpc()),
        );
        let answer = |tag: u64| {
            let mut request = triple_request(&module, 5);
            request.tag = tag;
            server.submit(request).unwrap().wait().unwrap()
        };
        assert!(matches!(answer(0).outcome, Err(EngineError::Panicked(_))));
        let rerouted = answer(50);
        assert!(rerouted.degraded, "open breaker + fallback = degradation");
        assert_eq!(
            rerouted.outcome.unwrap().result,
            Some(MachineValue::Int(15)),
            "the fallback target still produces the right answer"
        );
        let stats = server.shutdown();
        assert_eq!(stats.degraded, 1);
        assert_eq!(stats.failed_fast, 0, "degradation replaces failing fast");
        assert!(
            stats
                .per_target
                .iter()
                .any(|(t, c)| t == "powerpc" && *c == 1),
            "degraded work is attributed to the target that served it: {:?}",
            stats.per_target
        );
    }

    #[test]
    fn backoff_is_deterministic_jittered_and_capped() {
        let policy = RetryPolicy {
            max_retries: 10,
            base_backoff_ns: 1_000,
            max_backoff_ns: 8_000,
        };
        for attempt in 1..=10u32 {
            let a = backoff_ns(&policy, 42, 7, attempt);
            let b = backoff_ns(&policy, 42, 7, attempt);
            assert_eq!(a, b, "same (seed, tag, attempt) → same backoff");
            let band = (policy.base_backoff_ns << (attempt - 1).min(20)).min(policy.max_backoff_ns);
            assert!(
                a >= band / 2 && a <= band,
                "attempt {attempt}: {a} ∉ [{}, {band}]",
                band / 2
            );
        }
        assert_ne!(
            backoff_ns(&policy, 42, 7, 1),
            backoff_ns(&policy, 43, 7, 1),
            "different seeds jitter differently (for these inputs)"
        );
        assert!(
            backoff_ns(&policy, 42, 7, 64) <= policy.max_backoff_ns,
            "huge attempt counts must not overflow the shift"
        );
    }

    #[test]
    fn fault_plan_decisions_are_pure_and_seeded() {
        let rule = FaultRule {
            site: FaultSite::Execute,
            kind: FaultKind::Transient,
            selector: FaultSelector::Probability(0.5),
            persistent: true,
        };
        let plan_a = FaultPlan::seeded(1).with_rule(rule);
        let plan_b = FaultPlan::seeded(2).with_rule(rule);
        let picks = |plan: &FaultPlan| -> Vec<bool> {
            (0..256)
                .map(|tag| plan.at(FaultSite::Execute, tag, 0).is_some())
                .collect()
        };
        assert_eq!(picks(&plan_a), picks(&plan_a), "replay is identical");
        assert_ne!(picks(&plan_a), picks(&plan_b), "the seed matters");
        let hits = picks(&plan_a).iter().filter(|&&h| h).count();
        assert!(
            (64..192).contains(&hits),
            "p=0.5 over 256 tags should hit roughly half, got {hits}"
        );
        // Slot selectors window precisely, and non-persistent rules clear
        // on retry.
        let slot = FaultPlan::seeded(0).with_rule(FaultRule {
            site: FaultSite::Compile,
            kind: FaultKind::Panic,
            selector: FaultSelector::Slot {
                modulo: 3,
                remainder: 1,
                lo: 10,
                hi: 20,
            },
            persistent: false,
        });
        let selected: Vec<u64> = (0..30)
            .filter(|&tag| slot.at(FaultSite::Compile, tag, 0).is_some())
            .collect();
        assert_eq!(selected, vec![10, 13, 16, 19]);
        assert!(
            slot.at(FaultSite::Compile, 10, 1).is_none(),
            "non-persistent faults never fire on retries"
        );
        assert!(
            slot.at(FaultSite::Execute, 10, 0).is_none(),
            "rules are site-specific"
        );
    }

    #[test]
    fn panic_payloads_are_capped_at_a_fixed_size() {
        let short = panic_message(&"boom".to_owned() as &(dyn std::any::Any + Send));
        assert_eq!(short, "boom");
        let huge = "x".repeat(PANIC_MESSAGE_CAP * 64);
        let capped = panic_message(&huge as &(dyn std::any::Any + Send));
        assert!(
            capped.len() < PANIC_MESSAGE_CAP + 32,
            "got {}",
            capped.len()
        );
        assert!(capped.ends_with("… [truncated]"));
        assert!(capped.starts_with(&"x".repeat(PANIC_MESSAGE_CAP)));
        // A multibyte char straddling the cap must not split (that would
        // panic inside the panic handler — the one place that must not).
        let awkward = format!("{}é{}", "y".repeat(PANIC_MESSAGE_CAP - 1), "z".repeat(64));
        let cut = panic_message(&awkward as &(dyn std::any::Any + Send));
        assert!(cut.ends_with("… [truncated]"));
        assert!(!cut.contains('\u{FFFD}'));
        assert_eq!(
            &cut[..PANIC_MESSAGE_CAP - 1],
            &"y".repeat(PANIC_MESSAGE_CAP - 1)
        );
    }
}
