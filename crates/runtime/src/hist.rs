//! Fixed-bucket log-scale histograms for serving-latency observability.
//!
//! The serving tier records a queue-wait and an execute duration for every
//! request it answers, plus the size of every batch it drains. Those
//! recordings happen on the worker hot path, so the data structure is a
//! fixed array of counters — **no allocation, ever**: recording is one
//! bucket-index computation (a couple of shifts) and three integer updates.
//!
//! # Bucketing
//!
//! Values 0–3 get exact buckets. From 4 upward each power-of-two octave is
//! split into [`SUB_BUCKETS`] sub-buckets, i.e. the bucket of `v` is derived
//! from its floor-log2 plus the next two significant bits. That keeps the
//! relative quantile error under 25% across the whole `u64` range while the
//! table stays [`BUCKETS`] counters (2 KiB) — the classic HdrHistogram
//! trade, sized for nanosecond latencies from tens of nanoseconds to
//! minutes.
//!
//! Bucket boundaries are exact at powers of two, [`Histogram::quantile`]
//! interpolates linearly inside a bucket, and [`Histogram::merge`] is a
//! plain counter sum — associative and commutative, which lets each worker
//! keep its own histogram (uncontended) and the stats path fold them.

/// Sub-buckets per power-of-two octave.
pub const SUB_BUCKETS: usize = 4;

/// Total number of counters in a [`Histogram`].
///
/// Index 0–3 are the exact buckets for values 0–3; the remaining octaves
/// (`log2(v)` from 2 to 63) contribute [`SUB_BUCKETS`] buckets each:
/// `4 + 62 * 4 = 252`, rounded up to a power of two for the array.
pub const BUCKETS: usize = 256;

/// A fixed-size log-scale histogram of `u64` samples (typically
/// nanoseconds, or batch sizes).
///
/// Recording never allocates; merging is associative; quantiles are
/// deterministic functions of the recorded multiset (up to bucket
/// resolution). The exact minimum, maximum, count and sum are tracked next
/// to the buckets, so `min()`/`max()`/`mean()` are precise even though
/// quantiles are bucketed.
#[derive(Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("min", &self.min)
            .field("max", &self.max)
            .field("p50", &self.quantile(0.50))
            .field("p99", &self.quantile(0.99))
            .finish_non_exhaustive()
    }
}

/// Bucket index of `v`: exact below 4, then `SUB_BUCKETS` per octave.
fn bucket_of(v: u64) -> usize {
    if v < 4 {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros() as usize; // floor(log2 v) >= 2
    let sub = ((v >> (exp - 2)) & 0b11) as usize; // next two significant bits
    let idx = (exp - 1) * SUB_BUCKETS + sub;
    idx.min(BUCKETS - 1)
}

/// Inclusive lower bound of bucket `idx` (the smallest value that maps to
/// it) — the inverse of [`bucket_of`] at bucket granularity.
fn bucket_low(idx: usize) -> u64 {
    if idx < 4 {
        return idx as u64;
    }
    let exp = idx / SUB_BUCKETS + 1;
    if exp >= 64 {
        // Buckets past the top octave are unreachable ([`bucket_of`] maps
        // every u64 below them); their bound saturates instead of shifting
        // out of range.
        return u64::MAX;
    }
    let sub = (idx % SUB_BUCKETS) as u64;
    (4 + sub) << (exp - 2)
}

/// Exclusive upper bound of bucket `idx` (saturating at `u64::MAX` for the
/// last bucket).
fn bucket_high(idx: usize) -> u64 {
    if idx + 1 >= BUCKETS {
        u64::MAX
    } else {
        bucket_low(idx + 1)
    }
}

/// Sentinel returned by [`Histogram::quantile`] (and `p50`/`p99`/`p999`) on
/// an **empty** histogram.
///
/// An empty distribution has no quantiles; returning 0 — a legal latency —
/// would let a counter that never fired render as "p99 = 0 ns", which reads
/// as *excellent* rather than *absent*. `u64::MAX` is unreachable as a real
/// sample quantile in practice (it would mean every recorded nanosecond
/// latency saturated), so display paths can (and do) test for it and render
/// "n/a".
pub const EMPTY_QUANTILE: u64 = u64::MAX;

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Histogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample. Constant time, no allocation.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact arithmetic mean of the recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) of the recorded samples, linearly
    /// interpolated inside the bucket the quantile rank lands in and clamped
    /// to the exact observed `[min, max]`. Returns [`EMPTY_QUANTILE`]
    /// (`u64::MAX`) for an empty histogram — an empty distribution has no
    /// quantiles, and 0 would read as a (suspiciously perfect) latency.
    ///
    /// Deterministic: the result depends only on the recorded multiset (and
    /// the fixed bucket layout), never on recording order.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return EMPTY_QUANTILE;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the sample the quantile asks for, 1-based: ceil(q * count),
        // at least 1 — p0 is the minimum, p100 the maximum.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        // The extreme ranks are tracked exactly — p0 is the observed
        // minimum, p100 the observed maximum — so return them directly
        // instead of through bucket interpolation.
        if rank == 1 {
            return self.min;
        }
        if rank >= self.count {
            return self.max;
        }
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                // Interpolate the rank's 0-based position (in [0, 1)) across
                // the bucket span; a bucket holding one distinct value (all
                // buckets below 8, e.g. batch sizes) yields it exactly.
                let into = (rank - seen - 1) as f64 / c as f64;
                let low = bucket_low(idx);
                let high = bucket_high(idx).min(self.max.saturating_add(1));
                let span = high.saturating_sub(low);
                let v = low + (span as f64 * into) as u64;
                return v.clamp(self.min, self.max);
            }
            seen += c;
        }
        self.max
    }

    /// Median (`quantile(0.50)`).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th percentile (`quantile(0.99)`).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile (`quantile(0.999)`).
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Fold `other` into `self`: the result is the histogram of the combined
    /// sample multiset. Associative and commutative, so per-worker
    /// histograms can be merged in any order (or grouping) and agree.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The non-empty buckets as `(inclusive lower bound, count)` pairs, in
    /// increasing value order — the distribution view used for batch sizes.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_low(i), c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_get_exact_buckets() {
        for v in 0..4u64 {
            assert_eq!(bucket_of(v), v as usize);
            assert_eq!(bucket_low(v as usize), v);
        }
        // 4..8 is still exact: one sub-bucket per value.
        for v in 4..8u64 {
            assert_eq!(bucket_low(bucket_of(v)), v);
        }
    }

    #[test]
    fn bucket_boundaries_are_exact_at_powers_of_two() {
        for exp in 2..62 {
            let v = 1u64 << exp;
            let idx = bucket_of(v);
            assert_eq!(bucket_low(idx), v, "2^{exp} must start its own bucket");
            // The value just below a power of two lands in the previous
            // bucket; the value itself opens a new one.
            assert_eq!(bucket_of(v - 1) + 1, idx, "2^{exp}-1 sits one bucket lower");
        }
    }

    #[test]
    fn bucketing_is_monotone_and_bounded() {
        let samples = [
            0u64,
            1,
            2,
            3,
            4,
            5,
            7,
            8,
            15,
            16,
            100,
            1_000,
            1_000_000,
            u64::MAX / 2,
            u64::MAX,
        ];
        let mut last = 0usize;
        for &v in &samples {
            let idx = bucket_of(v);
            assert!(idx >= last, "bucket_of must be monotone (at {v})");
            assert!(idx < BUCKETS);
            assert!(bucket_low(idx) <= v, "lower bound exceeds value at {v}");
            assert!(v < bucket_high(idx) || bucket_high(idx) == u64::MAX);
            last = idx;
        }
    }

    #[test]
    fn exact_stats_track_min_max_sum_mean() {
        let mut h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 60);
        assert_eq!(h.min(), 10);
        assert_eq!(h.max(), 30);
        assert!((h.mean() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_of_uniform_ramp_interpolate_within_buckets() {
        // 1..=1000: p50 must land near 500, p99 near 990, p999 near 999 —
        // within one bucket's relative resolution (25%).
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let close = |got: u64, want: u64| {
            let tol = (want / 4).max(2);
            assert!(
                got >= want.saturating_sub(tol) && got <= want + tol,
                "quantile {got} too far from {want}"
            );
        };
        close(h.p50(), 500);
        close(h.p99(), 990);
        close(h.p999(), 999);
        // Extremes are exact (clamped to observed min/max).
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(1.0), 1000);
    }

    #[test]
    fn quantiles_of_exact_small_values_are_exact() {
        // Everything below 8 has an exact bucket, so quantiles are exact.
        let mut h = Histogram::new();
        for (v, n) in [(1u64, 50), (2, 30), (4, 15), (7, 5)] {
            for _ in 0..n {
                h.record(v);
            }
        }
        assert_eq!(h.p50(), 1);
        assert_eq!(h.quantile(0.60), 2);
        assert_eq!(h.quantile(0.90), 4);
        assert_eq!(h.p99(), 7);
        assert_eq!(h.p999(), 7);
    }

    #[test]
    fn merge_is_associative_and_matches_combined_recording() {
        let samples_a = [3u64, 17, 900, 4096];
        let samples_b = [1u64, 1, 250_000];
        let samples_c = [64u64, 65_536, 12];
        let record = |vals: &[u64]| {
            let mut h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let (a, b, c) = (record(&samples_a), record(&samples_b), record(&samples_c));

        // (a + b) + c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a + (b + c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right, "merge must be associative");

        // Both equal recording everything into one histogram.
        let mut all = Histogram::new();
        for &v in samples_a.iter().chain(&samples_b).chain(&samples_c) {
            all.record(v);
        }
        assert_eq!(left, all, "merge must equal combined recording");
        assert_eq!(all.count(), 10);
        assert_eq!(all.min(), 1);
        assert_eq!(all.max(), 250_000);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut h = Histogram::new();
        h.record(42);
        let before = h.clone();
        h.merge(&Histogram::new());
        assert_eq!(h, before);
        let mut empty = Histogram::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn empty_quantiles_return_the_sentinel_not_zero() {
        let h = Histogram::new();
        for q in [0.0, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(h.quantile(q), EMPTY_QUANTILE, "empty quantile({q})");
        }
        assert_eq!(h.p50(), EMPTY_QUANTILE);
        assert_eq!(h.p99(), EMPTY_QUANTILE);
        assert_eq!(h.p999(), EMPTY_QUANTILE);
        // One sample is enough to leave sentinel territory at every rank.
        let mut h = h;
        h.record(0);
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(h.quantile(q), 0, "single-sample quantile({q})");
        }
    }

    #[test]
    fn nonzero_buckets_expose_the_distribution() {
        let mut h = Histogram::new();
        for _ in 0..7 {
            h.record(1);
        }
        for _ in 0..2 {
            h.record(4);
        }
        h.record(5);
        assert_eq!(h.nonzero_buckets(), vec![(1, 7), (4, 2), (5, 1)]);
    }
}
