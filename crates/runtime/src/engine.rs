//! The shared, cached execution layer of the runtime.
//!
//! Split compilation (Cohen & Rohou, DAC 2010) only pays off if the expensive
//! work happens **once**: the offline compiler analyzes and annotates a module
//! a single time, and the online step for each concrete core stays cheap. The
//! [`ExecutionEngine`] enforces the same discipline at run time: it owns one
//! deployed module (behind an [`Arc`], so deployments can be shared) and a
//! code cache keyed by `(target fingerprint, [`JitOptions`])`, so each
//! distinct (core type, JIT configuration) pair is compiled **exactly once**
//! no matter how many kernels, repeats or cores ask for it. Compiled programs
//! are handed out as [`Arc<CompiledModule>`] — nothing is ever recompiled or
//! cloned on the hot path.
//!
//! The engine is `Send + Sync`: the cache sits behind a mutex and the
//! [`CacheStats`] counters are atomic, so future work can fan kernel
//! executions out across threads against one shared engine.
//!
//! # Example
//!
//! ```
//! use splitc_minic::compile_source;
//! use splitc_jit::JitOptions;
//! use splitc_runtime::ExecutionEngine;
//! use splitc_targets::{MachineValue, TargetDesc};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let module = compile_source(
//!     "fn triple(x: i32) -> i32 { return 3 * x; }",
//!     "kernels",
//! )?;
//! let engine = ExecutionEngine::new(module);
//!
//! let target = TargetDesc::powerpc();
//! let mut mem = vec![0u8; 64];
//! for _ in 0..10 {
//!     let run = engine.run(&target, &JitOptions::split(), "triple", &[MachineValue::Int(14)], &mut mem)?;
//!     assert_eq!(run.result, Some(MachineValue::Int(42)));
//! }
//! // Ten runs, one online compilation.
//! assert_eq!(engine.stats().compiles, 1);
//! assert_eq!(engine.stats().hits, 9);
//! # Ok(())
//! # }
//! ```

use splitc_jit::{compile_module, JitError, JitOptions, JitStats};
use splitc_minic::CompileError;
use splitc_targets::{MProgram, MachineValue, SimError, SimStats, Simulator, TargetDesc};
use splitc_vbc::Module;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Any error that can occur along the offline/online pipeline or at run time.
///
/// This is the single error type of the whole execution stack; the historical
/// `PipelineError` (core) and `RuntimeError` (runtime) names are aliases of
/// it, so both halves of the system report failures identically.
#[derive(Debug)]
pub enum EngineError {
    /// Front-end (mini-C) error during the offline step.
    Frontend(CompileError),
    /// Online compilation failed.
    Jit(JitError),
    /// Simulated execution failed.
    Sim(SimError),
    /// The requested kernel does not exist in the deployed module.
    UnknownKernel(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Frontend(e) => write!(f, "front-end error: {e}"),
            EngineError::Jit(e) => write!(f, "online compilation failed: {e}"),
            EngineError::Sim(e) => write!(f, "simulated execution failed: {e}"),
            EngineError::UnknownKernel(k) => write!(f, "unknown kernel {k}"),
        }
    }
}

impl Error for EngineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EngineError::Frontend(e) => Some(e),
            EngineError::Jit(e) => Some(e),
            EngineError::Sim(e) => Some(e),
            EngineError::UnknownKernel(_) => None,
        }
    }
}

impl From<CompileError> for EngineError {
    fn from(e: CompileError) -> Self {
        EngineError::Frontend(e)
    }
}

impl From<JitError> for EngineError {
    fn from(e: JitError) -> Self {
        EngineError::Jit(e)
    }
}

impl From<SimError> for EngineError {
    fn from(e: SimError) -> Self {
        EngineError::Sim(e)
    }
}

/// One online compilation of the deployed module for one (target, options)
/// pair: the machine program plus the JIT statistics of producing it.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledModule {
    /// The generated machine program.
    pub program: MProgram,
    /// Cost and outcome of the online compilation that produced it.
    pub jit: JitStats,
}

/// Result of executing one kernel once.
///
/// This unifies the historical `RunMeasurement` (core) and `RunOutcome`
/// (runtime) result types — both names remain as aliases.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Execution {
    /// The kernel's return value, if any.
    pub result: Option<MachineValue>,
    /// Raw simulator statistics (cycles, instructions, memory traffic, spills).
    pub stats: SimStats,
    /// Online compilation statistics for the module on this target (cached:
    /// the same values are reported for every run that reuses the program).
    pub jit: JitStats,
    /// Cycles scaled by the target's clock factor, comparable across cores.
    pub scaled_cycles: f64,
}

impl Execution {
    /// Dynamic spill traffic (stores plus reloads) observed during execution.
    pub fn spill_ops(&self) -> u64 {
        self.stats.spill_stores + self.stats.spill_reloads
    }
}

/// Code-cache counters of an [`ExecutionEngine`].
///
/// `compiles + hits` is the total number of program lookups; the difference
/// between the two is the amortization story of the paper: after the first
/// run per (target, options) pair, the online compiler never runs again.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Online compilations performed (cache misses).
    pub compiles: u64,
    /// Lookups served from the cache without compiling.
    pub hits: u64,
}

impl std::ops::AddAssign for CacheStats {
    fn add_assign(&mut self, other: CacheStats) {
        self.compiles += other.compiles;
        self.hits += other.hits;
    }
}

impl CacheStats {
    /// Total lookups (compiles plus hits).
    pub fn lookups(&self) -> u64 {
        self.compiles + self.hits
    }

    /// Fraction of lookups served from the cache (0.0 when there were none).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }
}

/// A deployed module plus a shared cache of online-compiled code.
///
/// See the [module documentation](self) for the full story; in short, the
/// engine guarantees one online compilation per distinct
/// `(target fingerprint, JitOptions)` pair for the lifetime of the
/// deployment, and shares the compiled programs via [`Arc`].
#[derive(Debug)]
pub struct ExecutionEngine {
    module: Arc<Module>,
    cache: Mutex<HashMap<(u64, JitOptions), Arc<CompiledModule>>>,
    compiles: AtomicU64,
    hits: AtomicU64,
}

impl ExecutionEngine {
    /// Deploy `module` into a fresh engine with an empty code cache.
    pub fn new(module: Module) -> Self {
        ExecutionEngine::from_arc(Arc::new(module))
    }

    /// Deploy an already-shared module without cloning it.
    pub fn from_arc(module: Arc<Module>) -> Self {
        ExecutionEngine {
            module,
            cache: Mutex::new(HashMap::new()),
            compiles: AtomicU64::new(0),
            hits: AtomicU64::new(0),
        }
    }

    /// The deployed bytecode module.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// The deployed module as a shareable handle.
    pub fn module_arc(&self) -> Arc<Module> {
        Arc::clone(&self.module)
    }

    /// Compile the module for `target` under `options`, or fetch the program
    /// from the cache. Exactly one compilation ever happens per distinct
    /// `(target fingerprint, options)` pair.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Jit`] if online compilation fails.
    pub fn program_for(
        &self,
        target: &TargetDesc,
        options: &JitOptions,
    ) -> Result<Arc<CompiledModule>, EngineError> {
        let key = (target.fingerprint(), *options);
        let mut cache = self.cache.lock().expect("engine cache poisoned");
        if let Some(compiled) = cache.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(compiled));
        }
        // Compile under the lock: a concurrent request for the same pair
        // waits instead of duplicating the work (cold compiles for different
        // targets serialize too, which a future PR can shard if it matters).
        let (program, jit) = compile_module(&self.module, target, options)?;
        let compiled = Arc::new(CompiledModule { program, jit });
        cache.insert(key, Arc::clone(&compiled));
        self.compiles.fetch_add(1, Ordering::Relaxed);
        Ok(compiled)
    }

    /// JIT statistics for `target` under `options` (compiling on demand).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Jit`] if online compilation fails.
    pub fn jit_stats(
        &self,
        target: &TargetDesc,
        options: &JitOptions,
    ) -> Result<JitStats, EngineError> {
        Ok(self.program_for(target, options)?.jit)
    }

    /// Warm the cache for every target in `targets` under `options`.
    ///
    /// Experiments call this before their measurement loops so that no online
    /// compilation happens inside the measured region.
    ///
    /// # Errors
    ///
    /// Returns the first [`EngineError::Jit`] encountered.
    pub fn precompile<'t>(
        &self,
        targets: impl IntoIterator<Item = &'t TargetDesc>,
        options: &JitOptions,
    ) -> Result<(), EngineError> {
        for target in targets {
            self.program_for(target, options)?;
        }
        Ok(())
    }

    /// Run `kernel` with `args` against `mem` on `target` under `options`,
    /// compiling (once) on demand.
    ///
    /// # Errors
    ///
    /// Fails if the kernel is unknown, the module cannot be compiled for the
    /// target, or the kernel traps during simulation.
    pub fn run(
        &self,
        target: &TargetDesc,
        options: &JitOptions,
        kernel: &str,
        args: &[MachineValue],
        mem: &mut [u8],
    ) -> Result<Execution, EngineError> {
        if self.module.function(kernel).is_none() {
            return Err(EngineError::UnknownKernel(kernel.to_owned()));
        }
        let compiled = self.program_for(target, options)?;
        simulate(&compiled.program, compiled.jit, target, kernel, args, mem)
    }

    /// One-shot execution without a deployment: compile `module` for
    /// `target` afresh (no cache) and run `kernel` once.
    ///
    /// This backs `splitc`'s `run_on_target` convenience wrapper; anything
    /// that runs more than once should deploy an engine instead so the
    /// compilation is amortized.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ExecutionEngine::run`].
    pub fn run_once(
        module: &Module,
        target: &TargetDesc,
        options: &JitOptions,
        kernel: &str,
        args: &[MachineValue],
        mem: &mut [u8],
    ) -> Result<Execution, EngineError> {
        if module.function(kernel).is_none() {
            return Err(EngineError::UnknownKernel(kernel.to_owned()));
        }
        let (program, jit) = compile_module(module, target, options)?;
        simulate(&program, jit, target, kernel, args, mem)
    }

    /// Code-cache counters since deployment.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            compiles: self.compiles.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
        }
    }

    /// Number of distinct (target, options) pairs compiled so far.
    pub fn compiled_variants(&self) -> usize {
        self.cache.lock().expect("engine cache poisoned").len()
    }
}

/// Simulate one kernel execution of an already-compiled program and assemble
/// the unified [`Execution`] record (shared by the cached and one-shot paths).
fn simulate(
    program: &MProgram,
    jit: JitStats,
    target: &TargetDesc,
    kernel: &str,
    args: &[MachineValue],
    mem: &mut [u8],
) -> Result<Execution, EngineError> {
    let mut sim = Simulator::new(program, target);
    let result = sim.run(kernel, args, mem)?;
    let stats = sim.stats();
    Ok(Execution {
        result,
        stats,
        jit,
        scaled_cycles: stats.cycles as f64 * target.clock_scale,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitc_minic::compile_source;
    use splitc_opt::{optimize_module, OptOptions};

    fn deployed() -> ExecutionEngine {
        let mut m = compile_source(
            "fn dscal(n: i32, a: f32, x: *f32) {
                for (let i: i32 = 0; i < n; i = i + 1) { x[i] = a * x[i]; }
            }
            fn triple(x: i32) -> i32 { return 3 * x; }",
            "k",
        )
        .unwrap();
        optimize_module(&mut m, &OptOptions::full());
        ExecutionEngine::new(m)
    }

    #[test]
    fn engine_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ExecutionEngine>();
    }

    #[test]
    fn one_compile_per_target_and_options_pair() {
        let engine = deployed();
        let targets = [TargetDesc::x86_sse(), TargetDesc::powerpc()];
        let configs = [JitOptions::split(), JitOptions::online_greedy()];
        let mut mem = vec![0u8; 256];
        for _ in 0..5 {
            for target in &targets {
                for options in &configs {
                    let run = engine
                        .run(target, options, "triple", &[MachineValue::Int(7)], &mut mem)
                        .unwrap();
                    assert_eq!(run.result, Some(MachineValue::Int(21)));
                }
            }
        }
        let stats = engine.stats();
        assert_eq!(stats.compiles, (targets.len() * configs.len()) as u64);
        assert_eq!(stats.lookups(), 5 * 2 * 2);
        assert_eq!(stats.hits, stats.lookups() - stats.compiles);
        assert_eq!(engine.compiled_variants(), 4);
        assert!(stats.hit_rate() > 0.7);
    }

    #[test]
    fn cores_with_equal_fingerprints_share_code() {
        let engine = deployed();
        let options = JitOptions::split();
        let a = engine
            .program_for(&TargetDesc::cell_spu(), &options)
            .unwrap();
        let b = engine
            .program_for(&TargetDesc::cell_spu(), &options)
            .unwrap();
        assert!(
            Arc::ptr_eq(&a, &b),
            "identical targets must share one Arc'd program"
        );
        assert_eq!(engine.stats().compiles, 1);
    }

    #[test]
    fn precompile_moves_all_compilation_out_of_the_run_path() {
        let engine = deployed();
        let targets = TargetDesc::table1_targets();
        let options = JitOptions::split();
        engine.precompile(&targets, &options).unwrap();
        let compiled_before = engine.stats().compiles;
        let mut mem = vec![0u8; 256];
        for target in &targets {
            engine
                .run(
                    target,
                    &options,
                    "triple",
                    &[MachineValue::Int(1)],
                    &mut mem,
                )
                .unwrap();
        }
        assert_eq!(
            engine.stats().compiles,
            compiled_before,
            "runs must all be cache hits"
        );
    }

    #[test]
    fn unknown_kernels_are_rejected_without_compiling() {
        let engine = deployed();
        let mut mem = vec![0u8; 64];
        let err = engine
            .run(
                &TargetDesc::x86_sse(),
                &JitOptions::split(),
                "nope",
                &[],
                &mut mem,
            )
            .unwrap_err();
        assert!(matches!(err, EngineError::UnknownKernel(_)));
        assert!(err.to_string().contains("nope"));
        assert_eq!(engine.stats().lookups(), 0);
    }

    #[test]
    fn engine_can_be_shared_across_threads() {
        let engine = std::sync::Arc::new(deployed());
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let engine = std::sync::Arc::clone(&engine);
                std::thread::spawn(move || {
                    let mut mem = vec![0u8; 256];
                    let run = engine
                        .run(
                            &TargetDesc::x86_sse(),
                            &JitOptions::split(),
                            "triple",
                            &[MachineValue::Int(i)],
                            &mut mem,
                        )
                        .unwrap();
                    assert_eq!(run.result, Some(MachineValue::Int(3 * i)));
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(engine.stats().compiles, 1, "four threads, one compilation");
    }
}
