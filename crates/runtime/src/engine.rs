//! The shared, cached execution layer of the runtime.
//!
//! Split compilation (Cohen & Rohou, DAC 2010) only pays off if the expensive
//! work happens **once**: the offline compiler analyzes and annotates a module
//! a single time, and the online step for each concrete core stays cheap. The
//! [`ExecutionEngine`] enforces the same discipline at run time: it owns one
//! deployed module (behind an [`Arc`], so deployments can be shared) and a
//! code cache keyed by `(target fingerprint, [`JitOptions`])`, so each
//! distinct (core type, JIT configuration) pair is compiled **exactly once**
//! no matter how many kernels, repeats or cores ask for it. Compiled programs
//! are handed out as [`Arc<CompiledModule>`] — nothing is ever recompiled or
//! cloned on the hot path.
//!
//! Since the pre-decoded execution representation landed, the deploy-time
//! step also *prepares* each compiled program
//! ([`splitc_targets::PreparedProgram`]): blocks are flattened into one
//! linear instruction stream, jumps become instruction offsets, call targets
//! become dense function indices and every register index is validated once.
//! Cached runs execute that prepared form directly; with
//! [`ExecutionEngine::run_pooled`] they also recycle call frames from a
//! caller-held [`FramePool`], so the steady-state run path performs no
//! allocation and no per-instruction decoding at all.
//!
//! # Concurrency
//!
//! The engine is `Send + Sync` and built for many threads hammering one
//! deployment (see [`crate::sweep`]):
//!
//! * the cache is **sharded** into [`SHARD_COUNT`] independently locked maps,
//!   so lookups and cold compiles for different (target, options) pairs never
//!   contend on one global lock;
//! * compilation happens **outside** the shard lock. A cold lookup registers
//!   an *in-flight* marker under the lock, releases it, and compiles; a second
//!   thread racing on the same cold key finds the marker and waits on it
//!   instead of compiling again. Two threads racing on one cold key produce
//!   **exactly one** compilation — the waiter counts as a cache hit;
//! * the [`CacheStats`] counters live **inside the shards**, mutated only
//!   under the owning shard's lock, and [`ExecutionEngine::snapshot`] reads
//!   them with every shard lock held at once. A snapshot taken while workers
//!   are mid-flight is therefore *consistent*: it never tears a single
//!   lookup apart (each lookup bumps exactly one counter, atomically with
//!   the map change it describes), successive snapshots are pointwise
//!   non-decreasing, and `compiles + disk_hits - evictions` always equals
//!   the number of resident entries ([`CacheSnapshot::live`]). The serving layer
//!   ([`crate::serve`]) relies on exactly these guarantees when it reports
//!   cache counters from a live worker pool.
//!
//! # Eviction
//!
//! By default the cache grows without bound (one entry per distinct pair,
//! which is small). Long-running multi-tenant deployments can bound it with
//! [`ExecutionEngine::set_cache_capacity`]: inserts beyond the bound evict the
//! least-recently-used entry (tracked by a global logical clock across all
//! shards) and count into [`CacheStats::evictions`]. A re-request of an
//! evicted pair recompiles — bit-identically, since online compilation is
//! deterministic — and counts as a fresh compile.
//!
//! # Example
//!
//! ```
//! use splitc_minic::compile_source;
//! use splitc_jit::JitOptions;
//! use splitc_runtime::ExecutionEngine;
//! use splitc_targets::{MachineValue, TargetDesc};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let module = compile_source(
//!     "fn triple(x: i32) -> i32 { return 3 * x; }",
//!     "kernels",
//! )?;
//! let engine = ExecutionEngine::new(module);
//!
//! let target = TargetDesc::powerpc();
//! let mut mem = vec![0u8; 64];
//! for _ in 0..10 {
//!     let run = engine.run(&target, &JitOptions::split(), "triple", &[MachineValue::Int(14)], &mut mem)?;
//!     assert_eq!(run.result, Some(MachineValue::Int(42)));
//! }
//! // Ten runs, one online compilation.
//! assert_eq!(engine.stats().compiles, 1);
//! assert_eq!(engine.stats().hits, 9);
//! # Ok(())
//! # }
//! ```

use crate::store::{ArtifactStore, StoreKey, StoreLoad};
use splitc_jit::{compile_module, JitError, JitOptions, JitStats};
use splitc_minic::CompileError;
use splitc_targets::{
    Fnv1a, FramePool, MProgram, MachineValue, PreparedProgram, SimError, SimStats, TargetDesc,
    DEFAULT_SIM_FUEL,
};
use splitc_vbc::{encode_module, Module};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of independently locked cache shards.
///
/// Cold compiles for keys in different shards proceed fully in parallel; even
/// within one shard the lock is only held for map bookkeeping, never across a
/// compilation.
pub const SHARD_COUNT: usize = 8;

/// Any error that can occur along the offline/online pipeline or at run time.
///
/// This is the single error type of the whole execution stack; the historical
/// `PipelineError` (core) and `RuntimeError` (runtime) names are aliases of
/// it, so both halves of the system report failures identically.
#[derive(Debug)]
pub enum EngineError {
    /// Front-end (mini-C) error during the offline step.
    Frontend(CompileError),
    /// Online compilation failed.
    Jit(JitError),
    /// Simulated execution failed.
    Sim(SimError),
    /// The requested kernel does not exist in the deployed module.
    UnknownKernel(String),
    /// Execution panicked (caught by the serving tier's panic-safe worker
    /// loop, which answers the client with this instead of dying). The
    /// payload is the panic message, truncated to a fixed cap by the
    /// serving tier so a pathological payload cannot bloat responses.
    Panicked(String),
    /// The request's deadline passed before it finished: either shed at
    /// dequeue (it expired while queued) or cancelled cooperatively
    /// mid-execution. Says nothing about the program.
    DeadlineExceeded,
    /// The request's (module, target, options) key has a tripped circuit
    /// breaker and no fallback target is configured, so the server failed
    /// fast instead of burning a worker on a known-bad compile.
    CircuitOpen,
    /// A transient infrastructure failure (e.g. an injected fault from a
    /// chaos plan). Retryable, unlike the semantic errors above.
    Transient(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Frontend(e) => write!(f, "front-end error: {e}"),
            EngineError::Jit(e) => write!(f, "online compilation failed: {e}"),
            EngineError::Sim(e) => write!(f, "simulated execution failed: {e}"),
            EngineError::UnknownKernel(k) => write!(f, "unknown kernel {k}"),
            EngineError::Panicked(msg) => write!(f, "execution panicked: {msg}"),
            EngineError::DeadlineExceeded => write!(f, "deadline exceeded"),
            EngineError::CircuitOpen => write!(f, "circuit breaker open"),
            EngineError::Transient(msg) => write!(f, "transient failure: {msg}"),
        }
    }
}

impl Error for EngineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EngineError::Frontend(e) => Some(e),
            EngineError::Jit(e) => Some(e),
            EngineError::Sim(e) => Some(e),
            EngineError::UnknownKernel(_) => None,
            EngineError::Panicked(_) => None,
            EngineError::DeadlineExceeded => None,
            EngineError::CircuitOpen => None,
            EngineError::Transient(_) => None,
        }
    }
}

impl From<CompileError> for EngineError {
    fn from(e: CompileError) -> Self {
        EngineError::Frontend(e)
    }
}

impl From<JitError> for EngineError {
    fn from(e: JitError) -> Self {
        EngineError::Jit(e)
    }
}

impl From<SimError> for EngineError {
    fn from(e: SimError) -> Self {
        EngineError::Sim(e)
    }
}

/// One online compilation of the deployed module for one (target, options)
/// pair: the machine program, the JIT statistics of producing it, and the
/// pre-decoded execution form built at deploy time.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledModule {
    /// The generated machine program.
    pub program: MProgram,
    /// Cost and outcome of the online compilation that produced it.
    pub jit: JitStats,
    /// Deploy-time pre-decoded form of `program`: flat instruction streams,
    /// resolved jumps and call indices, prepare-time-validated registers.
    /// Every run served from the cache executes this, never re-decoding the
    /// `MProgram` — the split-compilation discipline applied to execution.
    pub prepared: PreparedProgram,
}

/// Result of executing one kernel once.
///
/// This unifies the historical `RunMeasurement` (core) and `RunOutcome`
/// (runtime) result types — both names remain as aliases.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Execution {
    /// The kernel's return value, if any.
    pub result: Option<MachineValue>,
    /// Raw simulator statistics (cycles, instructions, memory traffic, spills).
    pub stats: SimStats,
    /// Online compilation statistics for the module on this target (cached:
    /// the same values are reported for every run that reuses the program).
    pub jit: JitStats,
    /// Cycles scaled by the target's clock factor, comparable across cores.
    pub scaled_cycles: f64,
}

impl Execution {
    /// Dynamic spill traffic (stores plus reloads) observed during execution.
    pub fn spill_ops(&self) -> u64 {
        self.stats.spill_stores + self.stats.spill_reloads
    }
}

/// Code-cache counters of an [`ExecutionEngine`].
///
/// `compiles + hits + disk_hits` is the total number of program lookups; the
/// gap between compiles and the rest is the amortization story of the paper:
/// after the first run per (target, options) pair, the online compiler never
/// runs again — unless a cache bound evicted the entry, which `evictions`
/// counts. With a persistent [`crate::ArtifactStore`] attached, even the
/// *first* lookup of a process can skip the compiler: `disk_hits` counts
/// programs loaded from a prior process's compilation, `disk_misses` cold
/// keys that had no entry on disk, and `disk_rejects` entries that existed
/// but failed validation (and were overwritten by the fresh compile). All
/// three stay 0 when no store is attached.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Online compilations performed (cache misses, including recompiles of
    /// evicted entries).
    pub compiles: u64,
    /// Lookups served from the in-memory cache without compiling (including
    /// lookups that waited on a racing thread's in-flight compilation).
    pub hits: u64,
    /// Entries removed by the LRU bound (0 while the cache is unbounded).
    pub evictions: u64,
    /// Lookups served by loading a validated artifact from the persistent
    /// store instead of compiling.
    pub disk_hits: u64,
    /// Store probes that found no entry for the key (followed by a fresh
    /// compile that then populated the store).
    pub disk_misses: u64,
    /// Store probes that found an entry but rejected it (corrupt, truncated,
    /// or version-skewed; followed by a fresh compile that overwrote it).
    pub disk_rejects: u64,
}

impl std::ops::AddAssign for CacheStats {
    fn add_assign(&mut self, other: CacheStats) {
        self.compiles += other.compiles;
        self.hits += other.hits;
        self.evictions += other.evictions;
        self.disk_hits += other.disk_hits;
        self.disk_misses += other.disk_misses;
        self.disk_rejects += other.disk_rejects;
    }
}

impl CacheStats {
    /// Total lookups (compiles plus in-memory hits plus disk hits).
    pub fn lookups(&self) -> u64 {
        self.compiles + self.hits + self.disk_hits
    }

    /// Fraction of lookups served without compiling — from the in-memory
    /// cache or the persistent store (0.0 when there were none).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            (self.hits + self.disk_hits) as f64 / self.lookups() as f64
        }
    }
}

/// Cache key: one distinct (target fingerprint, JIT configuration) pair.
type CacheKey = (u64, JitOptions);

/// The slot racing threads rendezvous on: set exactly once, either with the
/// shared compiled program or with the compile error.
type InFlightCell = OnceLock<Result<Arc<CompiledModule>, JitError>>;

/// A compiled entry plus its last-use stamp from the engine's logical clock.
#[derive(Debug)]
struct ReadyEntry {
    compiled: Arc<CompiledModule>,
    stamp: u64,
}

#[derive(Debug)]
enum ShardEntry {
    /// Compiled and cached.
    Ready(ReadyEntry),
    /// A thread is compiling this key right now; wait on the cell.
    InFlight(Arc<InFlightCell>),
}

#[derive(Debug, Default)]
struct Shard {
    entries: HashMap<CacheKey, ShardEntry>,
    /// Counters for events on this shard's keys, mutated only under the
    /// shard lock — atomically with the map change each one describes — so
    /// [`ExecutionEngine::snapshot`] (which holds every shard lock at once)
    /// observes a consistent cross-shard total.
    stats: CacheStats,
    /// Online-compilation work units spent on this shard's keys.
    online_work: u64,
}

/// A consistent view of the engine's cache, taken with every shard lock held
/// at once (see [`ExecutionEngine::snapshot`]).
///
/// Because each counter is updated under its shard's lock, atomically with
/// the cache mutation it describes, any snapshot — even one taken while
/// worker threads are mid-lookup — satisfies:
///
/// * `stats.lookups() == stats.compiles + stats.hits + stats.disk_hits`
///   (definitional);
/// * `live == stats.compiles + stats.disk_hits - stats.evictions` — every
///   resident entry got there by a compile or a validated disk load, and no
///   lookup is ever half counted;
/// * successive snapshots are pointwise non-decreasing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheSnapshot {
    /// Counter totals at the snapshot instant.
    pub stats: CacheStats,
    /// Total online-compilation work units spent at the snapshot instant.
    pub online_work: u64,
    /// Compiled entries resident at the snapshot instant; always exactly
    /// `stats.compiles + stats.disk_hits - stats.evictions`.
    pub live: usize,
}

/// Unwind-safety net for the compiling thread: if `compile_module` panics,
/// drop still removes the in-flight marker (so later lookups retry) and
/// poisons the cell with an error (so waiters wake instead of blocking
/// forever while the panic propagates).
struct InFlightGuard<'a> {
    shard: &'a Mutex<Shard>,
    key: CacheKey,
    cell: &'a Arc<InFlightCell>,
    armed: bool,
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        if let Ok(mut guard) = self.shard.lock() {
            guard.entries.remove(&self.key);
        }
        let _ = self.cell.set(Err(JitError::Internal(
            "online compilation panicked".to_owned(),
        )));
    }
}

/// A persistent store attached to an engine, with the module fingerprint
/// (over the canonical vbc encoding) that keys this deployment's entries.
#[derive(Debug)]
struct StoreHandle {
    store: Arc<ArtifactStore>,
    module_fp: u64,
}

/// What the compiling thread's pre-compile store probe found. Carried into
/// the bookkeeping paths so the right disk counter moves under the shard
/// lock, atomically with the cache mutation it explains.
enum DiskProbe {
    /// No store attached.
    NoStore,
    /// A validated artifact was loaded; no compilation needed.
    Hit(Box<CompiledModule>),
    /// No entry on disk for this key; compile and then populate it.
    Miss(StoreKey),
    /// An entry existed but failed validation; compile and overwrite it.
    Reject(StoreKey),
}

/// What `program_for` decided to do after the (brief) shard-locked lookup.
enum Role {
    /// Another thread is compiling this key; wait for its result.
    Waiter(Arc<InFlightCell>),
    /// This thread registered the in-flight marker and must compile.
    Compiler(Arc<InFlightCell>),
}

/// A deployed module plus a shared cache of online-compiled code.
///
/// See the [module documentation](self) for the full story; in short, the
/// engine guarantees one online compilation per distinct
/// `(target fingerprint, JitOptions)` pair — even under concurrent cold
/// lookups — and shares the compiled programs via [`Arc`]. An optional LRU
/// bound ([`ExecutionEngine::set_cache_capacity`]) keeps long-running
/// deployments from growing without limit.
#[derive(Debug)]
pub struct ExecutionEngine {
    module: Arc<Module>,
    shards: [Mutex<Shard>; SHARD_COUNT],
    /// Logical LRU clock; every hit or insert takes the next tick.
    clock: AtomicU64,
    /// Number of `Ready` entries across all shards.
    len: AtomicUsize,
    /// LRU bound on `len`; 0 means unbounded.
    capacity: AtomicUsize,
    /// Optional persistent artifact store probed before any cold compile
    /// (and populated after one). `None` keeps the historical behaviour.
    store: Option<StoreHandle>,
}

impl ExecutionEngine {
    /// Deploy `module` into a fresh engine with an empty, unbounded code cache.
    pub fn new(module: Module) -> Self {
        ExecutionEngine::from_arc(Arc::new(module))
    }

    /// Deploy an already-shared module without cloning it.
    pub fn from_arc(module: Arc<Module>) -> Self {
        ExecutionEngine {
            module,
            shards: std::array::from_fn(|_| Mutex::new(Shard::default())),
            clock: AtomicU64::new(0),
            len: AtomicUsize::new(0),
            capacity: AtomicUsize::new(0),
            store: None,
        }
    }

    /// Attach a persistent [`ArtifactStore`]: cold compiles first probe the
    /// store (outside every shard lock, deduplicated by the same in-flight
    /// rendezvous that dedups compiles) and populate it on miss or reject.
    ///
    /// The module fingerprint keying this deployment's entries is computed
    /// here, once, over the canonical vbc encoding. Callers that already
    /// hold that fingerprint (the serving tier does) should use
    /// [`ExecutionEngine::with_store_keyed`] and skip the re-encode.
    pub fn with_store(self, store: Arc<ArtifactStore>) -> Self {
        let module_fp = Fnv1a::hash(&encode_module(&self.module));
        self.with_store_keyed(store, module_fp)
    }

    /// Attach a persistent [`ArtifactStore`] using a caller-supplied module
    /// fingerprint (which must be the FNV-1a hash of the module's canonical
    /// vbc encoding — the value [`ExecutionEngine::with_store`] computes).
    pub fn with_store_keyed(mut self, store: Arc<ArtifactStore>, module_fp: u64) -> Self {
        self.store = Some(StoreHandle { store, module_fp });
        self
    }

    /// The attached persistent store, if any.
    pub fn store(&self) -> Option<&Arc<ArtifactStore>> {
        self.store.as_ref().map(|h| &h.store)
    }

    /// The deployed bytecode module.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// The deployed module as a shareable handle.
    pub fn module_arc(&self) -> Arc<Module> {
        Arc::clone(&self.module)
    }

    /// Bound the code cache to at most `capacity` compiled programs,
    /// evicting least-recently-used entries immediately if it is already
    /// over the bound. A `capacity` of 0 removes the bound.
    pub fn set_cache_capacity(&self, capacity: usize) {
        self.capacity.store(capacity, Ordering::Relaxed);
        self.enforce_capacity();
    }

    /// The current cache bound (0 = unbounded).
    pub fn cache_capacity(&self) -> usize {
        self.capacity.load(Ordering::Relaxed)
    }

    /// Total online-compilation work units spent by this deployment so far
    /// (summed [`JitStats::total_work`] over every compile, including
    /// recompiles after eviction).
    pub fn online_work(&self) -> u64 {
        self.snapshot().online_work
    }

    fn shard_for(&self, key: &CacheKey) -> &Mutex<Shard> {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[hasher.finish() as usize % SHARD_COUNT]
    }

    /// Compile the module for `target` under `options`, or fetch the program
    /// from the cache. Exactly one compilation ever happens per distinct
    /// `(target fingerprint, options)` pair, even when many threads request a
    /// cold pair at once: the losers of the race wait for the winner's result
    /// (and count as cache hits) instead of compiling again.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Jit`] if online compilation fails.
    pub fn program_for(
        &self,
        target: &TargetDesc,
        options: &JitOptions,
    ) -> Result<Arc<CompiledModule>, EngineError> {
        let key = (target.fingerprint(), *options);
        let shard = self.shard_for(&key);
        let role = {
            let mut guard = shard.lock().expect("engine cache shard poisoned");
            match guard.entries.get_mut(&key) {
                Some(ShardEntry::Ready(ready)) => {
                    ready.stamp = self.clock.fetch_add(1, Ordering::Relaxed);
                    let compiled = Arc::clone(&ready.compiled);
                    guard.stats.hits += 1;
                    return Ok(compiled);
                }
                Some(ShardEntry::InFlight(cell)) => Role::Waiter(Arc::clone(cell)),
                None => {
                    let cell = Arc::new(InFlightCell::new());
                    guard
                        .entries
                        .insert(key, ShardEntry::InFlight(Arc::clone(&cell)));
                    Role::Compiler(cell)
                }
            }
        };
        match role {
            Role::Waiter(cell) => match cell.wait() {
                Ok(compiled) => {
                    // The waiter's lookup counts as a hit; like every other
                    // counter update it happens under the shard lock so a
                    // concurrent snapshot stays consistent.
                    shard
                        .lock()
                        .expect("engine cache shard poisoned")
                        .stats
                        .hits += 1;
                    Ok(Arc::clone(compiled))
                }
                Err(e) => Err(EngineError::Jit(e.clone())),
            },
            Role::Compiler(cell) => {
                // Compile with no lock held: racing requests for *other* keys
                // proceed, racing requests for *this* key wait on the cell.
                // The guard keeps a JIT panic from stranding them: on unwind
                // it removes the marker and poisons the cell with an error.
                let mut guard = InFlightGuard {
                    shard,
                    key,
                    cell: &cell,
                    armed: true,
                };
                // Probe the persistent store before compiling, also outside
                // every shard lock. The in-flight marker already dedups this
                // path per cold key, so N threads (and, via the filesystem,
                // N processes) racing on one cold key perform at most one
                // disk read each — never a thundering herd of decodes.
                let probe = self.probe_store(target, options, key.0);
                if let DiskProbe::Hit(compiled) = probe {
                    let compiled: Arc<CompiledModule> = Arc::from(compiled);
                    {
                        let mut locked = shard.lock().expect("engine cache shard poisoned");
                        locked.entries.insert(
                            key,
                            ShardEntry::Ready(ReadyEntry {
                                compiled: Arc::clone(&compiled),
                                stamp: self.clock.fetch_add(1, Ordering::Relaxed),
                            }),
                        );
                        // A disk hit is a resident entry that no compile
                        // explains: it moves `disk_hits` (not `compiles`,
                        // and no online work — none was done), under the
                        // same lock as the insert, preserving the snapshot
                        // invariant `live == compiles + disk_hits -
                        // evictions`.
                        locked.stats.disk_hits += 1;
                        self.len.fetch_add(1, Ordering::Relaxed);
                    }
                    guard.armed = false;
                    let _ = cell.set(Ok(Arc::clone(&compiled)));
                    self.enforce_capacity();
                    return Ok(compiled);
                }
                // The deploy-time step is compilation *plus* pre-decoding:
                // the prepared form is built here, once, and cached with the
                // program, so no run ever pays preparation again. A prepare
                // failure means the JIT emitted invalid code — surfaced as an
                // internal JIT error so waiters rendezvous on one error type.
                let built =
                    compile_module(&self.module, target, options).and_then(|(program, jit)| {
                        let prepared = PreparedProgram::prepare_with(
                            &program,
                            target,
                            options.fuse,
                        )
                        .map_err(|e| {
                            JitError::Internal(format!("deploy-time preparation failed: {e}"))
                        })?;
                        Ok(CompiledModule {
                            program,
                            jit,
                            prepared,
                        })
                    });
                match built {
                    Ok(compiled) => {
                        let jit = compiled.jit;
                        let compiled = Arc::new(compiled);
                        {
                            let mut locked = shard.lock().expect("engine cache shard poisoned");
                            locked.entries.insert(
                                key,
                                ShardEntry::Ready(ReadyEntry {
                                    compiled: Arc::clone(&compiled),
                                    stamp: self.clock.fetch_add(1, Ordering::Relaxed),
                                }),
                            );
                            // The counters and `len` move with the insert,
                            // under the same shard lock eviction removes
                            // under — so a concurrent snapshot can never see
                            // the entry without its compile (or vice versa),
                            // whatever order racing inserts and evictions
                            // interleave in. The disk counter rides along:
                            // the probe outcome is part of this lookup.
                            locked.stats.compiles += 1;
                            locked.online_work += jit.total_work();
                            match &probe {
                                DiskProbe::Miss(_) => locked.stats.disk_misses += 1,
                                DiskProbe::Reject(_) => locked.stats.disk_rejects += 1,
                                DiskProbe::NoStore | DiskProbe::Hit(_) => {}
                            }
                            self.len.fetch_add(1, Ordering::Relaxed);
                        }
                        guard.armed = false;
                        let _ = cell.set(Ok(Arc::clone(&compiled)));
                        self.enforce_capacity();
                        // Populate (or overwrite) the store entry —
                        // best-effort, after the waiters were released, so
                        // disk latency never extends the rendezvous.
                        if let (Some(handle), DiskProbe::Miss(skey) | DiskProbe::Reject(skey)) =
                            (&self.store, &probe)
                        {
                            handle.store.save(skey, &compiled.program, &compiled.jit);
                        }
                        Ok(compiled)
                    }
                    Err(e) => {
                        // Drop the marker so a later request can retry, then
                        // wake the waiters with the error. The disk probe
                        // still happened — count it with the removal.
                        let mut locked = shard.lock().expect("engine cache shard poisoned");
                        locked.entries.remove(&key);
                        match &probe {
                            DiskProbe::Miss(_) => locked.stats.disk_misses += 1,
                            DiskProbe::Reject(_) => locked.stats.disk_rejects += 1,
                            DiskProbe::NoStore | DiskProbe::Hit(_) => {}
                        }
                        drop(locked);
                        guard.armed = false;
                        let _ = cell.set(Err(e.clone()));
                        Err(EngineError::Jit(e))
                    }
                }
            }
        }
    }

    /// Probe the attached store (if any) for this deployment's artifact for
    /// `(target, options)`. A hit re-runs deploy-time preparation on the
    /// loaded program — preparation is deterministic and version-coupled to
    /// the simulator, so it is recomputed rather than trusted from disk; an
    /// artifact that decodes but fails to prepare is treated exactly like a
    /// corrupt entry (reject → fresh compile → overwrite).
    fn probe_store(&self, target: &TargetDesc, options: &JitOptions, target_fp: u64) -> DiskProbe {
        let Some(handle) = &self.store else {
            return DiskProbe::NoStore;
        };
        let skey = StoreKey {
            module_fp: handle.module_fp,
            target_fp,
            options_fp: options.fingerprint(),
        };
        match handle.store.load(&skey) {
            StoreLoad::Hit(artifact) => {
                match PreparedProgram::prepare_with(&artifact.program, target, options.fuse) {
                    Ok(prepared) => DiskProbe::Hit(Box::new(CompiledModule {
                        program: artifact.program,
                        jit: artifact.jit,
                        prepared,
                    })),
                    Err(_) => DiskProbe::Reject(skey),
                }
            }
            StoreLoad::Miss => DiskProbe::Miss(skey),
            StoreLoad::Reject => DiskProbe::Reject(skey),
        }
    }

    /// Evict least-recently-used entries until the cache fits its bound.
    fn enforce_capacity(&self) {
        let cap = self.capacity.load(Ordering::Relaxed);
        if cap == 0 {
            return;
        }
        while self.len.load(Ordering::Relaxed) > cap {
            if !self.evict_lru() {
                break;
            }
        }
    }

    /// Try to evict the globally least-recently-used `Ready` entry. Returns
    /// `false` when there is nothing evictable (the caller stops), `true`
    /// when it evicted or lost a benign race (the caller re-checks the bound).
    fn evict_lru(&self) -> bool {
        let mut oldest: Option<(usize, CacheKey, u64)> = None;
        for (i, shard) in self.shards.iter().enumerate() {
            let guard = shard.lock().expect("engine cache shard poisoned");
            for (key, entry) in &guard.entries {
                if let ShardEntry::Ready(ready) = entry {
                    if oldest.is_none_or(|(_, _, stamp)| ready.stamp < stamp) {
                        oldest = Some((i, *key, ready.stamp));
                    }
                }
            }
        }
        let Some((i, key, stamp)) = oldest else {
            return false;
        };
        let mut guard = self.shards[i].lock().expect("engine cache shard poisoned");
        if let Some(ShardEntry::Ready(ready)) = guard.entries.get(&key) {
            if ready.stamp == stamp {
                guard.entries.remove(&key);
                // Decremented under the same shard lock the entry's insert
                // incremented under; see `program_for`.
                self.len.fetch_sub(1, Ordering::Relaxed);
                guard.stats.evictions += 1;
            }
        }
        // Either we evicted, or the candidate was touched/removed meanwhile;
        // both count as progress — the caller re-checks the bound.
        true
    }

    /// Evict the cached compile for exactly `(target fingerprint, options)`,
    /// if one is `Ready`. Returns `true` if an entry was removed.
    ///
    /// This is the quarantine hook for the serving tier's circuit breakers:
    /// when a key trips its breaker, the poisoned compile is dropped from
    /// the cache so the half-open probe (and any later traffic) compiles
    /// fresh instead of replaying a bad artifact forever. In-flight
    /// compiles are left alone — their waiters hold the cell, and the
    /// winner's insert simply repopulates the slot.
    pub fn invalidate(&self, target_fp: u64, options: &JitOptions) -> bool {
        let key = (target_fp, *options);
        let mut guard = self
            .shard_for(&key)
            .lock()
            .expect("engine cache shard poisoned");
        if let Some(ShardEntry::Ready(_)) = guard.entries.get(&key) {
            guard.entries.remove(&key);
            // Same discipline as `evict_lru`: the length is decremented
            // under the shard lock the insert incremented under, and the
            // removal is visible in the eviction counter.
            self.len.fetch_sub(1, Ordering::Relaxed);
            guard.stats.evictions += 1;
            true
        } else {
            false
        }
    }

    /// JIT statistics for `target` under `options` (compiling on demand).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Jit`] if online compilation fails.
    pub fn jit_stats(
        &self,
        target: &TargetDesc,
        options: &JitOptions,
    ) -> Result<JitStats, EngineError> {
        Ok(self.program_for(target, options)?.jit)
    }

    /// Warm the cache for every target in `targets` under `options`.
    ///
    /// Experiments call this before their measurement loops so that no online
    /// compilation happens inside the measured region.
    ///
    /// # Errors
    ///
    /// Returns the first [`EngineError::Jit`] encountered.
    pub fn precompile<'t>(
        &self,
        targets: impl IntoIterator<Item = &'t TargetDesc>,
        options: &JitOptions,
    ) -> Result<(), EngineError> {
        for target in targets {
            self.program_for(target, options)?;
        }
        Ok(())
    }

    /// Run `kernel` with `args` against `mem` on `target` under `options`,
    /// compiling (once) on demand.
    ///
    /// # Errors
    ///
    /// Fails if the kernel is unknown, the module cannot be compiled for the
    /// target, or the kernel traps during simulation.
    pub fn run(
        &self,
        target: &TargetDesc,
        options: &JitOptions,
        kernel: &str,
        args: &[MachineValue],
        mem: &mut [u8],
    ) -> Result<Execution, EngineError> {
        let mut pool = FramePool::new();
        self.run_pooled(target, options, kernel, args, mem, &mut pool)
    }

    /// Like [`ExecutionEngine::run`], but drawing call frames from an
    /// external [`FramePool`], so repeated runs (a sweep worker's whole job
    /// stream, all repeats of a measurement cell) recycle the register-file
    /// allocations instead of paying them per run.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ExecutionEngine::run`].
    pub fn run_pooled(
        &self,
        target: &TargetDesc,
        options: &JitOptions,
        kernel: &str,
        args: &[MachineValue],
        mem: &mut [u8],
        pool: &mut FramePool,
    ) -> Result<Execution, EngineError> {
        if self.module.function(kernel).is_none() {
            return Err(EngineError::UnknownKernel(kernel.to_owned()));
        }
        let compiled = self.program_for(target, options)?;
        simulate(&compiled, target, kernel, args, mem, pool)
    }

    /// One-shot execution without a deployment: compile `module` for
    /// `target` afresh (no cache) and run `kernel` once.
    ///
    /// This backs `splitc`'s `run_on_target` convenience wrapper; anything
    /// that runs more than once should deploy an engine instead so the
    /// compilation is amortized.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ExecutionEngine::run`].
    pub fn run_once(
        module: &Module,
        target: &TargetDesc,
        options: &JitOptions,
        kernel: &str,
        args: &[MachineValue],
        mem: &mut [u8],
    ) -> Result<Execution, EngineError> {
        if module.function(kernel).is_none() {
            return Err(EngineError::UnknownKernel(kernel.to_owned()));
        }
        let (program, jit) = compile_module(module, target, options)?;
        // Wrapped identically to the cached path (`program_for`), so callers
        // see one error shape for a prepare failure whichever entry they use.
        let prepared =
            PreparedProgram::prepare_with(&program, target, options.fuse).map_err(|e| {
                EngineError::Jit(JitError::Internal(format!(
                    "deploy-time preparation failed: {e}"
                )))
            })?;
        let compiled = CompiledModule {
            program,
            jit,
            prepared,
        };
        let mut pool = FramePool::new();
        simulate(&compiled, target, kernel, args, mem, &mut pool)
    }

    /// Code-cache counters since deployment.
    ///
    /// This is the [`CacheSnapshot::stats`] field of a consistent
    /// [`ExecutionEngine::snapshot`]: safe to read while worker threads are
    /// serving (it never observes a torn lookup), pointwise monotonic across
    /// successive reads.
    pub fn stats(&self) -> CacheStats {
        self.snapshot().stats
    }

    /// Take a consistent cross-shard snapshot of the cache.
    ///
    /// All [`SHARD_COUNT`] shard locks are held simultaneously while the
    /// counters are summed, so the result reflects one instant: no lookup,
    /// compile or eviction is ever half-counted, and
    /// `live == stats.compiles + stats.disk_hits - stats.evictions` holds in
    /// every snapshot —
    /// the guarantee the serving layer's live statistics rely on. Locks are
    /// acquired in shard order and every other engine path holds at most one
    /// shard lock at a time, so the sweep cannot deadlock.
    pub fn snapshot(&self) -> CacheSnapshot {
        let guards: Vec<_> = self
            .shards
            .iter()
            .map(|s| s.lock().expect("engine cache shard poisoned"))
            .collect();
        let mut stats = CacheStats::default();
        let mut online_work = 0u64;
        let mut live = 0usize;
        for g in &guards {
            stats += g.stats;
            online_work += g.online_work;
            live += g
                .entries
                .values()
                .filter(|e| matches!(e, ShardEntry::Ready(_)))
                .count();
        }
        CacheSnapshot {
            stats,
            online_work,
            live,
        }
    }

    /// Number of (target, options) pairs currently held compiled in the cache.
    pub fn compiled_variants(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }
}

/// Execute one kernel of an already-compiled-and-prepared module and assemble
/// the unified [`Execution`] record (shared by the cached and one-shot paths).
///
/// This drives the pre-decoded form directly: no per-run preparation, no
/// per-instruction decoding, frames recycled through `pool`. Crate-visible so
/// the serving tier's continuous batching can fetch a program once per batch
/// ([`ExecutionEngine::program_for`]) and then drive each request of the
/// batch through exactly the execution path unbatched runs use.
pub(crate) fn simulate(
    compiled: &CompiledModule,
    target: &TargetDesc,
    kernel: &str,
    args: &[MachineValue],
    mem: &mut [u8],
    pool: &mut FramePool,
) -> Result<Execution, EngineError> {
    let mut stats = SimStats::default();
    let result = compiled
        .prepared
        .run(kernel, args, mem, pool, DEFAULT_SIM_FUEL, &mut stats)?;
    Ok(Execution {
        result,
        stats,
        jit: compiled.jit,
        scaled_cycles: target.scaled_time(stats.cycles),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitc_minic::compile_source;
    use splitc_opt::{optimize_module, OptOptions};

    fn deployed() -> ExecutionEngine {
        let mut m = compile_source(
            "fn dscal(n: i32, a: f32, x: *f32) {
                for (let i: i32 = 0; i < n; i = i + 1) { x[i] = a * x[i]; }
            }
            fn triple(x: i32) -> i32 { return 3 * x; }",
            "k",
        )
        .unwrap();
        optimize_module(&mut m, &OptOptions::full());
        ExecutionEngine::new(m)
    }

    #[test]
    fn engine_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ExecutionEngine>();
    }

    #[test]
    fn scaled_cycles_apply_the_per_target_clock_factor() {
        let engine = deployed();
        let options = JitOptions::split();
        let mut mem = vec![0u8; 256];
        for target in splitc_targets::TargetDesc::presets() {
            let run = engine
                .run(
                    &target,
                    &options,
                    "triple",
                    &[MachineValue::Int(7)],
                    &mut mem,
                )
                .unwrap();
            let expect = target.scaled_time(run.stats.cycles);
            assert!(
                (run.scaled_cycles - expect).abs() < 1e-9,
                "{}: scaled_cycles {} != scaled_time {}",
                target.name,
                run.scaled_cycles,
                expect
            );
            assert!(
                (expect - run.stats.cycles as f64 * target.clock_scale).abs() < 1e-9,
                "{}: scaled_time disagrees with the clock factor",
                target.name
            );
        }
    }

    #[test]
    fn timing_tiers_compile_separately_but_agree_architecturally() {
        use splitc_targets::TimingKind;
        let engine = deployed();
        let options = JitOptions::split();
        let flat = TargetDesc::x86_sse();
        let pipe = TargetDesc::x86_sse().with_timing(TimingKind::InOrder);
        let mut mem_a = vec![0u8; 256];
        let mut mem_b = mem_a.clone();
        let a = engine
            .run(
                &flat,
                &options,
                "triple",
                &[MachineValue::Int(9)],
                &mut mem_a,
            )
            .unwrap();
        let b = engine
            .run(
                &pipe,
                &options,
                "triple",
                &[MachineValue::Int(9)],
                &mut mem_b,
            )
            .unwrap();
        assert_eq!(a.result, b.result);
        assert_eq!(mem_a, mem_b);
        assert_eq!(a.stats.instructions, b.stats.instructions);
        assert!(b.stats.cycles >= b.stats.instructions);
        // Distinct fingerprints: the engine compiled one variant per tier.
        assert_eq!(engine.stats().compiles, 2);
    }

    #[test]
    fn one_compile_per_target_and_options_pair() {
        let engine = deployed();
        let targets = [TargetDesc::x86_sse(), TargetDesc::powerpc()];
        let configs = [JitOptions::split(), JitOptions::online_greedy()];
        let mut mem = vec![0u8; 256];
        for _ in 0..5 {
            for target in &targets {
                for options in &configs {
                    let run = engine
                        .run(target, options, "triple", &[MachineValue::Int(7)], &mut mem)
                        .unwrap();
                    assert_eq!(run.result, Some(MachineValue::Int(21)));
                }
            }
        }
        let stats = engine.stats();
        assert_eq!(stats.compiles, (targets.len() * configs.len()) as u64);
        assert_eq!(stats.lookups(), 5 * 2 * 2);
        assert_eq!(stats.hits, stats.lookups() - stats.compiles);
        assert_eq!(stats.evictions, 0, "unbounded cache never evicts");
        assert_eq!(engine.compiled_variants(), 4);
        assert!(stats.hit_rate() > 0.7);
    }

    #[test]
    fn cores_with_equal_fingerprints_share_code() {
        let engine = deployed();
        let options = JitOptions::split();
        let a = engine
            .program_for(&TargetDesc::cell_spu(), &options)
            .unwrap();
        let b = engine
            .program_for(&TargetDesc::cell_spu(), &options)
            .unwrap();
        assert!(
            Arc::ptr_eq(&a, &b),
            "identical targets must share one Arc'd program"
        );
        assert_eq!(engine.stats().compiles, 1);
    }

    #[test]
    fn precompile_moves_all_compilation_out_of_the_run_path() {
        let engine = deployed();
        let targets = TargetDesc::table1_targets();
        let options = JitOptions::split();
        engine.precompile(&targets, &options).unwrap();
        let compiled_before = engine.stats().compiles;
        let mut mem = vec![0u8; 256];
        for target in &targets {
            engine
                .run(
                    target,
                    &options,
                    "triple",
                    &[MachineValue::Int(1)],
                    &mut mem,
                )
                .unwrap();
        }
        assert_eq!(
            engine.stats().compiles,
            compiled_before,
            "runs must all be cache hits"
        );
    }

    #[test]
    fn pooled_runs_are_bit_identical_to_plain_runs() {
        let engine = deployed();
        let target = TargetDesc::x86_sse();
        let options = JitOptions::split();
        let mut pool = FramePool::new();
        for i in 0..4 {
            let mut mem_a = vec![0u8; 256];
            let mut mem_b = vec![0u8; 256];
            let plain = engine
                .run(
                    &target,
                    &options,
                    "triple",
                    &[MachineValue::Int(i)],
                    &mut mem_a,
                )
                .unwrap();
            let pooled = engine
                .run_pooled(
                    &target,
                    &options,
                    "triple",
                    &[MachineValue::Int(i)],
                    &mut mem_b,
                    &mut pool,
                )
                .unwrap();
            assert_eq!(plain.result, pooled.result);
            assert_eq!(plain.stats, pooled.stats);
            assert_eq!(mem_a, mem_b);
        }
        assert!(pool.pooled_frames() >= 1, "frames were recycled");
    }

    #[test]
    fn cached_entries_carry_the_prepared_program() {
        let engine = deployed();
        let compiled = engine
            .program_for(&TargetDesc::x86_sse(), &JitOptions::split())
            .unwrap();
        assert_eq!(
            compiled.prepared.num_functions(),
            compiled.program.functions.len()
        );
        assert!(compiled.prepared.function_index("triple").is_some());
        assert!(compiled.prepared.function_index("nope").is_none());
    }

    #[test]
    fn unknown_kernels_are_rejected_without_compiling() {
        let engine = deployed();
        let mut mem = vec![0u8; 64];
        let err = engine
            .run(
                &TargetDesc::x86_sse(),
                &JitOptions::split(),
                "nope",
                &[],
                &mut mem,
            )
            .unwrap_err();
        assert!(matches!(err, EngineError::UnknownKernel(_)));
        assert!(err.to_string().contains("nope"));
        assert_eq!(engine.stats().lookups(), 0);
    }

    #[test]
    fn engine_can_be_shared_across_threads() {
        let engine = std::sync::Arc::new(deployed());
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let engine = std::sync::Arc::clone(&engine);
                std::thread::spawn(move || {
                    let mut mem = vec![0u8; 256];
                    let run = engine
                        .run(
                            &TargetDesc::x86_sse(),
                            &JitOptions::split(),
                            "triple",
                            &[MachineValue::Int(i)],
                            &mut mem,
                        )
                        .unwrap();
                    assert_eq!(run.result, Some(MachineValue::Int(3 * i)));
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(engine.stats().compiles, 1, "four threads, one compilation");
    }

    #[test]
    fn racing_cold_lookups_compile_exactly_once_per_pair() {
        // Many threads, many (target, options) pairs, no precompilation:
        // the in-flight dedup must keep compiles at exactly T x C.
        let engine = std::sync::Arc::new(deployed());
        let targets = TargetDesc::presets();
        let configs = [JitOptions::split(), JitOptions::online_greedy()];
        let threads = 8;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let engine = std::sync::Arc::clone(&engine);
                let targets = targets.clone();
                std::thread::spawn(move || {
                    for target in &targets {
                        for options in [JitOptions::split(), JitOptions::online_greedy()] {
                            engine.program_for(target, &options).unwrap();
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let expected = (targets.len() * configs.len()) as u64;
        let stats = engine.stats();
        assert_eq!(stats.compiles, expected);
        assert_eq!(
            stats.lookups(),
            expected * threads,
            "every lookup is counted"
        );
        assert_eq!(stats.hits, stats.lookups() - stats.compiles);
        assert_eq!(engine.compiled_variants(), expected as usize);
    }

    #[test]
    fn lru_bound_evicts_exactly_compiles_minus_capacity() {
        let engine = deployed();
        let bound = 2usize;
        engine.set_cache_capacity(bound);
        assert_eq!(engine.cache_capacity(), bound);
        let options = JitOptions::split();
        let targets = TargetDesc::presets();
        assert!(targets.len() > bound, "the sweep must overflow the bound");
        for target in &targets {
            engine.program_for(target, &options).unwrap();
        }
        let stats = engine.stats();
        assert_eq!(stats.compiles, targets.len() as u64);
        assert_eq!(
            stats.evictions,
            stats.compiles - bound as u64,
            "every insert beyond the bound evicts exactly one entry"
        );
        assert_eq!(engine.compiled_variants(), bound);
        assert_eq!(stats.compiles + stats.hits, stats.lookups());
    }

    #[test]
    fn recompile_after_eviction_is_bit_identical() {
        let engine = deployed();
        engine.set_cache_capacity(1);
        let options = JitOptions::split();
        let first = engine
            .program_for(&TargetDesc::x86_sse(), &options)
            .unwrap();
        // Push x86 out of the single-entry cache...
        engine
            .program_for(&TargetDesc::powerpc(), &options)
            .unwrap();
        assert_eq!(engine.stats().evictions, 1);
        // ...and ask for it again: a fresh compile with an identical program.
        let again = engine
            .program_for(&TargetDesc::x86_sse(), &options)
            .unwrap();
        assert!(
            !Arc::ptr_eq(&first, &again),
            "the evicted program must be recompiled, not resurrected"
        );
        assert_eq!(*first, *again, "recompilation is deterministic");
        assert_eq!(engine.stats().compiles, 3);
        assert_eq!(engine.stats().hits, 0);
    }

    #[test]
    fn lru_evicts_the_least_recently_used_entry() {
        let engine = deployed();
        engine.set_cache_capacity(2);
        let options = JitOptions::split();
        engine
            .program_for(&TargetDesc::x86_sse(), &options)
            .unwrap();
        engine
            .program_for(&TargetDesc::powerpc(), &options)
            .unwrap();
        // Touch x86 so powerpc is the LRU victim.
        engine
            .program_for(&TargetDesc::x86_sse(), &options)
            .unwrap();
        engine
            .program_for(&TargetDesc::ultrasparc(), &options)
            .unwrap();
        // x86 must still be cached (a hit), powerpc must recompile.
        let hits_before = engine.stats().hits;
        engine
            .program_for(&TargetDesc::x86_sse(), &options)
            .unwrap();
        assert_eq!(engine.stats().hits, hits_before + 1, "x86 survived the LRU");
        let compiles_before = engine.stats().compiles;
        engine
            .program_for(&TargetDesc::powerpc(), &options)
            .unwrap();
        assert_eq!(
            engine.stats().compiles,
            compiles_before + 1,
            "powerpc was the eviction victim"
        );
    }

    #[test]
    fn snapshots_tie_live_entries_to_compiles_minus_evictions() {
        let engine = deployed();
        engine.set_cache_capacity(2);
        let options = JitOptions::split();
        let mut prev = engine.snapshot();
        assert_eq!(prev.live, 0);
        for target in TargetDesc::presets() {
            engine.program_for(&target, &options).unwrap();
            engine.program_for(&target, &options).unwrap();
            let snap = engine.snapshot();
            // The consistency invariant the serving layer reads stats under.
            assert_eq!(
                snap.live,
                (snap.stats.compiles + snap.stats.disk_hits - snap.stats.evictions) as usize
            );
            assert_eq!(
                snap.stats.lookups(),
                snap.stats.compiles + snap.stats.hits + snap.stats.disk_hits
            );
            // Pointwise monotonic across successive snapshots.
            assert!(snap.stats.compiles >= prev.stats.compiles);
            assert!(snap.stats.hits >= prev.stats.hits);
            assert!(snap.stats.evictions >= prev.stats.evictions);
            assert!(snap.online_work >= prev.online_work);
            prev = snap;
        }
        assert_eq!(prev.live, 2, "the LRU bound caps resident entries");
        assert_eq!(engine.stats(), prev.stats, "stats() is the snapshot view");
        assert_eq!(engine.online_work(), prev.online_work);
    }

    fn temp_store(name: &str) -> Arc<crate::ArtifactStore> {
        let dir =
            std::env::temp_dir().join(format!("splitc-engine-store-{}-{name}", std::process::id()));
        let store = crate::ArtifactStore::open(dir).expect("temp store opens");
        store.clear();
        Arc::new(store)
    }

    #[test]
    fn warm_engine_loads_from_disk_instead_of_compiling() {
        let store = temp_store("warm");
        let options = JitOptions::split();
        let targets = TargetDesc::presets();
        let mut mem = vec![0u8; 256];

        // Cold process: everything compiles, the store gets populated.
        let cold = deployed().with_store(Arc::clone(&store));
        let mut cold_runs = Vec::new();
        for target in &targets {
            let run = cold
                .run(
                    target,
                    &options,
                    "triple",
                    &[MachineValue::Int(7)],
                    &mut mem,
                )
                .unwrap();
            cold_runs.push(run);
        }
        let cold_stats = cold.stats();
        assert_eq!(cold_stats.compiles, targets.len() as u64);
        assert_eq!(cold_stats.disk_misses, targets.len() as u64);
        assert_eq!(cold_stats.disk_hits, 0);
        assert_eq!(store.len(), targets.len());

        // Warm process (a fresh engine on the same module + store): zero
        // compiles, every key a disk hit, every response bit-identical.
        let warm = deployed().with_store(Arc::clone(&store));
        for (target, cold_run) in targets.iter().zip(&cold_runs) {
            let run = warm
                .run(
                    target,
                    &options,
                    "triple",
                    &[MachineValue::Int(7)],
                    &mut mem,
                )
                .unwrap();
            assert_eq!(run.result, cold_run.result);
            assert_eq!(run.stats, cold_run.stats);
            assert_eq!(run.jit, cold_run.jit, "stored JitStats replay exactly");
        }
        let warm_stats = warm.stats();
        assert_eq!(warm_stats.compiles, 0, "warm start never compiles");
        assert_eq!(warm_stats.disk_hits, targets.len() as u64);
        assert_eq!(warm_stats.disk_misses, 0);
        let snap = warm.snapshot();
        assert_eq!(
            snap.live,
            (snap.stats.compiles + snap.stats.disk_hits - snap.stats.evictions) as usize
        );
        store.clear();
    }

    #[test]
    fn corrupted_store_entries_fall_back_to_recompilation() {
        let store = temp_store("fallback");
        let options = JitOptions::split();
        let target = TargetDesc::x86_sse();
        let mut mem = vec![0u8; 256];

        let cold = deployed().with_store(Arc::clone(&store));
        let reference = cold
            .run(
                &target,
                &options,
                "triple",
                &[MachineValue::Int(5)],
                &mut mem,
            )
            .unwrap();

        // Corrupt the single entry on disk.
        let entry = std::fs::read_dir(store.dir())
            .unwrap()
            .flatten()
            .find(|e| e.file_name().to_string_lossy().ends_with(".svba"))
            .expect("the cold run persisted an entry")
            .path();
        let mut bytes = std::fs::read(&entry).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&entry, &bytes).unwrap();

        // A fresh engine rejects the entry, recompiles bit-identically, and
        // overwrites it so the *next* engine hits.
        let engine = deployed().with_store(Arc::clone(&store));
        let run = engine
            .run(
                &target,
                &options,
                "triple",
                &[MachineValue::Int(5)],
                &mut mem,
            )
            .unwrap();
        assert_eq!(run.result, reference.result);
        assert_eq!(run.stats, reference.stats);
        let stats = engine.stats();
        assert_eq!(stats.disk_rejects, 1);
        assert_eq!(stats.compiles, 1);
        assert_eq!(stats.disk_hits, 0);

        let healed = deployed().with_store(Arc::clone(&store));
        healed
            .run(
                &target,
                &options,
                "triple",
                &[MachineValue::Int(5)],
                &mut mem,
            )
            .unwrap();
        assert_eq!(
            healed.stats().disk_hits,
            1,
            "the overwrite healed the entry"
        );
        assert_eq!(healed.stats().compiles, 0);
        store.clear();
    }

    #[test]
    fn shrinking_the_capacity_evicts_immediately() {
        let engine = deployed();
        let options = JitOptions::split();
        for target in TargetDesc::table1_targets() {
            engine.program_for(&target, &options).unwrap();
        }
        assert_eq!(engine.compiled_variants(), 3);
        engine.set_cache_capacity(1);
        assert_eq!(engine.compiled_variants(), 1);
        assert_eq!(engine.stats().evictions, 2);
        // Lifting the bound stops eviction again.
        engine.set_cache_capacity(0);
        for target in TargetDesc::presets() {
            engine.program_for(&target, &options).unwrap();
        }
        assert_eq!(engine.compiled_variants(), TargetDesc::presets().len());
    }
}
