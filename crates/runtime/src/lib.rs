//! # splitc-runtime — the heterogeneous multicore runtime
//!
//! The deployment side of processor virtualization (Cohen & Rohou, DAC 2010,
//! Section 3): one portable bytecode module, many very different cores.
//!
//! * [`Platform`] / [`Core`] describe heterogeneous systems (workstation,
//!   phone SoC with a DSP, Cell-style blade with SIMD accelerators).
//! * [`ExecutionEngine`] is the shared, cached execution layer: one deployed
//!   module, one online compilation per distinct (core type, JIT config)
//!   pair — guaranteed even under concurrent cold lookups by a sharded cache
//!   with in-flight deduplication — compiled programs shared via `Arc`, an
//!   optional LRU bound for long-running deployments, and cache statistics
//!   for the paper's "online compilation pays for itself" story.
//! * [`sweep`] fans a list of independent jobs (kernel × target × repeat
//!   matrices) across scoped worker threads with per-worker amortized state
//!   and deterministic result order.
//! * [`serve`] is the request front-end for long-running deployments: a
//!   bounded MPMC work queue with backpressure, a worker pool, and shared
//!   engines deduplicated by module fingerprint, with graceful lossless
//!   shutdown and live [`serve::ServerStats`].
//! * [`Executor`] is a core-oriented facade over the engine: it deploys a
//!   bytecode module with fixed [`JitOptions`](splitc_jit::JitOptions) and
//!   addresses execution by [`Core`].
//! * [`choose_core`] and [`list_schedule`] map kernels and task graphs onto
//!   cores, guided by the kernel-trait annotations the offline compiler left
//!   in the bytecode.
//! * [`DmaModel`] accounts for the cost of shipping data to accelerators
//!   (the offload-profitability crossover of experiment E4).
//! * [`Network`] is a Kahn-process-network substrate for portable,
//!   deterministic concurrency (Section 4).
//!
//! # Example
//!
//! ```
//! use splitc_minic::compile_source;
//! use splitc_opt::{optimize_module, OptOptions};
//! use splitc_runtime::{choose_core, Executor, Platform};
//! use splitc_targets::MachineValue;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut module = compile_source(
//!     "fn dscal(n: i32, a: f32, x: *f32) {
//!          for (let i: i32 = 0; i < n; i = i + 1) { x[i] = a * x[i]; }
//!      }",
//!     "kernels",
//! )?;
//! optimize_module(&mut module, &OptOptions::full());
//!
//! let platform = Platform::phone();
//! let traits = module.function("dscal").unwrap().annotations.kernel_traits().unwrap();
//! let core = choose_core(&traits, &platform);
//! assert_eq!(core.name, "arm"); // the vector-capable core, not the DSP
//!
//! let exec = Executor::deploy(module);
//! let mut mem = vec![0u8; 1024];
//! mem[256..260].copy_from_slice(&4.0f32.to_le_bytes());
//! exec.run(core, "dscal", &[MachineValue::Int(1), MachineValue::Float(0.25), MachineValue::Int(256)], &mut mem)?;
//! assert_eq!(&mem[256..260], &1.0f32.to_le_bytes());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod engine;
mod executor;
pub mod hist;
mod kpn;
mod offload;
mod platform;
mod scheduler;
pub mod serve;
pub mod store;
mod sweep;

pub use engine::{
    CacheSnapshot, CacheStats, CompiledModule, EngineError, Execution, ExecutionEngine, SHARD_COUNT,
};
pub use executor::{Executor, RunOutcome, RuntimeError};
pub use hist::{Histogram, EMPTY_QUANTILE};
pub use kpn::{pipeline, profile_pipeline, ChannelId, KpnReport, Network, Process, ProcessId};
pub use offload::{DmaModel, OffloadCost};
pub use platform::{Core, Platform};
pub use scheduler::{affinity, choose_core, list_schedule, Placement, Schedule, TaskEstimate};
pub use store::{
    ArtifactStore, StoreKey, StoreLoad, StoredArtifact, STORE_FORMAT_VERSION, STORE_MAGIC,
};
// Re-exported so engine callers can hold a frame pool (for `run_pooled`) and
// reach the prepared artifact without a direct `splitc-targets` dependency.
pub use splitc_targets::{FramePool, PreparedProgram, PreparedSimulator};
pub use sweep::{default_jobs, pool_width, sweep};
