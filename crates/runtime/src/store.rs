//! Persistent on-disk cache of compiled artifacts.
//!
//! Split compilation (Cohen & Rohou, DAC 2010) pays for compilation once, at
//! deployment, and amortizes it over every run. The in-memory code cache of
//! [`crate::ExecutionEngine`] enforces that within a process; this module
//! extends the split across *process lifetimes*: every restart, rollback and
//! crash-recovery of a serving fleet can reload yesterday's online
//! compilations from disk instead of redoing them, turning cold starts from
//! JIT work into validated reads.
//!
//! # On-disk layout
//!
//! One directory, one file per artifact, named by the full cache key:
//!
//! ```text
//! <dir>/<module_fp>-<target_fp>-<options_fp>.svba
//! ```
//!
//! where each fingerprint is a 16-digit lower-hex FNV-1a hash (module: over
//! the canonical vbc encoding; target: [`TargetDesc::fingerprint`]; options:
//! [`JitOptions::fingerprint`]). Each file is a fixed header followed by the
//! artifact payload:
//!
//! | offset | size | field |
//! |-------:|-----:|-------|
//! | 0      | 4    | magic `"SVBA"` |
//! | 4      | 1    | store format version ([`STORE_FORMAT_VERSION`]) |
//! | 5      | 1    | vbc encoding version ([`splitc_vbc::VERSION`]) |
//! | 6      | 8    | module fingerprint (u64 LE) |
//! | 14     | 8    | target fingerprint (u64 LE) |
//! | 22     | 8    | options fingerprint (u64 LE) |
//! | 30     | 8    | payload length (u64 LE) |
//! | 38     | 8    | FNV-1a checksum of the payload (u64 LE) |
//! | 46     | —    | payload: the wire-encoded [`MProgram`] + [`JitStats`] |
//!
//! The payload uses the vbc [`Writer`]/[`Reader`] primitives (LEB128
//! integers, length-prefixed strings, raw f64 bits), so the whole file is
//! decoded by the same hardened machinery the deployment format trusts.
//!
//! # Validation ladder, failure is fallback
//!
//! Store files outlive the process that wrote them: they can be truncated by
//! a crash, corrupted by the disk, or written by an older build. A load
//! therefore climbs a strict ladder — file present → header length → magic →
//! store version → vbc version → key triple → exact payload length →
//! checksum → hardened decode (which must consume the payload exactly) — and
//! *any* rung failing yields [`StoreLoad::Reject`], never an error the
//! caller must handle and never a panic. The engine reacts to a reject by
//! compiling fresh and overwriting the entry; a store can thus never produce
//! a wrong result, only a slower one.
//!
//! Writes are atomic: the entry is written to a unique temp file in the same
//! directory and `rename`d into place, so a crash mid-write leaves at worst
//! a stray temp file, never a half-entry a sibling process could load. All
//! I/O errors on the write path are swallowed (best-effort persistence — a
//! full disk degrades to the no-store behaviour).

use splitc_jit::JitStats;
use splitc_targets::{
    AluOp, CmpPred, Fnv1a, FpuOp, MBlock, MFunction, MInst, MProgram, PReg, RedOp, RegClass, Width,
};
use splitc_vbc::{DecodeError, Reader, Writer};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Magic bytes opening every store entry ("Split Virtual Bytecode Artifact").
pub const STORE_MAGIC: &[u8; 4] = b"SVBA";

/// Version of the store header + payload layout. Bump on any layout change;
/// old entries are then rejected (and overwritten) rather than misread.
pub const STORE_FORMAT_VERSION: u8 = 1;

/// Fixed byte length of the store entry header.
const HEADER_LEN: usize = 4 + 1 + 1 + 8 + 8 + 8 + 8 + 8;

/// The key triple identifying one artifact: which module, compiled for which
/// target, under which JIT configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StoreKey {
    /// FNV-1a fingerprint of the module's canonical vbc encoding.
    pub module_fp: u64,
    /// The target's [`fingerprint`](splitc_targets::TargetDesc::fingerprint).
    pub target_fp: u64,
    /// The JIT configuration's
    /// [`fingerprint`](splitc_jit::JitOptions::fingerprint).
    pub options_fp: u64,
}

/// A compiled artifact as persisted: the machine program plus the JIT
/// statistics of the compilation that produced it. The prepared execution
/// form is *not* stored — preparation is cheap, deterministic and
/// version-coupled to the simulator, so the engine re-runs
/// `PreparedProgram::prepare_with` on every load.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredArtifact {
    /// The machine program.
    pub program: MProgram,
    /// Statistics of the online compilation that produced `program`.
    pub jit: JitStats,
}

/// Outcome of probing the store for a key.
#[derive(Debug)]
pub enum StoreLoad {
    /// A valid entry was found and decoded.
    Hit(Box<StoredArtifact>),
    /// No entry exists for the key.
    Miss,
    /// An entry exists but failed validation (truncated, corrupted,
    /// version-skewed, or keyed inconsistently). The caller should compile
    /// fresh and overwrite it.
    Reject,
}

/// A persistent on-disk artifact cache rooted at one directory.
///
/// Safe to share between threads and — by design — between *processes*: all
/// writes are atomic renames, all reads validate before trusting, so any
/// number of engines in any number of processes can point at one directory.
/// See the [module documentation](self) for layout and semantics.
#[derive(Debug)]
pub struct ArtifactStore {
    dir: PathBuf,
    /// Per-process counter making concurrent temp-file names unique.
    temp_seq: AtomicU64,
}

/// Two stores are the same store iff they persist into the same directory
/// (the temp-name counter is process-local bookkeeping, not identity).
impl PartialEq for ArtifactStore {
    fn eq(&self, other: &Self) -> bool {
        self.dir == other.dir
    }
}

impl Eq for ArtifactStore {}

impl ArtifactStore {
    /// Open (creating if necessary) a store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<ArtifactStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(ArtifactStore {
            dir,
            temp_seq: AtomicU64::new(0),
        })
    }

    /// The directory this store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file path an entry for `key` lives at.
    pub fn entry_path(&self, key: &StoreKey) -> PathBuf {
        self.dir.join(format!(
            "{:016x}-{:016x}-{:016x}.svba",
            key.module_fp, key.target_fp, key.options_fp
        ))
    }

    /// Probe the store for `key`, climbing the full validation ladder.
    ///
    /// Never fails and never panics: every way an entry can be wrong —
    /// missing rungs are enumerated in the [module documentation](self) —
    /// collapses into [`StoreLoad::Reject`] (or [`StoreLoad::Miss`] when no
    /// entry exists at all).
    pub fn load(&self, key: &StoreKey) -> StoreLoad {
        let bytes = match fs::read(self.entry_path(key)) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return StoreLoad::Miss,
            Err(_) => return StoreLoad::Reject,
        };
        match decode_entry(&bytes, key) {
            Ok(artifact) => StoreLoad::Hit(Box::new(artifact)),
            Err(_) => StoreLoad::Reject,
        }
    }

    /// Persist an artifact under `key`, atomically replacing any existing
    /// entry.
    ///
    /// Best-effort: all I/O failures are swallowed (reported as `false`) —
    /// persistence is an optimization, and a full or read-only disk must
    /// degrade to the no-store behaviour, not fail the compile that just
    /// succeeded.
    pub fn save(&self, key: &StoreKey, program: &MProgram, jit: &JitStats) -> bool {
        let bytes = encode_entry(key, program, jit);
        let tmp = self.dir.join(format!(
            ".tmp-{:016x}-{}-{}",
            key.target_fp ^ key.options_fp,
            std::process::id(),
            self.temp_seq.fetch_add(1, Ordering::Relaxed),
        ));
        if fs::write(&tmp, &bytes).is_err() {
            let _ = fs::remove_file(&tmp);
            return false;
        }
        // Atomic on POSIX: a concurrent load sees either the old complete
        // entry or the new complete entry, never a prefix.
        if fs::rename(&tmp, self.entry_path(key)).is_err() {
            let _ = fs::remove_file(&tmp);
            return false;
        }
        true
    }

    /// Remove the entry for `key`, if present. Returns `true` if a file was
    /// deleted.
    pub fn remove(&self, key: &StoreKey) -> bool {
        fs::remove_file(self.entry_path(key)).is_ok()
    }

    /// Remove every `.svba` entry in the store directory (temp files too).
    ///
    /// The cold half of a cold-vs-warm benchmark; also handy in tests.
    pub fn clear(&self) {
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.ends_with(".svba") || name.starts_with(".tmp-") {
                let _ = fs::remove_file(entry.path());
            }
        }
    }

    /// Number of `.svba` entries currently in the store directory.
    pub fn len(&self) -> usize {
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return 0;
        };
        entries
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().ends_with(".svba"))
            .count()
    }

    /// `true` if the store directory holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Serialize a full store entry (header + payload) for `key`.
fn encode_entry(key: &StoreKey, program: &MProgram, jit: &JitStats) -> Vec<u8> {
    let mut payload = Writer::new();
    write_artifact(&mut payload, program, jit);
    let payload = payload.into_bytes();
    let mut w = Writer::new();
    w.bytes(STORE_MAGIC);
    w.u8(STORE_FORMAT_VERSION);
    w.u8(splitc_vbc::VERSION);
    w.u64_le(key.module_fp);
    w.u64_le(key.target_fp);
    w.u64_le(key.options_fp);
    w.u64_le(payload.len() as u64);
    w.u64_le(Fnv1a::hash(&payload));
    w.bytes(&payload);
    w.into_bytes()
}

/// Decode and validate a full store entry against the key it was looked up
/// under. Every failure mode maps to a `DecodeError` (the caller collapses
/// them all into [`StoreLoad::Reject`]).
fn decode_entry(bytes: &[u8], key: &StoreKey) -> Result<StoredArtifact, DecodeError> {
    if bytes.len() < HEADER_LEN || &bytes[..4] != STORE_MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let mut r = Reader::new(&bytes[4..]);
    let store_version = r.u8()?;
    if store_version != STORE_FORMAT_VERSION {
        return Err(DecodeError::BadVersion(store_version));
    }
    let vbc_version = r.u8()?;
    if vbc_version != splitc_vbc::VERSION {
        return Err(DecodeError::BadVersion(vbc_version));
    }
    let module_fp = r.u64_le()?;
    let target_fp = r.u64_le()?;
    let options_fp = r.u64_le()?;
    if (module_fp, target_fp, options_fp) != (key.module_fp, key.target_fp, key.options_fp) {
        // A mis-keyed entry (renamed file, fingerprint scheme change) must
        // not be trusted: the name promised one artifact, the header claims
        // another.
        return Err(DecodeError::BadMagic);
    }
    let payload_len = r.u64_le()?;
    let stored_checksum = r.u64_le()?;
    let payload = r.rest();
    if payload_len != payload.len() as u64 {
        // Truncated (crash mid-write on a non-atomic filesystem) or padded.
        return Err(DecodeError::UnexpectedEof);
    }
    if Fnv1a::hash(payload) != stored_checksum {
        return Err(DecodeError::BadMagic);
    }
    let mut pr = Reader::new(payload);
    let artifact = read_artifact(&mut pr)?;
    pr.finish()?;
    Ok(artifact)
}

// ---------------------------------------------------------------------------
// Artifact payload codec: MProgram + JitStats over the vbc wire primitives.
//
// This is a trust boundary exactly like `decode_module`: lengths are
// attacker-controlled (a flipped bit), so pre-allocation hints are capped and
// every tag is validated. The encoder and decoder must stay in exact
// lockstep; any change here requires bumping STORE_FORMAT_VERSION.
// ---------------------------------------------------------------------------

/// Cap on speculative pre-allocation from wire lengths (same rationale as
/// the vbc decoder: a corrupt length must fail as EOF, not abort on OOM).
const MAX_PREALLOC: usize = 1 << 12;

fn cap_hint(n: usize) -> usize {
    n.min(MAX_PREALLOC)
}

fn bad(what: &'static str, tag: u8) -> DecodeError {
    DecodeError::BadTag { what, tag }
}

fn write_artifact(w: &mut Writer, program: &MProgram, jit: &JitStats) {
    write_program(w, program);
    write_jit_stats(w, jit);
}

fn read_artifact(r: &mut Reader<'_>) -> Result<StoredArtifact, DecodeError> {
    let program = read_program(r)?;
    let jit = read_jit_stats(r)?;
    Ok(StoredArtifact { program, jit })
}

fn write_program(w: &mut Writer, p: &MProgram) {
    w.str(&p.name);
    w.uleb(p.functions.len() as u64);
    for f in &p.functions {
        write_function(w, f);
    }
}

fn read_program(r: &mut Reader<'_>) -> Result<MProgram, DecodeError> {
    let name = r.str()?;
    let nfuncs = r.uleb()? as usize;
    let mut functions = Vec::with_capacity(cap_hint(nfuncs));
    for _ in 0..nfuncs {
        functions.push(read_function(r)?);
    }
    Ok(MProgram { name, functions })
}

fn write_function(w: &mut Writer, f: &MFunction) {
    w.str(&f.name);
    w.uleb(f.params.len() as u64);
    for p in &f.params {
        write_preg(w, *p);
    }
    w.uleb(u64::from(f.num_slots));
    w.uleb(f.blocks.len() as u64);
    for b in &f.blocks {
        w.uleb(b.insts.len() as u64);
        for inst in &b.insts {
            write_inst(w, inst);
        }
    }
}

fn read_function(r: &mut Reader<'_>) -> Result<MFunction, DecodeError> {
    let name = r.str()?;
    let nparams = r.uleb()? as usize;
    let mut params = Vec::with_capacity(cap_hint(nparams));
    for _ in 0..nparams {
        params.push(read_preg(r)?);
    }
    let num_slots = read_u32(r, "num_slots")?;
    let nblocks = r.uleb()? as usize;
    let mut blocks = Vec::with_capacity(cap_hint(nblocks));
    for _ in 0..nblocks {
        let ninsts = r.uleb()? as usize;
        let mut insts = Vec::with_capacity(cap_hint(ninsts));
        for _ in 0..ninsts {
            insts.push(read_inst(r)?);
        }
        blocks.push(MBlock { insts });
    }
    Ok(MFunction {
        name,
        params,
        blocks,
        num_slots,
    })
}

fn write_jit_stats(w: &mut Writer, s: &JitStats) {
    w.uleb(s.functions);
    w.uleb(s.verify_work);
    w.uleb(s.lowering_work);
    w.uleb(s.regalloc_work);
    w.uleb(s.static_spills);
    w.uleb(s.static_reloads);
    w.u8(u8::from(s.annotations_used) | u8::from(s.used_simd) << 1 | u8::from(s.scalarized) << 2);
}

fn read_jit_stats(r: &mut Reader<'_>) -> Result<JitStats, DecodeError> {
    let functions = r.uleb()?;
    let verify_work = r.uleb()?;
    let lowering_work = r.uleb()?;
    let regalloc_work = r.uleb()?;
    let static_spills = r.uleb()?;
    let static_reloads = r.uleb()?;
    let flags = r.u8()?;
    if flags > 0b111 {
        return Err(bad("jit stats flags", flags));
    }
    Ok(JitStats {
        functions,
        verify_work,
        lowering_work,
        regalloc_work,
        static_spills,
        static_reloads,
        annotations_used: flags & 1 != 0,
        used_simd: flags & 2 != 0,
        scalarized: flags & 4 != 0,
    })
}

fn write_preg(w: &mut Writer, p: PReg) {
    w.u8(match p.class {
        RegClass::Int => 0,
        RegClass::Float => 1,
        RegClass::Vec => 2,
    });
    w.uleb(u64::from(p.index));
}

fn read_preg(r: &mut Reader<'_>) -> Result<PReg, DecodeError> {
    let class = match r.u8()? {
        0 => RegClass::Int,
        1 => RegClass::Float,
        2 => RegClass::Vec,
        tag => return Err(bad("register class", tag)),
    };
    let index = r.uleb()?;
    let index = u16::try_from(index).map_err(|_| bad("register index", index as u8))?;
    Ok(PReg { class, index })
}

fn write_opt_preg(w: &mut Writer, p: Option<PReg>) {
    match p {
        Some(p) => {
            w.u8(1);
            write_preg(w, p);
        }
        None => w.u8(0),
    }
}

fn read_opt_preg(r: &mut Reader<'_>) -> Result<Option<PReg>, DecodeError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(read_preg(r)?)),
        tag => Err(bad("optional register", tag)),
    }
}

fn write_width(w: &mut Writer, width: Width) {
    w.u8(match width {
        Width::W8 => 0,
        Width::W16 => 1,
        Width::W32 => 2,
        Width::W64 => 3,
    });
}

fn read_width(r: &mut Reader<'_>) -> Result<Width, DecodeError> {
    Ok(match r.u8()? {
        0 => Width::W8,
        1 => Width::W16,
        2 => Width::W32,
        3 => Width::W64,
        tag => return Err(bad("width", tag)),
    })
}

fn write_alu_op(w: &mut Writer, op: AluOp) {
    w.u8(match op {
        AluOp::Add => 0,
        AluOp::Sub => 1,
        AluOp::Mul => 2,
        AluOp::Div => 3,
        AluOp::Rem => 4,
        AluOp::And => 5,
        AluOp::Or => 6,
        AluOp::Xor => 7,
        AluOp::Shl => 8,
        AluOp::Shr => 9,
        AluOp::Min => 10,
        AluOp::Max => 11,
    });
}

fn read_alu_op(r: &mut Reader<'_>) -> Result<AluOp, DecodeError> {
    Ok(match r.u8()? {
        0 => AluOp::Add,
        1 => AluOp::Sub,
        2 => AluOp::Mul,
        3 => AluOp::Div,
        4 => AluOp::Rem,
        5 => AluOp::And,
        6 => AluOp::Or,
        7 => AluOp::Xor,
        8 => AluOp::Shl,
        9 => AluOp::Shr,
        10 => AluOp::Min,
        11 => AluOp::Max,
        tag => return Err(bad("alu op", tag)),
    })
}

fn write_fpu_op(w: &mut Writer, op: FpuOp) {
    w.u8(match op {
        FpuOp::Add => 0,
        FpuOp::Sub => 1,
        FpuOp::Mul => 2,
        FpuOp::Div => 3,
        FpuOp::Min => 4,
        FpuOp::Max => 5,
    });
}

fn read_fpu_op(r: &mut Reader<'_>) -> Result<FpuOp, DecodeError> {
    Ok(match r.u8()? {
        0 => FpuOp::Add,
        1 => FpuOp::Sub,
        2 => FpuOp::Mul,
        3 => FpuOp::Div,
        4 => FpuOp::Min,
        5 => FpuOp::Max,
        tag => return Err(bad("fpu op", tag)),
    })
}

fn write_pred(w: &mut Writer, pred: CmpPred) {
    w.u8(match pred {
        CmpPred::Eq => 0,
        CmpPred::Ne => 1,
        CmpPred::Lt => 2,
        CmpPred::Le => 3,
        CmpPred::Gt => 4,
        CmpPred::Ge => 5,
    });
}

fn read_pred(r: &mut Reader<'_>) -> Result<CmpPred, DecodeError> {
    Ok(match r.u8()? {
        0 => CmpPred::Eq,
        1 => CmpPred::Ne,
        2 => CmpPred::Lt,
        3 => CmpPred::Le,
        4 => CmpPred::Gt,
        5 => CmpPred::Ge,
        tag => return Err(bad("compare predicate", tag)),
    })
}

fn write_red_op(w: &mut Writer, op: RedOp) {
    w.u8(match op {
        RedOp::Add => 0,
        RedOp::Min => 1,
        RedOp::Max => 2,
    });
}

fn read_red_op(r: &mut Reader<'_>) -> Result<RedOp, DecodeError> {
    Ok(match r.u8()? {
        0 => RedOp::Add,
        1 => RedOp::Min,
        2 => RedOp::Max,
        tag => return Err(bad("reduce op", tag)),
    })
}

fn read_bool(r: &mut Reader<'_>, what: &'static str) -> Result<bool, DecodeError> {
    match r.u8()? {
        0 => Ok(false),
        1 => Ok(true),
        tag => Err(bad(what, tag)),
    }
}

fn read_u32(r: &mut Reader<'_>, what: &'static str) -> Result<u32, DecodeError> {
    let v = r.uleb()?;
    u32::try_from(v).map_err(|_| bad(what, v as u8))
}

fn write_inst(w: &mut Writer, inst: &MInst) {
    match inst {
        MInst::Imm { dst, value } => {
            w.u8(0);
            write_preg(w, *dst);
            w.sleb(*value);
        }
        MInst::FImm { dst, value } => {
            w.u8(1);
            write_preg(w, *dst);
            w.f64(*value);
        }
        MInst::Mov { dst, src } => {
            w.u8(2);
            write_preg(w, *dst);
            write_preg(w, *src);
        }
        MInst::IntOp {
            op,
            width,
            signed,
            dst,
            lhs,
            rhs,
        } => {
            w.u8(3);
            write_alu_op(w, *op);
            write_width(w, *width);
            w.u8(u8::from(*signed));
            write_preg(w, *dst);
            write_preg(w, *lhs);
            write_preg(w, *rhs);
        }
        MInst::FloatOp {
            op,
            double,
            dst,
            lhs,
            rhs,
        } => {
            w.u8(4);
            write_fpu_op(w, *op);
            w.u8(u8::from(*double));
            write_preg(w, *dst);
            write_preg(w, *lhs);
            write_preg(w, *rhs);
        }
        MInst::IntNeg { width, dst, src } => {
            w.u8(5);
            write_width(w, *width);
            write_preg(w, *dst);
            write_preg(w, *src);
        }
        MInst::IntNot { width, dst, src } => {
            w.u8(6);
            write_width(w, *width);
            write_preg(w, *dst);
            write_preg(w, *src);
        }
        MInst::FloatNeg { double, dst, src } => {
            w.u8(7);
            w.u8(u8::from(*double));
            write_preg(w, *dst);
            write_preg(w, *src);
        }
        MInst::IntCmp {
            pred,
            width,
            signed,
            dst,
            lhs,
            rhs,
        } => {
            w.u8(8);
            write_pred(w, *pred);
            write_width(w, *width);
            w.u8(u8::from(*signed));
            write_preg(w, *dst);
            write_preg(w, *lhs);
            write_preg(w, *rhs);
        }
        MInst::FloatCmp {
            pred,
            double,
            dst,
            lhs,
            rhs,
        } => {
            w.u8(9);
            write_pred(w, *pred);
            w.u8(u8::from(*double));
            write_preg(w, *dst);
            write_preg(w, *lhs);
            write_preg(w, *rhs);
        }
        MInst::Select {
            dst,
            cond,
            if_true,
            if_false,
        } => {
            w.u8(10);
            write_preg(w, *dst);
            write_preg(w, *cond);
            write_preg(w, *if_true);
            write_preg(w, *if_false);
        }
        MInst::IntToFloat {
            signed,
            double,
            dst,
            src,
        } => {
            w.u8(11);
            w.u8(u8::from(*signed));
            w.u8(u8::from(*double));
            write_preg(w, *dst);
            write_preg(w, *src);
        }
        MInst::FloatToInt {
            width,
            signed,
            dst,
            src,
        } => {
            w.u8(12);
            write_width(w, *width);
            w.u8(u8::from(*signed));
            write_preg(w, *dst);
            write_preg(w, *src);
        }
        MInst::FloatCvt {
            to_double,
            dst,
            src,
        } => {
            w.u8(13);
            w.u8(u8::from(*to_double));
            write_preg(w, *dst);
            write_preg(w, *src);
        }
        MInst::IntResize {
            width,
            signed,
            dst,
            src,
        } => {
            w.u8(14);
            write_width(w, *width);
            w.u8(u8::from(*signed));
            write_preg(w, *dst);
            write_preg(w, *src);
        }
        MInst::Load {
            width,
            float,
            signed,
            dst,
            base,
            offset,
        } => {
            w.u8(15);
            write_width(w, *width);
            w.u8(u8::from(*float));
            w.u8(u8::from(*signed));
            write_preg(w, *dst);
            write_preg(w, *base);
            w.sleb(*offset);
        }
        MInst::Store {
            width,
            float,
            base,
            offset,
            src,
        } => {
            w.u8(16);
            write_width(w, *width);
            w.u8(u8::from(*float));
            write_preg(w, *base);
            w.sleb(*offset);
            write_preg(w, *src);
        }
        MInst::VecLoad { dst, base, offset } => {
            w.u8(17);
            write_preg(w, *dst);
            write_preg(w, *base);
            w.sleb(*offset);
        }
        MInst::VecStore { base, offset, src } => {
            w.u8(18);
            write_preg(w, *base);
            w.sleb(*offset);
            write_preg(w, *src);
        }
        MInst::VecSplatInt { elem, dst, src } => {
            w.u8(19);
            write_width(w, *elem);
            write_preg(w, *dst);
            write_preg(w, *src);
        }
        MInst::VecSplatFloat { elem, dst, src } => {
            w.u8(20);
            write_width(w, *elem);
            write_preg(w, *dst);
            write_preg(w, *src);
        }
        MInst::VecIntOp {
            op,
            elem,
            signed,
            dst,
            lhs,
            rhs,
        } => {
            w.u8(21);
            write_alu_op(w, *op);
            write_width(w, *elem);
            w.u8(u8::from(*signed));
            write_preg(w, *dst);
            write_preg(w, *lhs);
            write_preg(w, *rhs);
        }
        MInst::VecFloatOp {
            op,
            elem,
            dst,
            lhs,
            rhs,
        } => {
            w.u8(22);
            write_fpu_op(w, *op);
            write_width(w, *elem);
            write_preg(w, *dst);
            write_preg(w, *lhs);
            write_preg(w, *rhs);
        }
        MInst::VecReduceInt {
            op,
            elem,
            signed,
            dst,
            src,
        } => {
            w.u8(23);
            write_red_op(w, *op);
            write_width(w, *elem);
            w.u8(u8::from(*signed));
            write_preg(w, *dst);
            write_preg(w, *src);
        }
        MInst::VecReduceFloat { op, elem, dst, src } => {
            w.u8(24);
            write_red_op(w, *op);
            write_width(w, *elem);
            write_preg(w, *dst);
            write_preg(w, *src);
        }
        MInst::Spill { slot, src } => {
            w.u8(25);
            w.uleb(u64::from(*slot));
            write_preg(w, *src);
        }
        MInst::Reload { slot, dst } => {
            w.u8(26);
            w.uleb(u64::from(*slot));
            write_preg(w, *dst);
        }
        MInst::Jump { target } => {
            w.u8(27);
            w.uleb(u64::from(*target));
        }
        MInst::BranchNz {
            cond,
            then_target,
            else_target,
        } => {
            w.u8(28);
            write_preg(w, *cond);
            w.uleb(u64::from(*then_target));
            w.uleb(u64::from(*else_target));
        }
        MInst::Call { callee, args, ret } => {
            w.u8(29);
            w.str(callee);
            w.uleb(args.len() as u64);
            for a in args {
                write_preg(w, *a);
            }
            write_opt_preg(w, *ret);
        }
        MInst::Ret { value } => {
            w.u8(30);
            write_opt_preg(w, *value);
        }
    }
}

fn read_inst(r: &mut Reader<'_>) -> Result<MInst, DecodeError> {
    Ok(match r.u8()? {
        0 => MInst::Imm {
            dst: read_preg(r)?,
            value: r.sleb()?,
        },
        1 => MInst::FImm {
            dst: read_preg(r)?,
            value: r.f64()?,
        },
        2 => MInst::Mov {
            dst: read_preg(r)?,
            src: read_preg(r)?,
        },
        3 => MInst::IntOp {
            op: read_alu_op(r)?,
            width: read_width(r)?,
            signed: read_bool(r, "int op signed")?,
            dst: read_preg(r)?,
            lhs: read_preg(r)?,
            rhs: read_preg(r)?,
        },
        4 => MInst::FloatOp {
            op: read_fpu_op(r)?,
            double: read_bool(r, "float op double")?,
            dst: read_preg(r)?,
            lhs: read_preg(r)?,
            rhs: read_preg(r)?,
        },
        5 => MInst::IntNeg {
            width: read_width(r)?,
            dst: read_preg(r)?,
            src: read_preg(r)?,
        },
        6 => MInst::IntNot {
            width: read_width(r)?,
            dst: read_preg(r)?,
            src: read_preg(r)?,
        },
        7 => MInst::FloatNeg {
            double: read_bool(r, "float neg double")?,
            dst: read_preg(r)?,
            src: read_preg(r)?,
        },
        8 => MInst::IntCmp {
            pred: read_pred(r)?,
            width: read_width(r)?,
            signed: read_bool(r, "int cmp signed")?,
            dst: read_preg(r)?,
            lhs: read_preg(r)?,
            rhs: read_preg(r)?,
        },
        9 => MInst::FloatCmp {
            pred: read_pred(r)?,
            double: read_bool(r, "float cmp double")?,
            dst: read_preg(r)?,
            lhs: read_preg(r)?,
            rhs: read_preg(r)?,
        },
        10 => MInst::Select {
            dst: read_preg(r)?,
            cond: read_preg(r)?,
            if_true: read_preg(r)?,
            if_false: read_preg(r)?,
        },
        11 => MInst::IntToFloat {
            signed: read_bool(r, "int to float signed")?,
            double: read_bool(r, "int to float double")?,
            dst: read_preg(r)?,
            src: read_preg(r)?,
        },
        12 => MInst::FloatToInt {
            width: read_width(r)?,
            signed: read_bool(r, "float to int signed")?,
            dst: read_preg(r)?,
            src: read_preg(r)?,
        },
        13 => MInst::FloatCvt {
            to_double: read_bool(r, "float cvt to_double")?,
            dst: read_preg(r)?,
            src: read_preg(r)?,
        },
        14 => MInst::IntResize {
            width: read_width(r)?,
            signed: read_bool(r, "int resize signed")?,
            dst: read_preg(r)?,
            src: read_preg(r)?,
        },
        15 => MInst::Load {
            width: read_width(r)?,
            float: read_bool(r, "load float")?,
            signed: read_bool(r, "load signed")?,
            dst: read_preg(r)?,
            base: read_preg(r)?,
            offset: r.sleb()?,
        },
        16 => MInst::Store {
            width: read_width(r)?,
            float: read_bool(r, "store float")?,
            base: read_preg(r)?,
            offset: r.sleb()?,
            src: read_preg(r)?,
        },
        17 => MInst::VecLoad {
            dst: read_preg(r)?,
            base: read_preg(r)?,
            offset: r.sleb()?,
        },
        18 => MInst::VecStore {
            base: read_preg(r)?,
            offset: r.sleb()?,
            src: read_preg(r)?,
        },
        19 => MInst::VecSplatInt {
            elem: read_width(r)?,
            dst: read_preg(r)?,
            src: read_preg(r)?,
        },
        20 => MInst::VecSplatFloat {
            elem: read_width(r)?,
            dst: read_preg(r)?,
            src: read_preg(r)?,
        },
        21 => MInst::VecIntOp {
            op: read_alu_op(r)?,
            elem: read_width(r)?,
            signed: read_bool(r, "vec int op signed")?,
            dst: read_preg(r)?,
            lhs: read_preg(r)?,
            rhs: read_preg(r)?,
        },
        22 => MInst::VecFloatOp {
            op: read_fpu_op(r)?,
            elem: read_width(r)?,
            dst: read_preg(r)?,
            lhs: read_preg(r)?,
            rhs: read_preg(r)?,
        },
        23 => MInst::VecReduceInt {
            op: read_red_op(r)?,
            elem: read_width(r)?,
            signed: read_bool(r, "vec reduce signed")?,
            dst: read_preg(r)?,
            src: read_preg(r)?,
        },
        24 => MInst::VecReduceFloat {
            op: read_red_op(r)?,
            elem: read_width(r)?,
            dst: read_preg(r)?,
            src: read_preg(r)?,
        },
        25 => MInst::Spill {
            slot: read_u32(r, "spill slot")?,
            src: read_preg(r)?,
        },
        26 => MInst::Reload {
            slot: read_u32(r, "reload slot")?,
            dst: read_preg(r)?,
        },
        27 => MInst::Jump {
            target: read_u32(r, "jump target")?,
        },
        28 => MInst::BranchNz {
            cond: read_preg(r)?,
            then_target: read_u32(r, "branch then target")?,
            else_target: read_u32(r, "branch else target")?,
        },
        29 => {
            let callee = r.str()?;
            let nargs = r.uleb()? as usize;
            let mut args = Vec::with_capacity(cap_hint(nargs));
            for _ in 0..nargs {
                args.push(read_preg(r)?);
            }
            let ret = read_opt_preg(r)?;
            MInst::Call { callee, args, ret }
        }
        30 => MInst::Ret {
            value: read_opt_preg(r)?,
        },
        tag => return Err(bad("machine instruction", tag)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitc_jit::{compile_module, JitOptions};
    use splitc_minic::compile_source;
    use splitc_targets::TargetDesc;

    fn temp_store(name: &str) -> ArtifactStore {
        let dir =
            std::env::temp_dir().join(format!("splitc-store-unit-{}-{name}", std::process::id()));
        let store = ArtifactStore::open(&dir).expect("temp store opens");
        store.clear();
        store
    }

    fn compiled_artifact() -> (StoredArtifact, StoreKey) {
        let module = compile_source(
            "fn mix(n: i32, a: f32, x: *f32) -> f32 {
                let acc: f32 = 0.0;
                for (let i: i32 = 0; i < n; i = i + 1) {
                    x[i] = a * x[i];
                    acc = acc + x[i];
                }
                return acc;
            }
            fn callit(n: i32, a: f32, x: *f32) -> f32 { return mix(n, a, x); }",
            "m",
        )
        .unwrap();
        let target = TargetDesc::x86_sse();
        let options = JitOptions::split();
        let (program, jit) = compile_module(&module, &target, &options).unwrap();
        let key = StoreKey {
            module_fp: Fnv1a::hash(&splitc_vbc::encode_module(&module)),
            target_fp: target.fingerprint(),
            options_fp: options.fingerprint(),
        };
        (StoredArtifact { program, jit }, key)
    }

    #[test]
    fn artifact_round_trips_through_the_wire_codec() {
        let (artifact, _) = compiled_artifact();
        let mut w = Writer::new();
        write_artifact(&mut w, &artifact.program, &artifact.jit);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let decoded = read_artifact(&mut r).expect("decodes");
        r.finish().expect("consumed exactly");
        assert_eq!(decoded, artifact);
    }

    #[test]
    fn save_then_load_round_trips_through_disk() {
        let store = temp_store("round-trip");
        let (artifact, key) = compiled_artifact();
        assert!(matches!(store.load(&key), StoreLoad::Miss));
        assert!(store.save(&key, &artifact.program, &artifact.jit));
        assert_eq!(store.len(), 1);
        match store.load(&key) {
            StoreLoad::Hit(loaded) => assert_eq!(*loaded, artifact),
            other => panic!("expected hit, got {other:?}"),
        }
        store.clear();
        assert!(store.is_empty());
    }

    #[test]
    fn every_header_rung_rejects_when_violated() {
        let store = temp_store("ladder");
        let (artifact, key) = compiled_artifact();
        store.save(&key, &artifact.program, &artifact.jit);
        let path = store.entry_path(&key);
        let good = std::fs::read(&path).unwrap();

        let mut cases: Vec<(&str, Vec<u8>)> = Vec::new();
        cases.push(("empty", Vec::new()));
        cases.push(("short", good[..HEADER_LEN - 1].to_vec()));
        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        cases.push(("magic", bad_magic));
        let mut bad_store_version = good.clone();
        bad_store_version[4] = STORE_FORMAT_VERSION + 1;
        cases.push(("store version", bad_store_version));
        let mut bad_vbc_version = good.clone();
        bad_vbc_version[5] = splitc_vbc::VERSION + 1;
        cases.push(("vbc version", bad_vbc_version));
        let mut bad_key = good.clone();
        bad_key[6] ^= 0xff; // module fingerprint
        cases.push(("key triple", bad_key));
        let mut truncated = good.clone();
        truncated.truncate(good.len() - 1);
        cases.push(("payload length", truncated));
        let mut padded = good.clone();
        padded.push(0);
        cases.push(("payload padding", padded));
        let mut corrupt = good.clone();
        *corrupt.last_mut().unwrap() ^= 0x40;
        cases.push(("checksum", corrupt));

        for (what, bytes) in cases {
            std::fs::write(&path, &bytes).unwrap();
            assert!(
                matches!(store.load(&key), StoreLoad::Reject),
                "{what} violation must reject"
            );
        }

        // Restore the good entry: the ladder passes again.
        std::fs::write(&path, &good).unwrap();
        assert!(matches!(store.load(&key), StoreLoad::Hit(_)));
        store.clear();
    }

    #[test]
    fn save_overwrites_atomically() {
        let store = temp_store("overwrite");
        let (artifact, key) = compiled_artifact();
        store.save(&key, &artifact.program, &artifact.jit);
        // Corrupt in place, then save again: the entry must be whole.
        let path = store.entry_path(&key);
        std::fs::write(&path, b"garbage").unwrap();
        assert!(matches!(store.load(&key), StoreLoad::Reject));
        assert!(store.save(&key, &artifact.program, &artifact.jit));
        assert!(matches!(store.load(&key), StoreLoad::Hit(_)));
        assert!(store.remove(&key));
        assert!(matches!(store.load(&key), StoreLoad::Miss));
        store.clear();
    }

    #[test]
    fn corrupt_entries_never_panic() {
        // Seeded random mutations of a valid entry: load() must only ever
        // answer Hit-with-the-original or Reject — never panic, never a
        // different artifact (the checksum makes surviving mutations
        // astronomically unlikely, but Hit(original) is the honest oracle).
        let store = temp_store("fuzz");
        let (artifact, key) = compiled_artifact();
        store.save(&key, &artifact.program, &artifact.jit);
        let path = store.entry_path(&key);
        let good = std::fs::read(&path).unwrap();
        let mut state = 0x5eed_0000_babe_u64;
        let mut rand = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_f491_4f6c_dd1d)
        };
        for _ in 0..500 {
            let mut mutated = good.clone();
            for _ in 0..(rand() % 3 + 1) {
                let idx = (rand() as usize) % mutated.len();
                mutated[idx] = rand() as u8;
            }
            std::fs::write(&path, &mutated).unwrap();
            match store.load(&key) {
                StoreLoad::Hit(loaded) => assert_eq!(*loaded, artifact),
                StoreLoad::Reject | StoreLoad::Miss => {}
            }
        }
        store.clear();
    }
}
