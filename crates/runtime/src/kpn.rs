//! Kahn process networks.
//!
//! Section 4 of the paper points at Kahn process networks as the semantic
//! basis for *portable, deterministic, composable* concurrency in future
//! bytecode formats. This module provides that substrate: processes connected
//! by unbounded FIFO channels with blocking reads. Determinism is structural —
//! the sequence of values (here, token timestamps in FIFO order) on every
//! channel does not depend on the scheduling order — and the simulator lets
//! the experiments study how the same network maps onto one or many cores.

use crate::engine::{EngineError, ExecutionEngine};
use crate::platform::{Core, Platform};
use splitc_jit::JitOptions;
use splitc_targets::MachineValue;
use std::collections::VecDeque;

/// Identifier of a channel within a [`Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChannelId(pub usize);

/// Identifier of a process within a [`Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProcessId(pub usize);

/// A process of the network.
#[derive(Debug, Clone, PartialEq)]
pub struct Process {
    /// Process name (for reporting).
    pub name: String,
    /// Channels read on each firing (one token each).
    pub inputs: Vec<ChannelId>,
    /// Channels written on each firing (one token each).
    pub outputs: Vec<ChannelId>,
    /// Cost of one firing, in scaled cycles, indexed by core id.
    pub firing_cost: Vec<f64>,
    /// For source processes (no inputs): how many tokens they produce in total.
    pub source_firings: u64,
}

/// A process network.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Network {
    processes: Vec<Process>,
    num_channels: usize,
}

impl Network {
    /// Create an empty network.
    pub fn new() -> Self {
        Network::default()
    }

    /// Add a FIFO channel and return its id.
    pub fn add_channel(&mut self) -> ChannelId {
        self.num_channels += 1;
        ChannelId(self.num_channels - 1)
    }

    /// Add a source process that fires `firings` times, writing one token to
    /// each output channel per firing.
    pub fn add_source(
        &mut self,
        name: &str,
        outputs: Vec<ChannelId>,
        firing_cost: Vec<f64>,
        firings: u64,
    ) -> ProcessId {
        self.processes.push(Process {
            name: name.to_owned(),
            inputs: Vec::new(),
            outputs,
            firing_cost,
            source_firings: firings,
        });
        ProcessId(self.processes.len() - 1)
    }

    /// Add an interior or sink process (fires whenever every input has a token).
    pub fn add_process(
        &mut self,
        name: &str,
        inputs: Vec<ChannelId>,
        outputs: Vec<ChannelId>,
        firing_cost: Vec<f64>,
    ) -> ProcessId {
        self.processes.push(Process {
            name: name.to_owned(),
            inputs,
            outputs,
            firing_cost,
            source_firings: 0,
        });
        ProcessId(self.processes.len() - 1)
    }

    /// All processes.
    pub fn processes(&self) -> &[Process] {
        &self.processes
    }

    /// Number of channels.
    pub fn num_channels(&self) -> usize {
        self.num_channels
    }

    /// Simulate the network with each process pinned to a core by `mapping`
    /// (indexed by process id) on a machine with `num_cores` cores.
    ///
    /// Firing semantics are those of a Kahn network specialized to one token
    /// per channel per firing: a process is runnable when every input channel
    /// holds at least one token; reads are blocking; channels are unbounded
    /// FIFOs. A core runs one firing at a time.
    ///
    /// # Panics
    ///
    /// Panics if `mapping` does not assign a valid core to every process or if
    /// a process lacks a cost for its assigned core.
    pub fn simulate(&self, mapping: &[usize], num_cores: usize) -> KpnReport {
        assert_eq!(
            mapping.len(),
            self.processes.len(),
            "one core per process required"
        );
        for (p, core) in self.processes.iter().zip(mapping) {
            assert!(
                *core < num_cores,
                "process {} mapped to nonexistent core {core}",
                p.name
            );
            assert!(
                p.firing_cost.len() > *core,
                "process {} has no cost estimate for core {core}",
                p.name
            );
        }
        let mut channels: Vec<VecDeque<f64>> = vec![VecDeque::new(); self.num_channels];
        let mut remaining_source: Vec<u64> =
            self.processes.iter().map(|p| p.source_firings).collect();
        let mut core_free = vec![0.0f64; num_cores];
        let mut firings = vec![0u64; self.processes.len()];
        let mut busy = vec![0.0f64; num_cores];
        let mut makespan = 0.0f64;

        loop {
            // Find the runnable process that can start earliest (deterministic
            // tie-break on process id).
            let mut best: Option<(usize, f64)> = None;
            for (i, p) in self.processes.iter().enumerate() {
                let runnable = if p.inputs.is_empty() {
                    remaining_source[i] > 0
                } else {
                    p.inputs.iter().all(|c| !channels[c.0].is_empty())
                };
                if !runnable {
                    continue;
                }
                let data_ready = p
                    .inputs
                    .iter()
                    .map(|c| *channels[c.0].front().expect("checked non-empty"))
                    .fold(0.0f64, f64::max);
                let start = data_ready.max(core_free[mapping[i]]);
                if best.map(|(_, s)| start < s).unwrap_or(true) {
                    best = Some((i, start));
                }
            }
            let Some((i, start)) = best else { break };
            let p = &self.processes[i];
            let cost = p.firing_cost[mapping[i]];
            let end = start + cost;
            for c in &p.inputs {
                channels[c.0].pop_front();
            }
            for c in &p.outputs {
                channels[c.0].push_back(end);
            }
            if p.inputs.is_empty() {
                remaining_source[i] -= 1;
            }
            core_free[mapping[i]] = end;
            busy[mapping[i]] += cost;
            firings[i] += 1;
            makespan = makespan.max(end);
        }

        KpnReport {
            firings,
            makespan,
            core_busy: busy,
        }
    }
}

/// Outcome of one network simulation.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct KpnReport {
    /// Number of firings per process (indexed by process id).
    pub firings: Vec<u64>,
    /// Completion time of the last firing, in scaled cycles.
    pub makespan: f64,
    /// Busy time per core.
    pub core_busy: Vec<f64>,
}

impl KpnReport {
    /// Average utilization across the cores that did any work.
    pub fn utilization(&self) -> f64 {
        if self.makespan == 0.0 {
            return 0.0;
        }
        let used: Vec<f64> = self
            .core_busy
            .iter()
            .copied()
            .filter(|b| *b > 0.0)
            .collect();
        if used.is_empty() {
            0.0
        } else {
            used.iter().sum::<f64>() / (self.makespan * used.len() as f64)
        }
    }
}

/// Build the classic three-stage pipeline `source -> filter -> sink`.
///
/// Costs are given per stage and per core; `tokens` is the number of data
/// items pushed through the pipeline.
pub fn pipeline(stage_costs: &[Vec<f64>], tokens: u64) -> Network {
    assert!(
        stage_costs.len() >= 2,
        "a pipeline needs at least a source and a sink"
    );
    let mut net = Network::new();
    let mut prev: Option<ChannelId> = None;
    for (i, costs) in stage_costs.iter().enumerate() {
        let is_last = i + 1 == stage_costs.len();
        let out = if is_last {
            None
        } else {
            Some(net.add_channel())
        };
        match (prev, out) {
            (None, Some(o)) => {
                net.add_source(&format!("stage{i}"), vec![o], costs.clone(), tokens);
            }
            (Some(p), Some(o)) => {
                net.add_process(&format!("stage{i}"), vec![p], vec![o], costs.clone());
            }
            (Some(p), None) => {
                net.add_process(&format!("stage{i}"), vec![p], vec![], costs.clone());
            }
            (None, None) => unreachable!("pipeline has at least two stages"),
        }
        prev = out;
    }
    net
}

/// Build a linear pipeline whose per-stage, per-core firing costs are
/// *measured* rather than guessed: each stage kernel is executed once on
/// every core of `platform` through the shared `engine` (compiling each
/// distinct core type exactly once) and its scaled cycle count becomes the
/// stage's firing cost on that core.
///
/// `setup` provides, per `(stage kernel, core)`, the argument list and the
/// scratch memory the measurement run executes against. Returns the network
/// together with the measured cost matrix (stage-major, indexed by core id).
///
/// # Errors
///
/// Returns an [`EngineError`] if a stage kernel is unknown, fails to compile
/// for a core, or traps during the measurement run.
pub fn profile_pipeline<F>(
    engine: &ExecutionEngine,
    options: &JitOptions,
    platform: &Platform,
    stages: &[&str],
    tokens: u64,
    mut setup: F,
) -> Result<(Network, Vec<Vec<f64>>), EngineError>
where
    F: FnMut(&str, &Core) -> (Vec<MachineValue>, Vec<u8>),
{
    let mut stage_costs: Vec<Vec<f64>> = Vec::with_capacity(stages.len());
    for stage in stages {
        let mut per_core = Vec::with_capacity(platform.cores.len());
        for core in &platform.cores {
            let (args, mut mem) = setup(stage, core);
            let outcome = engine.run(&core.target, options, stage, &args, &mut mem)?;
            per_core.push(outcome.scaled_cycles);
        }
        stage_costs.push(per_core);
    }
    let net = pipeline(&stage_costs, tokens);
    Ok((net, stage_costs))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_fires_every_stage_once_per_token() {
        let net = pipeline(&[vec![10.0], vec![20.0], vec![5.0]], 8);
        let report = net.simulate(&[0, 0, 0], 1);
        assert_eq!(report.firings, vec![8, 8, 8]);
        // On one core the makespan is the sum of all work.
        assert!((report.makespan - 8.0 * 35.0).abs() < 1e-9);
        assert!((report.core_busy[0] - report.makespan).abs() < 1e-9);
    }

    #[test]
    fn two_cores_pipeline_the_stages() {
        let costs = [vec![10.0, 10.0], vec![10.0, 10.0], vec![10.0, 10.0]];
        let net = pipeline(&costs, 16);
        let serial = net.simulate(&[0, 0, 0], 2);
        let parallel = net.simulate(&[0, 1, 0], 2);
        assert!(
            parallel.makespan < serial.makespan,
            "pipelining should shorten the makespan: {} vs {}",
            parallel.makespan,
            serial.makespan
        );
        assert!(parallel.utilization() > 0.5);
    }

    #[test]
    fn firing_counts_are_mapping_independent_kahn_determinism() {
        let costs = [vec![7.0, 3.0], vec![11.0, 5.0], vec![2.0, 9.0]];
        let net = pipeline(&costs, 12);
        let a = net.simulate(&[0, 0, 0], 2);
        let b = net.simulate(&[0, 1, 1], 2);
        let c = net.simulate(&[1, 0, 1], 2);
        assert_eq!(a.firings, b.firings);
        assert_eq!(b.firings, c.firings);
    }

    #[test]
    fn forks_and_joins_respect_token_availability() {
        // source -> {left, right} -> join
        let mut net = Network::new();
        let c_src_l = net.add_channel();
        let c_src_r = net.add_channel();
        let c_l_join = net.add_channel();
        let c_r_join = net.add_channel();
        net.add_source("src", vec![c_src_l, c_src_r], vec![1.0, 1.0], 10);
        net.add_process("left", vec![c_src_l], vec![c_l_join], vec![5.0, 5.0]);
        net.add_process("right", vec![c_src_r], vec![c_r_join], vec![9.0, 9.0]);
        net.add_process("join", vec![c_l_join, c_r_join], vec![], vec![1.0, 1.0]);
        let report = net.simulate(&[0, 0, 1, 0], 2);
        assert_eq!(report.firings, vec![10, 10, 10, 10]);
        // The join can never outrun the slower branch.
        assert!(report.makespan >= 10.0 * 9.0);
    }

    #[test]
    #[should_panic(expected = "one core per process")]
    fn bad_mapping_is_rejected() {
        let net = pipeline(&[vec![1.0], vec![1.0]], 1);
        let _ = net.simulate(&[0], 1);
    }

    #[test]
    fn profiled_pipeline_measures_stage_costs_through_the_engine() {
        let module = splitc_minic::compile_source(
            "fn brighten(n: i32, x: *u8, y: *u8) {
                for (let i: i32 = 0; i < n; i = i + 1) { y[i] = x[i] + 1; }
            }
            fn copy(n: i32, x: *u8, y: *u8) {
                for (let i: i32 = 0; i < n; i = i + 1) { y[i] = x[i]; }
            }",
            "stages",
        )
        .unwrap();
        let engine = ExecutionEngine::new(module);
        let platform = Platform::cell_blade(1); // one PPE + one SPU
        let n = 64usize;
        let (net, costs) = profile_pipeline(
            &engine,
            &JitOptions::split(),
            &platform,
            &["brighten", "copy"],
            8,
            |_stage, _core| {
                (
                    vec![
                        MachineValue::Int(n as i64),
                        MachineValue::Int(64),
                        MachineValue::Int(256),
                    ],
                    vec![0u8; 1024],
                )
            },
        )
        .unwrap();
        assert_eq!(net.processes().len(), 2);
        assert_eq!(costs.len(), 2);
        assert!(costs
            .iter()
            .all(|per_core| per_core.len() == platform.cores.len()));
        assert!(costs.iter().flatten().all(|c| *c > 0.0));
        // 2 stages x 2 cores ran, but only 2 distinct core types compiled.
        let stats = engine.stats();
        assert_eq!(stats.compiles, 2);
        assert_eq!(stats.lookups(), 4);
        // The measured network simulates like any hand-built one.
        let report = net.simulate(&[0, 1], platform.cores.len());
        assert_eq!(report.firings, vec![8, 8]);
    }
}
