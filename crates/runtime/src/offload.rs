//! Interconnect / DMA cost model for accelerator offload.
//!
//! When the runtime decides to run a kernel on an accelerator (the Cell SPU
//! scenario of Section 3), the input data must be shipped to the accelerator's
//! local store and the results shipped back. This module models that transfer
//! cost, which is what determines the offload-profitability crossover studied
//! in experiment E4.

/// Cost model for one data transfer path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DmaModel {
    /// Sustained bandwidth in bytes per host cycle.
    pub bytes_per_cycle: f64,
    /// Fixed start-up latency per transfer, in host cycles.
    pub latency: u64,
}

impl DmaModel {
    /// Fast on-chip interconnect (shared memory, negligible start-up cost).
    pub fn on_chip() -> Self {
        DmaModel {
            bytes_per_cycle: 16.0,
            latency: 50,
        }
    }

    /// A Cell-style ring bus between the host and the accelerators.
    pub fn ring_bus() -> Self {
        DmaModel {
            bytes_per_cycle: 8.0,
            latency: 600,
        }
    }

    /// A slow off-chip link (e.g. an external accelerator board).
    pub fn off_chip() -> Self {
        DmaModel {
            bytes_per_cycle: 1.0,
            latency: 5_000,
        }
    }

    /// Cycles needed to move `bytes` bytes in one direction.
    pub fn transfer_cycles(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        self.latency + (bytes as f64 / self.bytes_per_cycle).ceil() as u64
    }

    /// Cycles for a round trip: ship `bytes_in` to the accelerator and
    /// `bytes_out` back to the host.
    pub fn round_trip_cycles(&self, bytes_in: u64, bytes_out: u64) -> u64 {
        self.transfer_cycles(bytes_in) + self.transfer_cycles(bytes_out)
    }
}

/// Breakdown of an offloaded kernel execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OffloadCost {
    /// Cycles spent computing on the accelerator (scaled to host cycles).
    pub compute_cycles: u64,
    /// Cycles spent transferring inputs and outputs.
    pub dma_cycles: u64,
}

impl OffloadCost {
    /// Total cycles as seen by the host.
    pub fn total(&self) -> u64 {
        self.compute_cycles + self.dma_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_cost_scales_with_size_and_includes_latency() {
        let dma = DmaModel::ring_bus();
        assert_eq!(dma.transfer_cycles(0), 0);
        let small = dma.transfer_cycles(64);
        let large = dma.transfer_cycles(64 * 1024);
        assert!(small >= dma.latency);
        assert!(large > small * 10);
        assert_eq!(
            dma.round_trip_cycles(1024, 512),
            dma.transfer_cycles(1024) + dma.transfer_cycles(512)
        );
    }

    #[test]
    fn interconnects_are_ordered_by_speed() {
        let n = 1 << 20;
        assert!(DmaModel::on_chip().transfer_cycles(n) < DmaModel::ring_bus().transfer_cycles(n));
        assert!(DmaModel::ring_bus().transfer_cycles(n) < DmaModel::off_chip().transfer_cycles(n));
    }

    #[test]
    fn offload_cost_totals() {
        let c = OffloadCost {
            compute_cycles: 1000,
            dma_cycles: 250,
        };
        assert_eq!(c.total(), 1250);
    }
}
