//! Deploy-and-run helper: JIT compilation per core type plus simulation.
//!
//! The executor is the piece of the runtime that makes "write once, run on any
//! core" concrete: it holds one bytecode module, lazily JIT-compiles it for
//! every distinct core type it is asked to run on (caching the result, like a
//! real virtual machine would), and executes kernels on the core's simulator.

use crate::offload::OffloadCost;
use crate::platform::Core;
use splitc_jit::{compile_module, JitOptions, JitStats};
use splitc_targets::{MProgram, MachineValue, SimStats, Simulator};
use splitc_vbc::Module;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// An error raised while deploying or running a kernel.
#[derive(Debug)]
pub enum RuntimeError {
    /// Online compilation failed.
    Jit(splitc_jit::JitError),
    /// Simulated execution failed.
    Sim(splitc_targets::SimError),
    /// The requested kernel does not exist in the module.
    UnknownKernel(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Jit(e) => write!(f, "online compilation failed: {e}"),
            RuntimeError::Sim(e) => write!(f, "simulated execution failed: {e}"),
            RuntimeError::UnknownKernel(k) => write!(f, "unknown kernel {k}"),
        }
    }
}

impl Error for RuntimeError {}

impl From<splitc_jit::JitError> for RuntimeError {
    fn from(e: splitc_jit::JitError) -> Self {
        RuntimeError::Jit(e)
    }
}

impl From<splitc_targets::SimError> for RuntimeError {
    fn from(e: splitc_targets::SimError) -> Self {
        RuntimeError::Sim(e)
    }
}

/// Result of running one kernel on one core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunOutcome {
    /// The kernel's return value, if any.
    pub result: Option<MachineValue>,
    /// Raw simulator statistics.
    pub stats: SimStats,
    /// Cycles scaled by the core's clock factor, comparable across cores.
    pub scaled_cycles: f64,
}

/// A deployed module: bytecode plus a per-core-type cache of compiled code.
#[derive(Debug)]
pub struct Executor {
    module: Module,
    options: JitOptions,
    cache: HashMap<String, (MProgram, JitStats)>,
}

impl Executor {
    /// Deploy `module` with the given online-compilation options.
    pub fn new(module: Module, options: JitOptions) -> Self {
        Executor {
            module,
            options,
            cache: HashMap::new(),
        }
    }

    /// Deploy with the default split-compilation options.
    pub fn deploy(module: Module) -> Self {
        Executor::new(module, JitOptions::split())
    }

    /// The deployed bytecode module.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// Compile (or fetch from cache) the machine code for `core`.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError::Jit`] if online compilation fails.
    pub fn program_for(&mut self, core: &Core) -> Result<&(MProgram, JitStats), RuntimeError> {
        if !self.cache.contains_key(&core.target.name) {
            let compiled = compile_module(&self.module, &core.target, &self.options)?;
            self.cache.insert(core.target.name.clone(), compiled);
        }
        Ok(&self.cache[&core.target.name])
    }

    /// JIT statistics for `core` (compiling on demand).
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError::Jit`] if online compilation fails.
    pub fn jit_stats(&mut self, core: &Core) -> Result<JitStats, RuntimeError> {
        Ok(self.program_for(core)?.1)
    }

    /// Run `kernel` with `args` against `mem` on `core`.
    ///
    /// # Errors
    ///
    /// Fails if the kernel is unknown, cannot be compiled for the core, or
    /// traps during simulation.
    pub fn run(
        &mut self,
        core: &Core,
        kernel: &str,
        args: &[MachineValue],
        mem: &mut [u8],
    ) -> Result<RunOutcome, RuntimeError> {
        if self.module.function(kernel).is_none() {
            return Err(RuntimeError::UnknownKernel(kernel.to_owned()));
        }
        let clock = core.target.clock_scale;
        let (program, _) = self.program_for(core)?;
        let program = program.clone();
        let mut sim = Simulator::new(&program, &core.target);
        let result = sim.run(kernel, args, mem)?;
        let stats = sim.stats();
        Ok(RunOutcome {
            result,
            stats,
            scaled_cycles: stats.cycles as f64 * clock,
        })
    }

    /// Run `kernel` on an accelerator core, accounting for shipping
    /// `bytes_in` of input and `bytes_out` of output over `dma`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Executor::run`].
    pub fn run_offloaded(
        &mut self,
        core: &Core,
        kernel: &str,
        args: &[MachineValue],
        mem: &mut [u8],
        dma: &crate::offload::DmaModel,
        bytes_in: u64,
        bytes_out: u64,
    ) -> Result<(RunOutcome, OffloadCost), RuntimeError> {
        let outcome = self.run(core, kernel, args, mem)?;
        let cost = OffloadCost {
            compute_cycles: outcome.scaled_cycles as u64,
            dma_cycles: dma.round_trip_cycles(bytes_in, bytes_out),
        };
        Ok((outcome, cost))
    }

    /// Number of distinct core types compiled so far.
    pub fn compiled_variants(&self) -> usize {
        self.cache.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Platform;
    use splitc_minic::compile_source;
    use splitc_opt::{optimize_module, OptOptions};

    fn deployed() -> Executor {
        let mut m = compile_source(
            "fn dscal(n: i32, a: f32, x: *f32) {
                for (let i: i32 = 0; i < n; i = i + 1) { x[i] = a * x[i]; }
            }",
            "k",
        )
        .unwrap();
        optimize_module(&mut m, &OptOptions::full());
        Executor::deploy(m)
    }

    #[test]
    fn one_bytecode_runs_on_every_core_of_a_platform() {
        let mut exec = deployed();
        let platform = Platform::cell_blade(2);
        let n = 40usize;
        for core in &platform.cores {
            let mut mem = vec![0u8; 4096];
            for i in 0..n {
                mem[256 + 4 * i..260 + 4 * i].copy_from_slice(&(i as f32).to_le_bytes());
            }
            let out = exec
                .run(
                    core,
                    "dscal",
                    &[
                        MachineValue::Int(n as i64),
                        MachineValue::Float(2.0),
                        MachineValue::Int(256),
                    ],
                    &mut mem,
                )
                .unwrap();
            assert!(out.stats.cycles > 0);
            for i in 0..n {
                let mut b = [0u8; 4];
                b.copy_from_slice(&mem[256 + 4 * i..260 + 4 * i]);
                assert_eq!(f32::from_le_bytes(b), i as f32 * 2.0, "core {}", core.name);
            }
        }
        // Two distinct core types (PPE and SPU) were compiled, not three.
        assert_eq!(exec.compiled_variants(), 2);
    }

    #[test]
    fn unknown_kernels_are_rejected() {
        let mut exec = deployed();
        let platform = Platform::workstation();
        let mut mem = vec![0u8; 64];
        let err = exec.run(platform.host(), "nope", &[], &mut mem).unwrap_err();
        assert!(matches!(err, RuntimeError::UnknownKernel(_)));
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn offload_accounts_for_dma() {
        let mut exec = deployed();
        let platform = Platform::cell_blade(1);
        let spu = platform.core("spu0").unwrap().clone();
        let n = 64usize;
        let mut mem = vec![0u8; 4096];
        let (_, cost) = exec
            .run_offloaded(
                &spu,
                "dscal",
                &[
                    MachineValue::Int(n as i64),
                    MachineValue::Float(0.5),
                    MachineValue::Int(256),
                ],
                &mut mem,
                &platform.dma,
                (n * 4) as u64,
                (n * 4) as u64,
            )
            .unwrap();
        assert!(cost.dma_cycles > 0);
        assert!(cost.total() > cost.compute_cycles);
    }
}
