//! Deploy-and-run helper: a core-oriented view over the execution engine.
//!
//! The executor is the piece of the runtime that makes "write once, run on any
//! core" concrete. It is a thin facade over [`ExecutionEngine`]: it pins one
//! JIT configuration at deployment time and addresses execution by
//! [`Core`] instead of by raw target description, so platform code can say
//! "run this kernel on spu2" and let the shared cache guarantee that all SPUs
//! reuse one compiled program.

use crate::engine::{CompiledModule, EngineError, Execution, ExecutionEngine};
use crate::offload::OffloadCost;
use crate::platform::Core;
use splitc_jit::{JitOptions, JitStats};
use splitc_targets::MachineValue;
use splitc_vbc::Module;
use std::sync::Arc;

/// An error raised while deploying or running a kernel.
///
/// Alias of the unified [`EngineError`]; kept so runtime-facing code reads
/// naturally.
pub type RuntimeError = EngineError;

/// Result of running one kernel on one core.
///
/// Alias of the unified [`Execution`] result (which also carries the cached
/// JIT statistics).
pub type RunOutcome = Execution;

/// A deployed module: an execution engine plus the deployment's JIT options.
#[derive(Debug)]
pub struct Executor {
    engine: ExecutionEngine,
    options: JitOptions,
}

impl Executor {
    /// Deploy `module` with the given online-compilation options.
    pub fn new(module: Module, options: JitOptions) -> Self {
        Executor {
            engine: ExecutionEngine::new(module),
            options,
        }
    }

    /// Deploy with the default split-compilation options.
    pub fn deploy(module: Module) -> Self {
        Executor::new(module, JitOptions::split())
    }

    /// The underlying execution engine (for cache statistics or direct use).
    pub fn engine(&self) -> &ExecutionEngine {
        &self.engine
    }

    /// The JIT options this deployment compiles with.
    pub fn options(&self) -> &JitOptions {
        &self.options
    }

    /// The deployed bytecode module.
    pub fn module(&self) -> &Module {
        self.engine.module()
    }

    /// Compile (or fetch from the shared cache) the machine code for `core`.
    ///
    /// # Errors
    ///
    /// Returns an [`EngineError::Jit`] if online compilation fails.
    pub fn program_for(&self, core: &Core) -> Result<Arc<CompiledModule>, RuntimeError> {
        self.engine.program_for(&core.target, &self.options)
    }

    /// JIT statistics for `core` (compiling on demand).
    ///
    /// # Errors
    ///
    /// Returns an [`EngineError::Jit`] if online compilation fails.
    pub fn jit_stats(&self, core: &Core) -> Result<JitStats, RuntimeError> {
        self.engine.jit_stats(&core.target, &self.options)
    }

    /// Warm the code cache for every core of the iterator (e.g. a platform's
    /// `cores`); cores sharing a target fingerprint compile once.
    ///
    /// # Errors
    ///
    /// Returns the first compilation error encountered.
    pub fn precompile<'c>(
        &self,
        cores: impl IntoIterator<Item = &'c Core>,
    ) -> Result<(), RuntimeError> {
        self.engine
            .precompile(cores.into_iter().map(|c| &c.target), &self.options)
    }

    /// Run `kernel` with `args` against `mem` on `core`.
    ///
    /// # Errors
    ///
    /// Fails if the kernel is unknown, cannot be compiled for the core, or
    /// traps during simulation.
    pub fn run(
        &self,
        core: &Core,
        kernel: &str,
        args: &[MachineValue],
        mem: &mut [u8],
    ) -> Result<RunOutcome, RuntimeError> {
        self.engine
            .run(&core.target, &self.options, kernel, args, mem)
    }

    /// Run `kernel` on `core`, recycling call frames from `pool` — the entry
    /// for callers that run many kernels back to back (schedulers, sweep
    /// workers) and want the steady-state run path allocation-free.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Executor::run`].
    pub fn run_pooled(
        &self,
        core: &Core,
        kernel: &str,
        args: &[MachineValue],
        mem: &mut [u8],
        pool: &mut splitc_targets::FramePool,
    ) -> Result<RunOutcome, RuntimeError> {
        self.engine
            .run_pooled(&core.target, &self.options, kernel, args, mem, pool)
    }

    /// Run `kernel` on an accelerator core, accounting for shipping
    /// `bytes_in` of input and `bytes_out` of output over `dma`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Executor::run`].
    #[allow(clippy::too_many_arguments)]
    pub fn run_offloaded(
        &self,
        core: &Core,
        kernel: &str,
        args: &[MachineValue],
        mem: &mut [u8],
        dma: &crate::offload::DmaModel,
        bytes_in: u64,
        bytes_out: u64,
    ) -> Result<(RunOutcome, OffloadCost), RuntimeError> {
        let outcome = self.run(core, kernel, args, mem)?;
        let cost = OffloadCost {
            compute_cycles: outcome.scaled_cycles as u64,
            dma_cycles: dma.round_trip_cycles(bytes_in, bytes_out),
        };
        Ok((outcome, cost))
    }

    /// Number of distinct core types currently held compiled in the engine
    /// cache (an LRU bound can evict entries; see
    /// [`ExecutionEngine::set_cache_capacity`]).
    pub fn compiled_variants(&self) -> usize {
        self.engine.compiled_variants()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Platform;
    use splitc_minic::compile_source;
    use splitc_opt::{optimize_module, OptOptions};

    fn deployed() -> Executor {
        let mut m = compile_source(
            "fn dscal(n: i32, a: f32, x: *f32) {
                for (let i: i32 = 0; i < n; i = i + 1) { x[i] = a * x[i]; }
            }",
            "k",
        )
        .unwrap();
        optimize_module(&mut m, &OptOptions::full());
        Executor::deploy(m)
    }

    #[test]
    fn one_bytecode_runs_on_every_core_of_a_platform() {
        let exec = deployed();
        let platform = Platform::cell_blade(2);
        let n = 40usize;
        for core in &platform.cores {
            let mut mem = vec![0u8; 4096];
            for i in 0..n {
                mem[256 + 4 * i..260 + 4 * i].copy_from_slice(&(i as f32).to_le_bytes());
            }
            let out = exec
                .run(
                    core,
                    "dscal",
                    &[
                        MachineValue::Int(n as i64),
                        MachineValue::Float(2.0),
                        MachineValue::Int(256),
                    ],
                    &mut mem,
                )
                .unwrap();
            assert!(out.stats.cycles > 0);
            for i in 0..n {
                let mut b = [0u8; 4];
                b.copy_from_slice(&mem[256 + 4 * i..260 + 4 * i]);
                assert_eq!(f32::from_le_bytes(b), i as f32 * 2.0, "core {}", core.name);
            }
        }
        // Two distinct core types (PPE and SPU) were compiled, not three.
        assert_eq!(exec.compiled_variants(), 2);
        assert_eq!(exec.engine().stats().compiles, 2);
        assert_eq!(
            exec.engine().stats().hits,
            1,
            "the second SPU reused the first's code"
        );
    }

    #[test]
    fn unknown_kernels_are_rejected() {
        let exec = deployed();
        let platform = Platform::workstation();
        let mut mem = vec![0u8; 64];
        let err = exec
            .run(platform.host(), "nope", &[], &mut mem)
            .unwrap_err();
        assert!(matches!(err, RuntimeError::UnknownKernel(_)));
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn precompile_covers_duplicate_core_types_once() {
        let exec = deployed();
        let platform = Platform::cell_blade(4);
        exec.precompile(&platform.cores).unwrap();
        assert_eq!(exec.compiled_variants(), 2);
        assert_eq!(exec.engine().stats().compiles, 2);
    }

    #[test]
    fn offload_accounts_for_dma() {
        let exec = deployed();
        let platform = Platform::cell_blade(1);
        let spu = platform.core("spu0").unwrap().clone();
        let n = 64usize;
        let mut mem = vec![0u8; 4096];
        let (_, cost) = exec
            .run_offloaded(
                &spu,
                "dscal",
                &[
                    MachineValue::Int(n as i64),
                    MachineValue::Float(0.5),
                    MachineValue::Int(256),
                ],
                &mut mem,
                &platform.dma,
                (n * 4) as u64,
                (n * 4) as u64,
            )
            .unwrap();
        assert!(cost.dma_cycles > 0);
        assert!(cost.total() > cost.compute_cycles);
    }
}
