//! Annotation-guided mapping and list scheduling.
//!
//! Section 3 of the paper argues that, because final code generation happens
//! at run time, "mapping and scheduling of computations can be performed
//! across all available processing nodes, independently from their underlying
//! architectures". This module implements that decision layer: kernel traits
//! (carried as bytecode annotations) steer each task to a suitable core, and a
//! list scheduler places a task graph onto the platform.

use crate::platform::{Core, Platform};
use splitc_vbc::KernelTraits;
use std::collections::HashMap;

/// Score how well `core` suits a kernel with the given `traits`.
///
/// Higher is better. The heuristic mirrors the paper's motivation: vector
/// kernels want SIMD units, floating-point kernels must avoid
/// software-emulated FPUs (the DSP), and control-intensive code prefers the
/// host core with its cheap branches.
pub fn affinity(traits: &KernelTraits, core: &Core) -> f64 {
    let t = &core.target;
    let mut score = 10.0 / t.clock_scale;
    if traits.uses_vector {
        if t.has_simd() {
            score += 30.0;
        } else {
            score -= 5.0;
        }
    }
    if traits.uses_fp {
        // Penalize targets whose floating point is disproportionately slow.
        let fp_ratio = t.cost.fp_add as f64 / t.cost.int_op as f64;
        score -= fp_ratio;
    }
    if traits.control_intensive {
        score -= t.cost.branch_taken as f64 * 2.0;
    }
    score
}

/// Pick the most suitable core of `platform` for a kernel with `traits`.
///
/// Returns the host core when the platform has a single core.
pub fn choose_core<'p>(traits: &KernelTraits, platform: &'p Platform) -> &'p Core {
    platform
        .cores
        .iter()
        .max_by(|a, b| {
            affinity(traits, a)
                .partial_cmp(&affinity(traits, b))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .unwrap_or(platform.host())
}

/// A task to place on the platform: estimated cycles on every core, plus
/// dependences on earlier tasks.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskEstimate {
    /// Task name (for reporting).
    pub name: String,
    /// Estimated scaled cycles on each core, indexed by [`Core::id`].
    pub cycles_per_core: Vec<f64>,
    /// Indices of tasks that must complete before this one starts.
    pub deps: Vec<usize>,
}

/// Placement of one task produced by the scheduler.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// Index of the task in the input slice.
    pub task: usize,
    /// Core the task was assigned to.
    pub core: usize,
    /// Start time in scaled cycles.
    pub start: f64,
    /// Finish time in scaled cycles.
    pub finish: f64,
}

/// A complete schedule of a task graph onto a platform.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Schedule {
    /// Per-task placements, in scheduling order.
    pub placements: Vec<Placement>,
    /// Completion time of the last task.
    pub makespan: f64,
}

impl Schedule {
    /// The placement of task `task`, if it was scheduled.
    pub fn placement(&self, task: usize) -> Option<&Placement> {
        self.placements.iter().find(|p| p.task == task)
    }

    /// Total busy time of `core`.
    pub fn busy_time(&self, core: usize) -> f64 {
        self.placements
            .iter()
            .filter(|p| p.core == core)
            .map(|p| p.finish - p.start)
            .sum()
    }
}

/// List-schedule `tasks` onto `platform` by earliest finish time.
///
/// Tasks are considered in an order compatible with their dependences; each is
/// placed on the core that lets it finish earliest given both the core's
/// availability and the task's estimated cost there (a HEFT-style heuristic).
///
/// # Panics
///
/// Panics if a task's `cycles_per_core` does not cover every core of the
/// platform, or if the dependence graph has a cycle.
pub fn list_schedule(tasks: &[TaskEstimate], platform: &Platform) -> Schedule {
    let ncores = platform.cores.len();
    for t in tasks {
        assert_eq!(
            t.cycles_per_core.len(),
            ncores,
            "task {} lacks a cost estimate for every core",
            t.name
        );
    }
    let mut core_free = vec![0.0f64; ncores];
    let mut finish: HashMap<usize, f64> = HashMap::new();
    let mut placements = Vec::with_capacity(tasks.len());
    let mut scheduled = vec![false; tasks.len()];

    for _ in 0..tasks.len() {
        // Pick an unscheduled task whose dependences are all satisfied.
        let ready: Vec<usize> = (0..tasks.len())
            .filter(|i| !scheduled[*i] && tasks[*i].deps.iter().all(|d| finish.contains_key(d)))
            .collect();
        assert!(!ready.is_empty(), "cyclic task graph");
        // Prefer the ready task with the largest average cost (critical work first).
        let task = ready
            .into_iter()
            .max_by(|a, b| {
                let ca: f64 = tasks[*a].cycles_per_core.iter().sum();
                let cb: f64 = tasks[*b].cycles_per_core.iter().sum();
                ca.partial_cmp(&cb).unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("ready set is non-empty");

        let earliest_start: f64 = tasks[task]
            .deps
            .iter()
            .map(|d| finish[d])
            .fold(0.0, f64::max);
        let (core, start, end) = (0..ncores)
            .map(|c| {
                let start = earliest_start.max(core_free[c]);
                (c, start, start + tasks[task].cycles_per_core[c])
            })
            .min_by(|a, b| a.2.partial_cmp(&b.2).unwrap_or(std::cmp::Ordering::Equal))
            .expect("platform has at least one core");

        core_free[core] = end;
        finish.insert(task, end);
        scheduled[task] = true;
        placements.push(Placement {
            task,
            core,
            start,
            finish: end,
        });
    }

    let makespan = placements.iter().map(|p| p.finish).fold(0.0, f64::max);
    Schedule {
        placements,
        makespan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traits(vector: bool, fp: bool, control: bool) -> KernelTraits {
        KernelTraits {
            uses_fp: fp,
            uses_vector: vector,
            control_intensive: control,
            ops_per_element: 2.0,
            bytes_per_element: 8.0,
        }
    }

    #[test]
    fn vector_kernels_prefer_simd_cores() {
        let phone = Platform::phone();
        let chosen = choose_core(&traits(true, true, false), &phone);
        assert_eq!(chosen.name, "arm");

        let cell = Platform::cell_blade(2);
        let chosen = choose_core(&traits(true, true, false), &cell);
        assert!(
            chosen.name.starts_with("spu"),
            "vector work goes to the SPUs, got {}",
            chosen.name
        );
    }

    #[test]
    fn fp_kernels_avoid_the_dsp_and_control_code_stays_on_the_host() {
        let phone = Platform::phone();
        let chosen = choose_core(&traits(false, true, false), &phone);
        assert_eq!(
            chosen.name, "arm",
            "software floating point on the DSP is a bad idea"
        );

        let cell = Platform::cell_blade(2);
        let chosen = choose_core(&traits(false, false, true), &cell);
        assert_eq!(chosen.name, "ppe", "branchy code prefers the host core");
    }

    #[test]
    fn independent_tasks_spread_over_cores() {
        let platform = Platform::homogeneous("quad", splitc_targets::TargetDesc::arm_neon(), 4);
        let tasks: Vec<TaskEstimate> = (0..8)
            .map(|i| TaskEstimate {
                name: format!("t{i}"),
                cycles_per_core: vec![100.0; 4],
                deps: vec![],
            })
            .collect();
        let schedule = list_schedule(&tasks, &platform);
        assert_eq!(schedule.placements.len(), 8);
        // Perfect balance: two tasks per core, makespan 200.
        assert!((schedule.makespan - 200.0).abs() < 1e-9);
        for c in 0..4 {
            assert!((schedule.busy_time(c) - 200.0).abs() < 1e-9);
        }
    }

    #[test]
    fn dependences_serialize_tasks() {
        let platform = Platform::homogeneous("dual", splitc_targets::TargetDesc::x86_sse(), 2);
        let tasks = vec![
            TaskEstimate {
                name: "a".into(),
                cycles_per_core: vec![50.0, 50.0],
                deps: vec![],
            },
            TaskEstimate {
                name: "b".into(),
                cycles_per_core: vec![70.0, 70.0],
                deps: vec![0],
            },
            TaskEstimate {
                name: "c".into(),
                cycles_per_core: vec![30.0, 30.0],
                deps: vec![1],
            },
        ];
        let schedule = list_schedule(&tasks, &platform);
        assert!((schedule.makespan - 150.0).abs() < 1e-9);
        let b = schedule.placement(1).unwrap();
        let a = schedule.placement(0).unwrap();
        assert!(b.start >= a.finish);
    }

    #[test]
    fn heterogeneous_costs_steer_placement() {
        // Core 0 is fast for the task, core 1 is slow: everything should land on 0
        // until queueing makes core 1 attractive.
        let platform = Platform::phone();
        let tasks: Vec<TaskEstimate> = (0..3)
            .map(|i| TaskEstimate {
                name: format!("t{i}"),
                cycles_per_core: vec![100.0, 1000.0],
                deps: vec![],
            })
            .collect();
        let schedule = list_schedule(&tasks, &platform);
        let on_fast = schedule.placements.iter().filter(|p| p.core == 0).count();
        assert_eq!(
            on_fast, 3,
            "queueing 3 x 100 on the fast core still beats 1000 on the slow one"
        );
    }
}
