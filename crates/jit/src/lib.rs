//! # splitc-jit — the online (JIT) compiler
//!
//! The device-side half of split compilation (Cohen & Rohou, DAC 2010). Given
//! a portable bytecode module — ideally one prepared by the offline optimizer
//! of `splitc-opt` — and a concrete [`TargetDesc`](splitc_targets::TargetDesc),
//! [`compile_module`] produces machine code for that target while staying
//! cheap enough to run on an embedded device:
//!
//! * the portable vector builtins are mapped directly onto the target's SIMD
//!   unit, or scalarized (unrolled) when there is none — no vectorization
//!   analysis happens online (that is Table 1's experiment);
//! * register assignment is driven by the offline spill-order annotation in
//!   linear time ([`RegAllocMode::SplitAnnotations`]); the baselines
//!   [`RegAllocMode::OnlineGreedy`] and [`RegAllocMode::OnlineAnalyze`]
//!   reproduce what a JIT does without the annotation (Section 4's split
//!   register allocation experiment);
//! * every phase reports work units in [`JitStats`], which is the online cost
//!   axis of the split-compilation flow (Figure 1).
//!
//! # Example
//!
//! ```
//! use splitc_jit::{compile_module, JitOptions};
//! use splitc_minic::compile_source;
//! use splitc_opt::{optimize_module, OptOptions};
//! use splitc_targets::{MachineValue, Simulator, TargetDesc};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Offline: compile and optimize once, on the developer workstation.
//! let mut module = compile_source(
//!     "fn dscal(n: i32, a: f32, x: *f32) {
//!          for (let i: i32 = 0; i < n; i = i + 1) { x[i] = a * x[i]; }
//!      }",
//!     "kernels",
//! )?;
//! optimize_module(&mut module, &OptOptions::full());
//!
//! // Online: compile the same bytecode for two very different machines.
//! for target in [TargetDesc::x86_sse(), TargetDesc::powerpc()] {
//!     let (program, stats) = compile_module(&module, &target, &JitOptions::split())?;
//!     let mut mem = vec![0u8; 4096];
//!     mem[256..260].copy_from_slice(&2.0f32.to_le_bytes());
//!     let mut sim = Simulator::new(&program, &target);
//!     sim.run(
//!         "dscal",
//!         &[MachineValue::Int(1), MachineValue::Float(0.5), MachineValue::Int(256)],
//!         &mut mem,
//!     )?;
//!     assert_eq!(&mem[256..260], &1.0f32.to_le_bytes());
//!     assert!(stats.total_work() > 0);
//! }
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod compile;
mod lowering;
mod mir;
mod regassign;

pub use compile::{compile_module, JitError, JitOptions, JitStats};
pub use mir::{def as minst_def, rewrite_def, rewrite_uses, successors, uses as minst_uses};
pub use regassign::RegAllocMode;
