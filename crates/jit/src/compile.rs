//! The online compiler driver.

use crate::lowering::lower_function;
use crate::regassign::{assign, RegAllocMode};
use splitc_targets::{MProgram, TargetDesc};
use splitc_vbc::{verify_module, Module, VerifyError};
use std::error::Error;
use std::fmt;

/// Options controlling the online compilation of a module.
///
/// The type is `Hash + Eq` so that execution caches can key compiled code by
/// `(target fingerprint, JitOptions)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JitOptions {
    /// How register assignment obtains its keep ranking.
    pub regalloc: RegAllocMode,
    /// Allow the use of the target's SIMD unit (when it has one). Disabling
    /// this reproduces a JIT that ignores the vector builtins even on a
    /// vector-capable machine.
    pub allow_simd: bool,
    /// Fuse adjacent instructions into macro-ops when the deployment is
    /// prepared for execution (compare+branch, load+op, induction-variable
    /// steps). Purely a dispatch-speed knob: results, traps and `SimStats`
    /// are bit-identical with fusion on or off, which the differential
    /// suites exploit by pinning `fuse: false` runs against fused ones.
    pub fuse: bool,
}

impl Default for JitOptions {
    fn default() -> Self {
        JitOptions {
            regalloc: RegAllocMode::default(),
            allow_simd: false,
            fuse: true,
        }
    }
}

impl JitOptions {
    /// The split-compilation configuration: consume every annotation, use SIMD.
    pub fn split() -> Self {
        JitOptions {
            regalloc: RegAllocMode::SplitAnnotations,
            allow_simd: true,
            fuse: true,
        }
    }

    /// A fast, analysis-free baseline JIT: no annotations, greedy register assignment.
    pub fn online_greedy() -> Self {
        JitOptions {
            regalloc: RegAllocMode::OnlineGreedy,
            allow_simd: true,
            fuse: true,
        }
    }

    /// A thorough baseline JIT that redoes the analyses online.
    pub fn online_analyze() -> Self {
        JitOptions {
            regalloc: RegAllocMode::OnlineAnalyze,
            allow_simd: true,
            fuse: true,
        }
    }

    /// Stable FNV-1a fingerprint of the option set.
    ///
    /// Unlike `Hash`, whose output is unspecified across Rust versions and
    /// hasher seeds, this fingerprint is part of the persistent artifact
    /// store's on-disk key — it must produce identical values in every
    /// process that shares a store directory. Changing the encoding here
    /// invalidates every stored entry (which is safe: key misses fall back
    /// to a fresh compile), so keep it in sync with the fields of the
    /// struct and give new fields new byte positions.
    pub fn fingerprint(&self) -> u64 {
        let mut h = splitc_targets::Fnv1a::new();
        h.write(&[
            match self.regalloc {
                RegAllocMode::SplitAnnotations => 0u8,
                RegAllocMode::OnlineGreedy => 1,
                RegAllocMode::OnlineAnalyze => 2,
            },
            self.allow_simd as u8,
            self.fuse as u8,
        ]);
        h.finish()
    }
}

/// Measured cost and outcome of one online compilation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JitStats {
    /// Functions compiled.
    pub functions: u64,
    /// Work units spent verifying the incoming bytecode.
    pub verify_work: u64,
    /// Work units spent on instruction selection.
    pub lowering_work: u64,
    /// Work units spent on register assignment (including any online analysis).
    pub regalloc_work: u64,
    /// Spill instructions in the generated code (static count).
    pub static_spills: u64,
    /// Reload instructions in the generated code (static count).
    pub static_reloads: u64,
    /// `true` if split-compilation annotations were consumed.
    pub annotations_used: bool,
    /// `true` if SIMD instructions were emitted.
    pub used_simd: bool,
    /// `true` if portable vector builtins had to be scalarized.
    pub scalarized: bool,
}

impl JitStats {
    /// Total online work units — the "JIT compile time" axis of experiment E2.
    pub fn total_work(&self) -> u64 {
        self.verify_work + self.lowering_work + self.regalloc_work
    }
}

/// An error produced by the online compiler.
#[derive(Debug, Clone, PartialEq)]
pub enum JitError {
    /// The incoming bytecode failed verification.
    Verify(VerifyError),
    /// The target's register file cannot hold the function's values.
    RegisterPressure {
        /// Function being compiled.
        function: String,
        /// Explanation.
        detail: String,
    },
    /// An internal invariant was violated (a bug in the compiler).
    Internal(String),
}

impl fmt::Display for JitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JitError::Verify(e) => write!(f, "bytecode verification failed: {e}"),
            JitError::RegisterPressure { function, detail } => {
                write!(f, "register pressure in {function}: {detail}")
            }
            JitError::Internal(msg) => write!(f, "internal JIT error: {msg}"),
        }
    }
}

impl Error for JitError {}

impl From<VerifyError> for JitError {
    fn from(e: VerifyError) -> Self {
        JitError::Verify(e)
    }
}

/// Compile a bytecode module to machine code for `target`.
///
/// This is the paper's µProc-specific online step: it runs on (or near) the
/// device, knows the exact hardware, and relies on the annotations embedded in
/// the module instead of re-running expensive analyses.
///
/// # Errors
///
/// Returns a [`JitError`] if the module does not verify, if a function's
/// values cannot be fitted to the target's register file, or on internal
/// lowering bugs.
///
/// # Examples
///
/// ```
/// use splitc_jit::{compile_module, JitOptions};
/// use splitc_minic::compile_source;
/// use splitc_targets::{MachineValue, Simulator, TargetDesc};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let module = compile_source("fn triple(x: i32) -> i32 { return 3 * x; }", "m")?;
/// let target = TargetDesc::arm_neon();
/// let (program, stats) = compile_module(&module, &target, &JitOptions::split())?;
/// assert!(stats.total_work() > 0);
///
/// let mut mem = vec![0u8; 64];
/// let mut sim = Simulator::new(&program, &target);
/// assert_eq!(
///     sim.run("triple", &[MachineValue::Int(14)], &mut mem)?,
///     Some(MachineValue::Int(42)),
/// );
/// # Ok(())
/// # }
/// ```
pub fn compile_module(
    module: &Module,
    target: &TargetDesc,
    options: &JitOptions,
) -> Result<(MProgram, JitStats), JitError> {
    let mut stats = JitStats::default();

    // Load-time verification (cheap, always done by the device).
    verify_module(module)?;
    stats.verify_work += module.num_insts() as u64;

    let use_simd = options.allow_simd && target.has_simd();
    let mut program = MProgram {
        name: module.name.clone(),
        functions: Vec::new(),
    };
    for func in module.functions() {
        let vf = lower_function(func, target, use_simd)?;
        stats.lowering_work += vf.emitted;
        stats.functions += 1;
        if func.uses_vector_builtins() {
            if use_simd {
                stats.used_simd = true;
            } else {
                stats.scalarized = true;
            }
        }
        let mfunc = assign(&vf, func, target, options.regalloc, &mut stats)?;
        program.functions.push(mfunc);
    }
    Ok((program, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitc_minic::compile_source;
    use splitc_opt::{optimize_module, OptOptions};
    use splitc_targets::{MachineValue, Simulator};

    const KERNELS: &str = r#"
        fn vecadd(n: i32, x: *f32, y: *f32, z: *f32) {
            for (let i: i32 = 0; i < n; i = i + 1) { z[i] = x[i] + y[i]; }
        }
        fn sum_u8(n: i32, x: *u8) -> u8 {
            let s: u8 = 0;
            for (let i: i32 = 0; i < n; i = i + 1) { s = s + x[i]; }
            return s;
        }
    "#;

    fn optimized() -> Module {
        let mut m = compile_source(KERNELS, "k").unwrap();
        optimize_module(&mut m, &OptOptions::full());
        m
    }

    #[test]
    fn compiles_for_every_preset_target() {
        let m = optimized();
        for target in TargetDesc::presets() {
            let (program, stats) = compile_module(&m, &target, &JitOptions::split())
                .unwrap_or_else(|e| panic!("{}: {e}", target.name));
            assert_eq!(program.functions.len(), 2);
            assert!(stats.total_work() > 0, "{}", target.name);
            if target.has_simd() {
                assert!(stats.used_simd);
            } else {
                assert!(stats.scalarized);
            }
        }
    }

    #[test]
    fn vectorized_module_runs_correctly_on_simd_and_scalar_targets() {
        let m = optimized();
        let n = 53usize;
        for target in [
            TargetDesc::x86_sse(),
            TargetDesc::ultrasparc(),
            TargetDesc::powerpc(),
        ] {
            let (program, _) = compile_module(&m, &target, &JitOptions::split()).unwrap();
            let mut mem = vec![0u8; 1 << 14];
            let base = 64;
            for i in 0..n {
                mem[base + i] = (i * 7 % 251) as u8;
            }
            let mut sim = Simulator::new(&program, &target);
            let out = sim
                .run(
                    "sum_u8",
                    &[MachineValue::Int(n as i64), MachineValue::Int(base as i64)],
                    &mut mem,
                )
                .unwrap();
            let expected = (0..n)
                .map(|i| (i * 7 % 251) as u8)
                .fold(0u8, u8::wrapping_add);
            assert_eq!(
                out,
                Some(MachineValue::Int(i64::from(expected))),
                "{}",
                target.name
            );
        }
    }

    #[test]
    fn annotations_reduce_online_work() {
        let annotated = optimized();
        let mut stripped = annotated.clone();
        stripped.strip_annotations();

        let target = TargetDesc::x86_sse();
        let (_, with) = compile_module(&annotated, &target, &JitOptions::split()).unwrap();
        let (_, thorough) =
            compile_module(&stripped, &target, &JitOptions::online_analyze()).unwrap();
        assert!(with.annotations_used);
        assert!(!thorough.annotations_used);
        assert!(
            with.total_work() < thorough.total_work(),
            "split {} should be cheaper than online analysis {}",
            with.total_work(),
            thorough.total_work()
        );
    }

    #[test]
    fn verification_failures_are_reported() {
        let mut m = Module::new("bad");
        let f = splitc_vbc::Function::new("broken", &[], None);
        m.add_function(f); // no terminator
        let err = compile_module(&m, &TargetDesc::x86_sse(), &JitOptions::default()).unwrap_err();
        assert!(matches!(err, JitError::Verify(_)));
        assert!(err.to_string().contains("verification"));
    }

    #[test]
    fn simd_can_be_disabled_for_ablation() {
        let m = optimized();
        let target = TargetDesc::x86_sse();
        let opts = JitOptions {
            regalloc: RegAllocMode::SplitAnnotations,
            allow_simd: false,
            fuse: true,
        };
        let (program, stats) = compile_module(&m, &target, &opts).unwrap();
        assert!(stats.scalarized);
        assert!(!stats.used_simd);
        assert!(program.functions.iter().all(|f| f
            .blocks
            .iter()
            .flat_map(|b| b.insts.iter())
            .all(|i| !i.is_vector())));
    }
}
